#!/bin/bash
# Regenerates every figure/table of the paper. Output lands in results/.
# Variants with --preempt-ppm arm the scheduler adversary (DESIGN.md P1/P6):
# this host has one hardware thread, so cross-core interleaving inside
# read->CAS windows is emulated with calibrated yield injection.
set -x
B=./target/release
$B/table1_primitives > results/table1.md 2>&1
$B/fig1_counter --threads 1,2,4,8,16 --increments 100000 --runs 3 > results/fig1.md 2>&1
$B/fig1_counter --threads 1,2,4,8,16 --increments 20000 --runs 2 --adversarial > results/fig1_adversarial.md 2>&1
$B/fig2_livelock --dequeuers 3 --enqueues 20000 > results/fig2_livelock.md 2>&1
$B/fig6_throughput --threads 1,2,4,8,12,16,20 --pairs 8000 --runs 3 > results/fig6a.md 2>&1
$B/fig6_throughput --oversubscribed --threads 4,8,16,32,64,128 --pairs 1500 --runs 2 > results/fig6b.md 2>&1
$B/fig7_multiprocessor --threads 4,8,16,32,48,80 --pairs 2500 --runs 2 > results/fig7b_empty.md 2>&1
$B/fig7_multiprocessor --threads 4,8,16,32,48,80 --pairs 2500 --runs 2 --prefill 65536 > results/fig7a_full.md 2>&1
$B/fig7_multiprocessor --threads 4,8,16,32,48,80 --pairs 1500 --runs 2 --preempt-ppm 2000 > results/fig7b_adversarial.md 2>&1
$B/fig8_latency --threads 20 --pairs 4000 > results/fig8_1p.md 2>&1
$B/fig8_latency --threads 80 --pairs 1200 --clusters 4 --queues lcrq+h,lcrq,h-queue,cc-queue > results/fig8_4p.md 2>&1
$B/fig8_latency --threads 32 --pairs 1500 --preempt-ppm 1000 --queues lcrq,cc-queue,fc-queue,ms > results/fig8_adversarial.md 2>&1
$B/fig9_ringsize --threads 16 --pairs 4000 --runs 2 --orders 1,3,5,7,9,11,13,15,17 > results/fig9.md 2>&1
$B/fig9_ringsize --threads 16 --pairs 2000 --runs 2 --orders 1,2,3,5,7,9,11,13 --preempt-ppm 2000 > results/fig9_adversarial.md 2>&1
$B/table2_stats --threads 1,20 --pairs 8000 > results/table2.md 2>&1
$B/table2_stats --threads 20 --pairs 2500 --preempt-ppm 5000 > results/table2_adversarial.md 2>&1
$B/table3_stats --threads 80 --pairs 800 > results/table3.md 2>&1
$B/table3_stats --threads 80 --pairs 600 --preempt-ppm 2000 > results/table3_adversarial.md 2>&1
$B/pairwise --runs 12 --warmup 3 > results/arena.md 2>&1   # also refreshes results/BENCH_arena.json
$B/pairwise --make-fixtures --baseline results/BENCH_arena.json >> results/arena.md 2>&1
echo ALL-EXPERIMENTS-DONE
$B/fig6_throughput --oversubscribed --threads 8,32,64 --pairs 1500 --runs 2 --queues lcrq,ms,optimistic,baskets,sim-queue > results/fig6b_related_work.md 2>&1
