//! Sharded d-choice front-end integration suite.
//!
//! Focus areas the shared batteries don't isolate:
//!
//! * the exact-empty fallback sweep when the balancer's cached length
//!   estimates are deliberately desynchronized from reality (the
//!   correctness property: counters are advisory, the sweep is ground
//!   truth);
//! * the strict-FIFO degenerate configurations;
//! * the seeded stress entry points the ci.sh sharded gate replays under
//!   four `LCRQ_TEST_SEED` values against both inner backend families.

use lcrq::queues::testing;
use lcrq::util::rng::test_seed;
use lcrq::{ConcurrentQueue, Lcrq, LcrqConfig, ShardedConfig, ShardedQueue};
use lcrq_bench::QueueSpec;

fn sharded_lcrq(shards: usize, d: usize, refresh: u32) -> ShardedQueue<Lcrq> {
    ShardedQueue::from_factory(
        &ShardedConfig::new()
            .with_shards(shards)
            .with_d(d)
            .with_refresh(refresh),
        |_| Lcrq::with_config(LcrqConfig::new().with_ring_order(6)),
    )
}

/// The balancer-counter mutation check: one thread's sampler is primed on
/// an *empty* queue with an effectively infinite refresh interval, so its
/// cached estimates claim every shard is empty forever. Elements then
/// arrive from other threads (whose operations never update the stale
/// cache). The consumer's dequeues must still find every element via the
/// exact-empty fallback sweep — `None` while an element is definitely
/// present is the regression this test pins down.
#[test]
fn stale_all_empty_estimates_never_cause_false_empty() {
    let q = sharded_lcrq(8, 2, u32::MAX);
    // Prime this thread's sampler: every estimate caches 0 and, with
    // refresh = u32::MAX, is never re-read.
    assert_eq!(q.dequeue(), None);
    for round in 0..500u64 {
        std::thread::scope(|s| {
            s.spawn(|| q.enqueue(round));
        });
        // The producer has returned, so the element is definitely present;
        // the stale estimates still say "all shards empty".
        assert_eq!(
            q.dequeue(),
            Some(round),
            "dequeue reported empty while element {round} was present"
        );
    }
    assert_eq!(q.dequeue(), None);
}

/// The opposite desynchronization: the consumer's estimates claim every
/// shard is *full* (primed while hundreds of elements were queued), then
/// other threads drain everything. The consumer must chase its wrong
/// first pick through the sweep and report the true state — finding a
/// lone straggler if present, `None` once genuinely empty.
#[test]
fn stale_all_full_estimates_still_observe_reality() {
    let q = sharded_lcrq(4, 2, u32::MAX);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..400u64 {
                q.enqueue(i);
            }
        });
    });
    // Prime: estimates now cache ~100 elements per shard, never refreshed.
    // (The first dequeue takes some shard's head — not necessarily the
    // globally oldest element; this front-end is FIFO-up-to-relaxation.)
    assert!(q.dequeue().is_some());
    // Another thread drains the rest.
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut got = 1;
            while q.dequeue().is_some() {
                got += 1;
            }
            assert_eq!(got, 400);
        });
    });
    // Estimates still say "full everywhere"; reality is empty.
    assert_eq!(q.dequeue(), None);
    // A single new element must be found despite the wrong-first-pick.
    std::thread::scope(|s| {
        s.spawn(|| q.enqueue(7777));
    });
    assert_eq!(q.dequeue(), Some(7777));
    assert_eq!(q.dequeue(), None);
}

/// shards=1 (any d) is plain delegation and must stay strictly FIFO.
#[test]
fn single_shard_spec_is_strict_fifo() {
    for spec_str in [
        "sharded:shards=1,d=1,inner=lcrq",
        "sharded:shards=1,inner=lscq",
    ] {
        let spec = QueueSpec::parse(spec_str).unwrap();
        assert_eq!(spec.rank_error_bound(8), 0, "{spec_str}");
        let q = spec.build();
        testing::model_check(&q, 0x51AE ^ spec_str.len() as u64);
        testing::mpmc_stress(&q, 2, 2, 2_000);
    }
}

/// Degenerate configurations clamp instead of panicking, and the clamped
/// queue still delivers exactly once.
#[test]
fn degenerate_configs_clamp_and_work() {
    for (shards, d, refresh) in [(0usize, 0usize, 0u32), (1, 9, 1), (3, 99, u32::MAX)] {
        let q = ShardedQueue::from_factory(
            &ShardedConfig::new()
                .with_shards(shards)
                .with_d(d)
                .with_refresh(refresh),
            |_| Lcrq::with_config(LcrqConfig::new().with_ring_order(4)),
        );
        assert!(q.shards() >= 1);
        assert!((1..=q.shards()).contains(&q.d()));
        assert!(q.refresh() >= 1);
        testing::mpmc_stress_relaxed(&q, 2, 2, 1_000, q.rank_error_bound(4));
    }
}

/// ci.sh sharded-gate entry point: relaxed MPMC stress over the LCRQ
/// inner backend, honoring `LCRQ_TEST_SEED` (the gate replays four
/// seeds). The analytic envelope comes from the spec, the workload from
/// the shared battery.
#[test]
fn seeded_stress_sharded_lcrq() {
    let spec = QueueSpec::parse("sharded:shards=4,d=2,refresh=16,inner=lcrq:ring=6").unwrap();
    let q = spec.build();
    let seed = test_seed(0x5EED_0001);
    testing::relaxed_model_check(&q, seed, spec.rank_error_bound(1) as usize);
    testing::mpmc_stress_relaxed(&q, 3, 3, 4_000, spec.rank_error_bound(6));
}

/// ci.sh sharded-gate entry point: same battery over the SCQ-based
/// portable inner backend.
#[test]
fn seeded_stress_sharded_lscq() {
    let spec = QueueSpec::parse("sharded:shards=4,d=2,refresh=16,inner=lscq:ring=6").unwrap();
    let q = spec.build();
    let seed = test_seed(0x5EED_0002);
    testing::relaxed_model_check(&q, seed, spec.rank_error_bound(1) as usize);
    testing::mpmc_stress_relaxed(&q, 3, 3, 4_000, spec.rank_error_bound(6));
}

/// ci.sh sharded-gate entry point: same battery over the wait-free wCQ
/// inner backend (helping engages under the stress battery's contention).
#[test]
fn seeded_stress_sharded_wcq() {
    let spec = QueueSpec::parse("sharded:shards=4,d=2,refresh=16,inner=wcq:ring=6").unwrap();
    let q = spec.build();
    let seed = test_seed(0x5EED_0003);
    testing::relaxed_model_check(&q, seed, spec.rank_error_bound(1) as usize);
    testing::mpmc_stress_relaxed(&q, 3, 3, 4_000, spec.rank_error_bound(6));
}
