//! Progress-property tests: op-wise nonblocking behaviour (paper §4.2.1),
//! robustness to adversarial scheduling, and — the wait-free upgrade — an
//! *empirical step bound*: wCQ operations must complete within a declared
//! number of the caller's own atomic steps even when peer threads stall or
//! every optimistic attempt is made to fail, a bound the lock-free
//! backends demonstrably cannot meet (see the `step_bound` module).

use lcrq::queues::ConcurrentQueue;
use lcrq::util::adversary;
use lcrq::util::metrics::{self, Event, Snapshot};
use lcrq::{Lcrq, LcrqConfig, Lscq, Wcq};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The step meter: progress bounds counted in the operation's own steps.
// ---------------------------------------------------------------------------

/// The per-op step ceiling `wcq` declares: no completed queue operation may
/// issue more atomic steps than this, under any schedule the suite can
/// produce (stalled peers, 100 % spurious-failure injection, tiny rings).
///
/// The bound is generous against the structural worst case — ring spill
/// plus a full helping round over all 64 request records — and far below
/// what one retry loop burns when its exit condition is withheld (the
/// planted-mutant and lock-free discriminator tests drive five figures).
/// Empirical worst observed on this suite, stalls + failure storm armed:
/// ≈60 steps.
const WCQ_STEP_CEILING: u64 = 3_000;

/// Atomic steps in a metrics delta: every hardware atomic the operation
/// issued (F&A, SWAP, T&S, single- and double-width CAS attempts) plus
/// ring-entry inspections (`NodeVisit`, ≥1 per attempt loop iteration).
/// Retries add more of both, so this is the operational currency a
/// progress bound is stated in — wall-clock plays no part.
fn steps_in(d: &Snapshot) -> u64 {
    d.get(Event::Faa)
        + d.get(Event::Swap)
        + d.get(Event::Tas)
        + d.get(Event::CasAttempt)
        + d.get(Event::Cas2Attempt)
        + d.get(Event::NodeVisit)
}

/// Runs `workers` threads, each completing `budget` enqueue+dequeue pairs
/// against `q`, metering every completed operation's steps through the
/// thread-local counters; returns the worst single-op step count seen.
fn worst_steps_per_op<Q: ConcurrentQueue>(q: &Q, workers: usize, budget: u64) -> u64 {
    let max_steps = AtomicU64::new(0);
    let max_steps = &max_steps;
    std::thread::scope(|s| {
        for t in 0..workers {
            s.spawn(move || {
                let mut worst = 0u64;
                for i in 0..budget {
                    let before = metrics::local_snapshot();
                    q.enqueue(lcrq::queues::testing::encode(t, i));
                    let d = metrics::local_snapshot().delta_since(&before);
                    worst = worst.max(steps_in(&d));
                    let before = metrics::local_snapshot();
                    let _ = q.dequeue();
                    let d = metrics::local_snapshot().delta_since(&before);
                    worst = worst.max(steps_in(&d));
                }
                max_steps.fetch_max(worst, Ordering::SeqCst);
            });
        }
    });
    while q.dequeue().is_some() {}
    max_steps.load(Ordering::SeqCst)
}

/// The wait-free backend meets its declared ceiling under plain MPMC
/// contention (no injection; the adversarial variants live in
/// `step_bound`). This is the baseline the discriminator tests sharpen.
#[test]
fn wcq_per_op_steps_stay_bounded_under_contention() {
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(4));
    let worst = worst_steps_per_op(&q, 6, 2_000);
    assert!(
        worst <= WCQ_STEP_CEILING,
        "wcq op took {worst} steps, over the declared ceiling {WCQ_STEP_CEILING}"
    );
}

/// Mutation check for the harness itself: a backend with a planted retry
/// loop (a CAS whose success is withheld) must be *flagged* by the step
/// meter. If this test fails, the meter has gone blind and the wait-free
/// assertions above prove nothing.
#[test]
fn step_meter_flags_a_planted_retry_loop_backend() {
    /// An `Lscq` with a known mutation: every dequeue first runs a
    /// compare-and-swap retry loop whose exit condition never comes (the
    /// gate word stays 0, the CAS wants 1→2). This is the shape of bug —
    /// an unbounded optimistic retry — the step bound exists to catch.
    struct RetryLoopQueue {
        inner: Lscq,
        gate: AtomicU64,
    }
    impl ConcurrentQueue for RetryLoopQueue {
        fn enqueue(&self, value: u64) {
            self.inner.enqueue(value);
        }
        fn dequeue(&self) -> Option<u64> {
            for _ in 0..50_000 {
                if lcrq::atomic::ops::cas(&self.gate, 1, 2).is_ok() {
                    break;
                }
            }
            self.inner.dequeue()
        }
        fn name(&self) -> &'static str {
            "retry-loop-mutant"
        }
        fn is_nonblocking(&self) -> bool {
            true
        }
    }
    let q = RetryLoopQueue {
        inner: Lscq::with_config(LcrqConfig::new().with_ring_order(4)),
        gate: AtomicU64::new(0),
    };
    let worst = worst_steps_per_op(&q, 2, 20);
    assert!(
        worst > WCQ_STEP_CEILING,
        "planted retry loop went undetected: worst op was {worst} steps, \
         ceiling {WCQ_STEP_CEILING} — the step meter is blind"
    );
}

// ---------------------------------------------------------------------------
// Op-wise nonblocking behaviour (paper §4.2.1) across the backend family.
// ---------------------------------------------------------------------------

/// Enqueues complete while dequeuers continuously hammer an empty queue —
/// the infinite-array queue's livelock scenario, which LCRQ's close-and-
/// move-on design resolves (§4).
#[test]
fn enqueues_are_not_livelocked_by_empty_dequeuers() {
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let enqueued = std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = q.dequeue();
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut n = 0u64;
        while Instant::now() < deadline {
            q.enqueue(n);
            n += 1;
        }
        stop.store(true, Ordering::Relaxed);
        n
    });
    assert!(
        enqueued > 1_000,
        "enqueuer should make steady progress, got {enqueued}"
    );
}

/// Dequeues complete while enqueuers continuously push — dequeuers must
/// never be starved into returning only EMPTY.
#[test]
fn dequeues_make_progress_under_enqueue_pressure() {
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let got = std::thread::scope(|s| {
        for t in 0..2u64 {
            s.spawn(move || {
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    q.enqueue(t << 40 | i);
                    i += 1;
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut got = 0u64;
        while Instant::now() < deadline {
            if q.dequeue().is_some() {
                got += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        got
    });
    assert!(
        got > 1_000,
        "dequeuer should make steady progress, got {got}"
    );
}

/// Under heavy injected preemption, the nonblocking queues must still
/// complete a fixed workload promptly (nobody waits on a preempted thread).
#[test]
fn lcrq_completes_under_adversarial_preemption() {
    adversary::set_preempt_ppm(5_000);
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(5));
    let total = AtomicU64::new(0);
    let (q, total) = (&q, &total);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                for i in 0..2_000u64 {
                    q.enqueue(t << 40 | i);
                    if q.dequeue().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    // Drain the imbalance.
    let mut leftover = 0;
    while q.dequeue().is_some() {
        leftover += 1;
    }
    assert_eq!(total.load(Ordering::Relaxed) + leftover, 12_000);
}

/// A CRQ whose enqueuers starve closes rather than spinning forever: with a
/// ring of 2 and many threads, the LCRQ must keep absorbing items by
/// appending fresh rings (bounded only by memory), never deadlocking.
#[test]
fn tiny_rings_never_wedge_the_queue() {
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(1)
            .with_starvation_limit(4),
    );
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..2_500u64 {
                    q.enqueue(t << 40 | i);
                }
            });
        }
        s.spawn(move || {
            // Every item must eventually come out (a hang here fails the
            // test run); R=2 with starvation limit 4 forces constant ring
            // replacement, the path most prone to wedging.
            let mut got = 0u64;
            while got < 10_000 {
                if q.dequeue().is_some() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    assert_eq!(q.dequeue(), None);
}

/// LSCQ's livelock defence is structural, like LCRQ's: a starved ring
/// closes and the list moves on. Enqueuers must make steady progress
/// against an empty-dequeue storm.
#[test]
fn lscq_enqueues_are_not_livelocked_by_empty_dequeuers() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let enqueued = std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = q.dequeue();
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut n = 0u64;
        while Instant::now() < deadline {
            let _ = q.try_enqueue(n);
            n += 1;
        }
        stop.store(true, Ordering::Relaxed);
        n
    });
    assert!(
        enqueued > 1_000,
        "LSCQ enqueuer should make steady progress, got {enqueued}"
    );
}

/// LSCQ under heavy injected preemption: same fixed workload as the LCRQ
/// adversary test, exercising the `preempt_point` hooks inside the SCQ
/// entry loops.
#[test]
fn lscq_completes_under_adversarial_preemption() {
    adversary::set_preempt_ppm(5_000);
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(5));
    let total = AtomicU64::new(0);
    let (q, total) = (&q, &total);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                for i in 0..2_000u64 {
                    q.enqueue(t << 40 | i);
                    if q.dequeue().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    let mut leftover = 0;
    while q.dequeue().is_some() {
        leftover += 1;
    }
    assert_eq!(total.load(Ordering::Relaxed) + leftover, 12_000);
}

/// Tiny SCQ rings under multi-producer pressure: the list must keep
/// absorbing items by appending fresh rings, never wedging.
#[test]
fn lscq_tiny_rings_never_wedge_the_queue() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(1));
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..2_500u64 {
                    q.enqueue(t << 40 | i);
                }
            });
        }
        s.spawn(move || {
            let mut got = 0u64;
            while got < 10_000 {
                if q.dequeue().is_some() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    assert_eq!(q.dequeue(), None);
}

/// wCQ shares the structural livelock defence (tantrum close + fresh ring)
/// and adds the helping layer on top; an empty-dequeue storm must not slow
/// enqueuers below steady progress.
#[test]
fn wcq_enqueues_are_not_livelocked_by_empty_dequeuers() {
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let enqueued = std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = q.dequeue();
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut n = 0u64;
        while Instant::now() < deadline {
            let _ = q.try_enqueue(n);
            n += 1;
        }
        stop.store(true, Ordering::Relaxed);
        n
    });
    assert!(
        enqueued > 1_000,
        "wCQ enqueuer should make steady progress, got {enqueued}"
    );
}

/// wCQ under heavy injected preemption: the fixed workload must complete
/// with every item accounted for, driving the preempt hooks inside both
/// the fast path and the helping steps.
#[test]
fn wcq_completes_under_adversarial_preemption() {
    adversary::set_preempt_ppm(5_000);
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(5));
    let total = AtomicU64::new(0);
    let (q, total) = (&q, &total);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                for i in 0..2_000u64 {
                    q.enqueue(t << 40 | i);
                    if q.dequeue().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    let mut leftover = 0;
    while q.dequeue().is_some() {
        leftover += 1;
    }
    assert_eq!(total.load(Ordering::Relaxed) + leftover, 12_000);
}

/// Tiny wCQ rings under multi-producer pressure: constant ring turnover
/// with helped requests spanning ring replacement, never wedging.
#[test]
fn wcq_tiny_rings_never_wedge_the_queue() {
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(1));
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..2_500u64 {
                    q.enqueue(t << 40 | i);
                }
            });
        }
        s.spawn(move || {
            let mut got = 0u64;
            while got < 10_000 {
                if q.dequeue().is_some() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    assert_eq!(q.dequeue(), None);
}

/// The SCQ threshold-counter regression: a dequeue-on-empty storm must
/// decay the threshold and then stop touching `head` entirely. If the
/// `threshold.fetch_sub(1)` decrement were removed, the counter would sit
/// at its maximum forever and every empty dequeue would keep issuing F&A
/// on `head` — the Figure-2 livelock ingredient SCQ exists to rule out —
/// and the F&A-freeze assertion below would fail.
#[test]
fn scq_threshold_decays_and_freezes_empty_dequeues() {
    // Ring capacity n = 16. A fresh ring starts exhausted; one enqueue
    // re-arms the threshold to its maximum (3n - 1 = 47) and the dequeue
    // drains the ring again.
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(4));
    q.enqueue(1);
    assert_eq!(q.dequeue(), Some(1));
    // Decay: each empty dequeue decrements the threshold exactly once, so
    // 4n + 16 storm iterations push it below zero with slack to spare.
    for _ in 0..(4 * 16 + 16) {
        assert_eq!(q.dequeue(), None);
    }
    // Frozen: every further empty dequeue must exit straight off the
    // exhausted counter — zero fetch-and-add of any kind.
    let before = metrics::local_snapshot();
    for _ in 0..1_000 {
        assert_eq!(q.dequeue(), None);
    }
    let d = metrics::local_snapshot().delta_since(&before);
    assert_eq!(
        d.get(Event::Faa),
        0,
        "exhausted-threshold dequeues must not touch head/tail"
    );
    assert!(
        d.get(Event::ThresholdExhausted) >= 1_000,
        "each empty dequeue should report the threshold fast-exit, got {}",
        d.get(Event::ThresholdExhausted)
    );
    // And the queue still works afterwards: an enqueue re-arms it.
    q.enqueue(7);
    assert_eq!(q.dequeue(), Some(7));
}

/// Fig-2-style concurrent storm: dequeuers hammer an (almost always)
/// empty LSCQ while a producer trickles items. Termination of this test
/// *is* the livelock-freedom assertion — an SCQ without the threshold
/// bound can spin dequeuers forever behind a racing enqueuer's F&A.
#[test]
fn scq_dequeue_storm_on_empty_queue_terminates() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(3));
    let q = &q;
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                let mut got = 0u64;
                // 50k empty-heavy dequeues each; must complete promptly.
                for _ in 0..50_000 {
                    if q.dequeue().is_some() {
                        got += 1;
                    }
                }
                got
            });
        }
        s.spawn(move || {
            for i in 0..1_000u64 {
                q.enqueue(i);
            }
        });
    });
    while q.dequeue().is_some() {}
}

/// The lock-based combining queues *do* lose progress when their combiner
/// is preempted — the contrast the paper's Figure 6b quantifies. This test
/// only asserts they still *complete* (blocking, not deadlocking).
#[test]
fn combining_queues_complete_under_adversarial_preemption() {
    adversary::set_preempt_ppm(2_000);
    let q = lcrq::CcQueue::new();
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..500u64 {
                    q.enqueue(t << 40 | i);
                    let _ = q.dequeue();
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    while q.dequeue().is_some() {}
}

// ---------------------------------------------------------------------------
// The step-bound discriminator (the PR's headline artifact).
//
// One harness, one adversary shape, two verdicts:
//
// * stall 2 of 8 threads permanently at their hazard-publish / F&A windows
//   (`FaultAction::Stall` — a simulated crash), and
// * make every optimistic attempt at the backend's own entry sites
//   spuriously fail (`FaultAction::Fail` at 100 %, finite hit budget —
//   a simulated contention storm),
//
// then require the surviving threads to complete their entire op budget
// with **every completed operation under the declared per-op step
// ceiling**. The wait-free wCQ passes: a failed attempt costs one bounded
// round before the operation escapes to the helping slow path, so the
// storm's cost per op is capped by construction. The lock-free LSCQ runs
// the *same* harness and blows the ceiling (`#[should_panic]`): its entry
// loop retries on every spurious failure with no escape hatch, so one
// unlucky operation absorbs the storm's whole hit budget. Completion-wise
// both families survive (the crash-tolerance suite proves that); the step
// bound is exactly where lock-free and wait-free part ways.
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod step_bound {
    use super::{steps_in, WCQ_STEP_CEILING};
    use lcrq::queues::testing::encode;
    use lcrq::queues::ConcurrentQueue;
    use lcrq::util::fault::{self, FaultAction, Scenario, Site};
    use lcrq::util::metrics;
    use lcrq::util::rng::test_seed;
    use lcrq::{LcrqConfig, Lscq, Wcq};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// Serializes the module's tests: the fail-point registry is global.
    static LOCK: Mutex<()> = Mutex::new(());
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    const WORKERS: usize = 8;
    const STALLS: usize = 2;
    const BUDGET: u64 = 1_000;
    /// Hits granted to each 100 %-probability `Fail` site: enough that a
    /// retry loop with no escape burns five figures of steps in one op,
    /// small enough that the storm ends and the run terminates.
    const FAIL_HITS: u64 = 30_000;

    /// Builds the shared adversary over the given backend-specific entry
    /// sites: 2-of-8 permanent stalls at the substrate windows plus a
    /// total spurious-failure storm at the backend's own retry points.
    fn adversary(seed: u64, enq_site: Site, deq_site: Site) -> Scenario {
        Scenario::new(seed)
            .with(Site::HazardProtect, 400_000, FaultAction::Stall)
            .with(Site::Faa, 400_000, FaultAction::Stall)
            .max_stalls(STALLS as u64)
            .with_limited(enq_site, 1_000_000, FaultAction::Fail, FAIL_HITS)
            .with_limited(deq_site, 1_000_000, FaultAction::Fail, FAIL_HITS)
    }

    /// The step-bound harness. Stalled threads park mid-operation and are
    /// released only after the survivors finish, so their unfinished ops
    /// are never metered — the bound speaks about *completed* operations,
    /// exactly as a wait-freedom claim does. Panics with "per-op step
    /// bound exceeded" when a completed op overran `ceiling`.
    fn assert_step_bound<Q: ConcurrentQueue>(label: &str, q: &Q, scenario: Scenario, ceiling: u64) {
        let seed = scenario.seed();
        let stext = scenario.to_string();
        scenario.arm();

        let done = AtomicUsize::new(0);
        let max_steps = AtomicU64::new(0);
        let (done, max_steps) = (&done, &max_steps);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|t| {
                    s.spawn(move || {
                        let mut worst = 0u64;
                        for i in 0..BUDGET {
                            let before = metrics::local_snapshot();
                            q.enqueue(encode(t, i));
                            let d = metrics::local_snapshot().delta_since(&before);
                            worst = worst.max(steps_in(&d));
                            let before = metrics::local_snapshot();
                            let _ = q.dequeue();
                            let d = metrics::local_snapshot().delta_since(&before);
                            worst = worst.max(steps_in(&d));
                        }
                        max_steps.fetch_max(worst, Ordering::SeqCst);
                        done.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();

            // Survivors must finish their full budget while the stalled
            // threads stay parked; the deadline converts a progress failure
            // into a report instead of a hang.
            let deadline = Instant::now() + Duration::from_secs(120);
            while done.load(Ordering::SeqCst) < WORKERS - STALLS {
                if Instant::now() >= deadline {
                    fault::disarm();
                    panic!(
                        "[{label}] survivors starved with {STALLS} peers stalled \
                         under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
                    );
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let stalled = fault::stalled_count();
            fault::disarm(); // release the "crashed" threads so they can join
            assert_eq!(
                stalled, STALLS,
                "[{label}] expected exactly {STALLS} stalled threads under \
                 [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
            );
            for h in handles {
                h.join().unwrap();
            }
        });
        while q.dequeue().is_some() {}

        let worst = max_steps.load(Ordering::SeqCst);
        assert!(
            worst <= ceiling,
            "[{label}] per-op step bound exceeded: worst completed op took \
             {worst} steps, ceiling {ceiling}, under [{stext}] \
             (replay with LCRQ_TEST_SEED={seed:#x})"
        );
    }

    /// The wait-free claim must rest on a path the suite actually runs:
    /// with every fast-path placement window spuriously failing, every
    /// enqueue escapes to the announced slow path, and each announced
    /// request must reach a terminal phase (the helping machinery engages
    /// and finishes what it starts).
    #[test]
    fn wcq_helping_machinery_engages_and_finalizes() {
        let _g = guard();
        let seed = test_seed(0x57E9_B0D5_EED0_0003);
        let scenario = Scenario::new(seed).with(Site::WcqEnqueue, 1_000_000, FaultAction::Fail);
        scenario.arm();
        let q = Wcq::with_config(LcrqConfig::new().with_ring_order(4));
        let announced = AtomicU64::new(0);
        let finalized = AtomicU64::new(0);
        let (q, announced, finalized) = (&q, &announced, &finalized);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let before = metrics::local_snapshot();
                    for i in 0..1_000u64 {
                        q.enqueue(t << 40 | i);
                        let _ = q.dequeue();
                    }
                    let d = metrics::local_snapshot().delta_since(&before);
                    announced.fetch_add(d.get(metrics::Event::HelpAnnounce), Ordering::SeqCst);
                    finalized.fetch_add(d.get(metrics::Event::HelpFinalized), Ordering::SeqCst);
                });
            }
        });
        fault::disarm();
        while q.dequeue().is_some() {}
        let (a, f) = (
            announced.load(Ordering::SeqCst),
            finalized.load(Ordering::SeqCst),
        );
        assert!(
            a >= 1_000,
            "a total placement-failure storm must drive enqueues through the \
             slow path, got only {a} announcements \
             (replay with LCRQ_TEST_SEED={seed:#x})"
        );
        assert!(
            f >= a,
            "announced requests must reach a terminal phase: {a} announced, \
             {f} finalized (replay with LCRQ_TEST_SEED={seed:#x})"
        );
    }

    /// The wait-free verdict: with 2 of 8 threads crashed and every fast-
    /// path attempt failing, each surviving wcq operation still completes
    /// within the declared ceiling — failures cost one bounded round each
    /// before the op escapes to the helping slow path, which finalizes
    /// through at most one claim/CAS chain per position.
    #[test]
    fn wcq_survivors_hold_the_step_bound_with_stalled_peers() {
        let _g = guard();
        let seed = test_seed(0x57E9_B0D5_EED0_0001);
        let q = Wcq::with_config(LcrqConfig::new().with_ring_order(6));
        assert_step_bound(
            "wcq",
            &q,
            adversary(seed, Site::WcqEnqueue, Site::WcqDequeue),
            WCQ_STEP_CEILING,
        );
    }

    /// The lock-free contrast, same harness, same adversary shape: LSCQ's
    /// entry loops retry on every spurious failure with no bounded escape,
    /// so one operation absorbs the storm's whole hit budget and blows the
    /// ceiling by an order of magnitude. This is the honest statement of
    /// what `wcq` buys: not survival (both survive) but a per-op bound.
    #[test]
    #[should_panic(expected = "per-op step bound exceeded")]
    fn lscq_blows_the_step_bound_under_the_same_adversary() {
        let _g = guard();
        let seed = test_seed(0x57E9_B0D5_EED0_0002);
        let q = Lscq::with_config(LcrqConfig::new().with_ring_order(6));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assert_step_bound(
                "lscq",
                &q,
                adversary(seed, Site::ScqEnqueue, Site::ScqDequeue),
                WCQ_STEP_CEILING,
            );
        }));
        fault::disarm(); // never leave stalled threads behind on panic
        if let Err(e) = result {
            std::panic::resume_unwind(e);
        }
    }
}
