//! Progress-property tests: op-wise nonblocking behaviour (paper §4.2.1)
//! and robustness to adversarial scheduling.

use lcrq::util::adversary;
use lcrq::util::metrics::{self, Event};
use lcrq::{Lcrq, LcrqConfig, Lscq};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Enqueues complete while dequeuers continuously hammer an empty queue —
/// the infinite-array queue's livelock scenario, which LCRQ's close-and-
/// move-on design resolves (§4).
#[test]
fn enqueues_are_not_livelocked_by_empty_dequeuers() {
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let enqueued = std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = q.dequeue();
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut n = 0u64;
        while Instant::now() < deadline {
            q.enqueue(n);
            n += 1;
        }
        stop.store(true, Ordering::Relaxed);
        n
    });
    assert!(
        enqueued > 1_000,
        "enqueuer should make steady progress, got {enqueued}"
    );
}

/// Dequeues complete while enqueuers continuously push — dequeuers must
/// never be starved into returning only EMPTY.
#[test]
fn dequeues_make_progress_under_enqueue_pressure() {
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let got = std::thread::scope(|s| {
        for t in 0..2u64 {
            s.spawn(move || {
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    q.enqueue(t << 40 | i);
                    i += 1;
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut got = 0u64;
        while Instant::now() < deadline {
            if q.dequeue().is_some() {
                got += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        got
    });
    assert!(
        got > 1_000,
        "dequeuer should make steady progress, got {got}"
    );
}

/// Under heavy injected preemption, the nonblocking queues must still
/// complete a fixed workload promptly (nobody waits on a preempted thread).
#[test]
fn lcrq_completes_under_adversarial_preemption() {
    adversary::set_preempt_ppm(5_000);
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(5));
    let total = AtomicU64::new(0);
    let (q, total) = (&q, &total);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                for i in 0..2_000u64 {
                    q.enqueue(t << 40 | i);
                    if q.dequeue().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    // Drain the imbalance.
    let mut leftover = 0;
    while q.dequeue().is_some() {
        leftover += 1;
    }
    assert_eq!(total.load(Ordering::Relaxed) + leftover, 12_000);
}

/// A CRQ whose enqueuers starve closes rather than spinning forever: with a
/// ring of 2 and many threads, the LCRQ must keep absorbing items by
/// appending fresh rings (bounded only by memory), never deadlocking.
#[test]
fn tiny_rings_never_wedge_the_queue() {
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(1)
            .with_starvation_limit(4),
    );
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..2_500u64 {
                    q.enqueue(t << 40 | i);
                }
            });
        }
        s.spawn(move || {
            // Every item must eventually come out (a hang here fails the
            // test run); R=2 with starvation limit 4 forces constant ring
            // replacement, the path most prone to wedging.
            let mut got = 0u64;
            while got < 10_000 {
                if q.dequeue().is_some() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    assert_eq!(q.dequeue(), None);
}

/// LSCQ's livelock defence is structural, like LCRQ's: a starved ring
/// closes and the list moves on. Enqueuers must make steady progress
/// against an empty-dequeue storm.
#[test]
fn lscq_enqueues_are_not_livelocked_by_empty_dequeuers() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let enqueued = std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = q.dequeue();
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut n = 0u64;
        while Instant::now() < deadline {
            let _ = q.try_enqueue(n);
            n += 1;
        }
        stop.store(true, Ordering::Relaxed);
        n
    });
    assert!(
        enqueued > 1_000,
        "LSCQ enqueuer should make steady progress, got {enqueued}"
    );
}

/// LSCQ under heavy injected preemption: same fixed workload as the LCRQ
/// adversary test, exercising the `preempt_point` hooks inside the SCQ
/// entry loops.
#[test]
fn lscq_completes_under_adversarial_preemption() {
    adversary::set_preempt_ppm(5_000);
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(5));
    let total = AtomicU64::new(0);
    let (q, total) = (&q, &total);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                for i in 0..2_000u64 {
                    q.enqueue(t << 40 | i);
                    if q.dequeue().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    let mut leftover = 0;
    while q.dequeue().is_some() {
        leftover += 1;
    }
    assert_eq!(total.load(Ordering::Relaxed) + leftover, 12_000);
}

/// Tiny SCQ rings under multi-producer pressure: the list must keep
/// absorbing items by appending fresh rings, never wedging.
#[test]
fn lscq_tiny_rings_never_wedge_the_queue() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(1));
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..2_500u64 {
                    q.enqueue(t << 40 | i);
                }
            });
        }
        s.spawn(move || {
            let mut got = 0u64;
            while got < 10_000 {
                if q.dequeue().is_some() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    assert_eq!(q.dequeue(), None);
}

/// The SCQ threshold-counter regression: a dequeue-on-empty storm must
/// decay the threshold and then stop touching `head` entirely. If the
/// `threshold.fetch_sub(1)` decrement were removed, the counter would sit
/// at its maximum forever and every empty dequeue would keep issuing F&A
/// on `head` — the Figure-2 livelock ingredient SCQ exists to rule out —
/// and the F&A-freeze assertion below would fail.
#[test]
fn scq_threshold_decays_and_freezes_empty_dequeues() {
    // Ring capacity n = 16. A fresh ring starts exhausted; one enqueue
    // re-arms the threshold to its maximum (3n - 1 = 47) and the dequeue
    // drains the ring again.
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(4));
    q.enqueue(1);
    assert_eq!(q.dequeue(), Some(1));
    // Decay: each empty dequeue decrements the threshold exactly once, so
    // 4n + 16 storm iterations push it below zero with slack to spare.
    for _ in 0..(4 * 16 + 16) {
        assert_eq!(q.dequeue(), None);
    }
    // Frozen: every further empty dequeue must exit straight off the
    // exhausted counter — zero fetch-and-add of any kind.
    let before = metrics::local_snapshot();
    for _ in 0..1_000 {
        assert_eq!(q.dequeue(), None);
    }
    let d = metrics::local_snapshot().delta_since(&before);
    assert_eq!(
        d.get(Event::Faa),
        0,
        "exhausted-threshold dequeues must not touch head/tail"
    );
    assert!(
        d.get(Event::ThresholdExhausted) >= 1_000,
        "each empty dequeue should report the threshold fast-exit, got {}",
        d.get(Event::ThresholdExhausted)
    );
    // And the queue still works afterwards: an enqueue re-arms it.
    q.enqueue(7);
    assert_eq!(q.dequeue(), Some(7));
}

/// Fig-2-style concurrent storm: dequeuers hammer an (almost always)
/// empty LSCQ while a producer trickles items. Termination of this test
/// *is* the livelock-freedom assertion — an SCQ without the threshold
/// bound can spin dequeuers forever behind a racing enqueuer's F&A.
#[test]
fn scq_dequeue_storm_on_empty_queue_terminates() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(3));
    let q = &q;
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                let mut got = 0u64;
                // 50k empty-heavy dequeues each; must complete promptly.
                for _ in 0..50_000 {
                    if q.dequeue().is_some() {
                        got += 1;
                    }
                }
                got
            });
        }
        s.spawn(move || {
            for i in 0..1_000u64 {
                q.enqueue(i);
            }
        });
    });
    while q.dequeue().is_some() {}
}

/// The lock-based combining queues *do* lose progress when their combiner
/// is preempted — the contrast the paper's Figure 6b quantifies. This test
/// only asserts they still *complete* (blocking, not deadlocking).
#[test]
fn combining_queues_complete_under_adversarial_preemption() {
    adversary::set_preempt_ppm(2_000);
    let q = lcrq::CcQueue::new();
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..500u64 {
                    q.enqueue(t << 40 | i);
                    let _ = q.dequeue();
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    while q.dequeue().is_some() {}
}
