//! Progress-property tests: op-wise nonblocking behaviour (paper §4.2.1)
//! and robustness to adversarial scheduling.

use lcrq::util::adversary;
use lcrq::{Lcrq, LcrqConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Enqueues complete while dequeuers continuously hammer an empty queue —
/// the infinite-array queue's livelock scenario, which LCRQ's close-and-
/// move-on design resolves (§4).
#[test]
fn enqueues_are_not_livelocked_by_empty_dequeuers() {
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let enqueued = std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = q.dequeue();
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut n = 0u64;
        while Instant::now() < deadline {
            q.enqueue(n);
            n += 1;
        }
        stop.store(true, Ordering::Relaxed);
        n
    });
    assert!(
        enqueued > 1_000,
        "enqueuer should make steady progress, got {enqueued}"
    );
}

/// Dequeues complete while enqueuers continuously push — dequeuers must
/// never be starved into returning only EMPTY.
#[test]
fn dequeues_make_progress_under_enqueue_pressure() {
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(4));
    let stop = AtomicBool::new(false);
    let (q, stop) = (&q, &stop);
    let got = std::thread::scope(|s| {
        for t in 0..2u64 {
            s.spawn(move || {
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    q.enqueue(t << 40 | i);
                    i += 1;
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut got = 0u64;
        while Instant::now() < deadline {
            if q.dequeue().is_some() {
                got += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        got
    });
    assert!(
        got > 1_000,
        "dequeuer should make steady progress, got {got}"
    );
}

/// Under heavy injected preemption, the nonblocking queues must still
/// complete a fixed workload promptly (nobody waits on a preempted thread).
#[test]
fn lcrq_completes_under_adversarial_preemption() {
    adversary::set_preempt_ppm(5_000);
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(5));
    let total = AtomicU64::new(0);
    let (q, total) = (&q, &total);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                for i in 0..2_000u64 {
                    q.enqueue(t << 40 | i);
                    if q.dequeue().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    // Drain the imbalance.
    let mut leftover = 0;
    while q.dequeue().is_some() {
        leftover += 1;
    }
    assert_eq!(total.load(Ordering::Relaxed) + leftover, 12_000);
}

/// A CRQ whose enqueuers starve closes rather than spinning forever: with a
/// ring of 2 and many threads, the LCRQ must keep absorbing items by
/// appending fresh rings (bounded only by memory), never deadlocking.
#[test]
fn tiny_rings_never_wedge_the_queue() {
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(1)
            .with_starvation_limit(4),
    );
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..2_500u64 {
                    q.enqueue(t << 40 | i);
                }
            });
        }
        s.spawn(move || {
            // Every item must eventually come out (a hang here fails the
            // test run); R=2 with starvation limit 4 forces constant ring
            // replacement, the path most prone to wedging.
            let mut got = 0u64;
            while got < 10_000 {
                if q.dequeue().is_some() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    assert_eq!(q.dequeue(), None);
}

/// The lock-based combining queues *do* lose progress when their combiner
/// is preempted — the contrast the paper's Figure 6b quantifies. This test
/// only asserts they still *complete* (blocking, not deadlocking).
#[test]
fn combining_queues_complete_under_adversarial_preemption() {
    adversary::set_preempt_ppm(2_000);
    let q = lcrq::CcQueue::new();
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..500u64 {
                    q.enqueue(t << 40 | i);
                    let _ = q.dequeue();
                }
            });
        }
    });
    adversary::set_preempt_ppm(0);
    while q.dequeue().is_some() {}
}
