//! Channel shutdown semantics (ISSUE 2 acceptance): every item accepted
//! before close is delivered exactly once, receivers observe `Disconnected`
//! only after the drain, rejected values come back to the caller, and
//! heap-owned items are dropped exactly once no matter where shutdown
//! catches them (in the queue, in a rejected send, or unreceived at drop).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use lcrq::channel::{self, RecvError, TryRecvError, TrySendError};

/// Producers race `close()`: every `send` that returned `Ok` must be
/// delivered exactly once, every `Err(SendError)` must return the value, and
/// no item may be both.
#[test]
fn close_mid_stream_delivers_accepted_items_exactly_once() {
    const PRODUCERS: u64 = 4;
    const PER: u64 = 10_000;

    for round in 0..8 {
        let (tx, rx) = channel::channel::<u64>();
        let barrier = Barrier::new(PRODUCERS as usize + 1);
        let barrier = &barrier;

        let (accepted, received) = std::thread::scope(|s| {
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let tx = tx.clone();
                    s.spawn(move || {
                        barrier.wait();
                        let mut ok = Vec::new();
                        for seq in 0..PER {
                            let v = (p << 32) | seq;
                            match tx.send(v) {
                                Ok(()) => ok.push(v),
                                Err(e) => {
                                    // The rejected value comes back intact;
                                    // once closed, it stays closed.
                                    assert_eq!(e.0, v);
                                    break;
                                }
                            }
                        }
                        ok
                    })
                })
                .collect();

            barrier.wait();
            // Let an arbitrary prefix through, varying per round.
            std::thread::sleep(Duration::from_micros(200 * round));
            tx.close();

            let mut received = Vec::new();
            while let Ok(v) = rx.recv() {
                received.push(v);
            }
            let accepted: Vec<u64> = producers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            (accepted, received)
        });

        let accepted: HashSet<u64> = accepted.into_iter().collect();
        let mut seen = HashSet::new();
        for v in &received {
            assert!(seen.insert(*v), "round {round}: item {v} delivered twice");
            assert!(accepted.contains(v), "round {round}: phantom item {v}");
        }
        assert_eq!(
            seen.len(),
            accepted.len(),
            "round {round}: accepted items lost"
        );
    }
}

/// The precise acceptance shape: k pre-close items drain in order, then the
/// receiver observes `Disconnected` — never `Disconnected` early, never an
/// item after it.
#[test]
fn pre_close_items_then_disconnected() {
    let (tx, rx) = channel::channel::<u64>();
    for i in 0..1_000 {
        tx.send(i).unwrap();
    }
    tx.close();
    assert!(tx.send(9999).is_err(), "send accepted after close");
    for i in 0..1_000 {
        assert_eq!(rx.recv(), Ok(i));
    }
    assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
}

/// A receiver already parked on an empty channel must be woken by `close()`
/// and report `Disconnected` (not hang, not time out).
#[test]
fn close_wakes_parked_receiver() {
    let (tx, rx) = channel::channel::<u64>();
    std::thread::scope(|s| {
        let h = s.spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(50)); // let it park
        tx.close();
        assert_eq!(h.join().unwrap(), Err(RecvError::Disconnected));
    });
}

/// Same for a sender parked on a full bounded channel.
#[test]
fn close_wakes_parked_bounded_sender() {
    let (tx, rx) = channel::bounded::<u64>(1);
    tx.send(0).unwrap();
    std::thread::scope(|s| {
        let tx2 = tx.clone();
        let h = s.spawn(move || tx2.send(1));
        std::thread::sleep(Duration::from_millis(50)); // let it park
        rx.close();
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err.0, 1, "rejected value must come back");
    });
    // The pre-close item remains drainable.
    assert_eq!(rx.recv(), Ok(0));
    assert_eq!(rx.recv(), Err(RecvError::Disconnected));
}

#[test]
fn dropping_last_sender_closes() {
    let (tx, rx) = channel::channel::<u64>();
    let tx2 = tx.clone();
    tx.send(1).unwrap();
    drop(tx);
    assert!(!rx.is_closed(), "clone still alive");
    tx2.send(2).unwrap();
    drop(tx2);
    assert_eq!(rx.recv(), Ok(1));
    assert_eq!(rx.recv(), Ok(2));
    assert_eq!(rx.recv(), Err(RecvError::Disconnected));
}

#[test]
fn dropping_last_receiver_closes() {
    let (tx, rx) = channel::channel::<u64>();
    drop(rx);
    match tx.try_send(5) {
        Err(TrySendError::Closed(v)) => assert_eq!(v, 5),
        other => panic!("expected Closed, got {other:?}"),
    }
    assert!(tx.send(6).is_err());
}

/// Heap-owned payloads: every construction is balanced by exactly one drop,
/// whether the item was received, rejected by a closed channel, or still
/// queued when the endpoints dropped.
#[test]
fn drop_exactly_once_across_shutdown() {
    static LIVE: AtomicU64 = AtomicU64::new(0);
    struct Tracked(#[allow(dead_code)] u64);
    impl Tracked {
        fn new(v: u64) -> Self {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Tracked(v)
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            let prev = LIVE.fetch_sub(1, Ordering::SeqCst);
            assert!(prev > 0, "double drop");
        }
    }

    let (tx, rx) = channel::channel::<Tracked>();
    for i in 0..500 {
        tx.send(Tracked::new(i)).unwrap();
    }
    // Receive some...
    for _ in 0..200 {
        drop(rx.recv().unwrap());
    }
    tx.close();
    // ...reject one (the value comes back and drops here)...
    drop(tx.send(Tracked::new(9999)).unwrap_err().0);
    // ...drain a few more post-close...
    for _ in 0..100 {
        drop(rx.recv().unwrap());
    }
    // ...and abandon the rest in the queue.
    drop(rx);
    drop(tx);
    assert_eq!(LIVE.load(Ordering::SeqCst), 0, "leaked or double-dropped");
}

/// close() is idempotent and reports whether this call performed it.
#[test]
fn close_is_idempotent() {
    let (tx, rx) = channel::channel::<u64>();
    assert!(tx.close());
    assert!(!tx.close());
    assert!(!rx.close());
    assert!(tx.is_closed() && rx.is_closed());
}

/// Many receivers blocked in `recv()` when the channel closes: all of them
/// must wake and return, splitting the remaining items exactly once.
#[test]
fn close_wakes_all_parked_receivers() {
    const RECEIVERS: usize = 4;
    const ITEMS: u64 = 100;
    let (tx, rx) = channel::channel::<u64>();
    let got = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..RECEIVERS {
            let (rx, got) = (rx.clone(), Arc::clone(&got));
            s.spawn(move || {
                while rx.recv().is_ok() {
                    got.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(50)); // all parked
        for i in 0..ITEMS {
            tx.send(i).unwrap();
        }
        tx.close();
    });
    assert_eq!(got.load(Ordering::SeqCst), ITEMS);
}
