//! wCQ request-record state-machine suite (seeded model checks).
//!
//! The slow path in `crates/core/src/wcq.rs` runs a tiny state machine
//! per operation: INIT → announce (`PH_ENQ`/`PH_DEQ`) → claim candidates
//! → placement → finalize (`PH_DONE`/`PH_CLOSED`) → release. Helpers race
//! the owner through every transition, so the invariants worth pinning
//! are the ones a helping scheme can silently lose:
//!
//! 1. **exactly-once finalization** — each announced request is finalized
//!    by exactly one successful state CAS, so at quiescence the global
//!    `HelpFinalized` count equals `HelpAnnounce`;
//! 2. **no lost or duplicated values** — the multiset of dequeued values
//!    matches the multiset enqueued, across record-slot reuse
//!    generations;
//! 3. **drop-exactly-once** — a value delivered through a *helped*
//!    dequeue runs its destructor exactly once;
//! 4. **stall independence** — a thread stalled mid-help (possibly while
//!    owning an announced record) cannot block other requests from
//!    finalizing.
//!
//! On this host natural contention never escapes the fast path, so every
//! test forces announcements with `FaultAction::Fail` storms at the wCQ
//! entry sites; the file is compiled only with `--features
//! fault-injection`. Seeds honor `LCRQ_TEST_SEED` for byte-identical
//! replay.

#![cfg(feature = "fault-injection")]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lcrq::queues::testing::encode;
use lcrq::util::fault::{self, FaultAction, Scenario, Site};
use lcrq::util::metrics::{self, Event};
use lcrq::util::rng::test_seed;
use lcrq::{LcrqConfig, TypedWcq, Wcq};

/// Serializes tests: the fail-point registry is process-global.
static LOCK: Mutex<()> = Mutex::new(());
fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A storm that denies every fast-path placement window, forcing each
/// operation through announce → help → finalize. The slow path has no
/// fail points of its own, so 100 % probability cannot livelock it.
fn slow_path_storm(seed: u64) -> Scenario {
    Scenario::new(seed)
        .with(Site::WcqEnqueue, 1_000_000, FaultAction::Fail)
        .with(Site::WcqDequeue, 1_000_000, FaultAction::Fail)
}

/// Invariant 1 + 2 across four derived seeds: every announced request
/// finalizes exactly once, and the dequeued multiset is exact. Helping
/// races are additionally perturbed with lost helper windows
/// (`Site::WcqHelp` `Fail` = re-read from the state check).
#[test]
fn announced_requests_finalize_exactly_once_across_seeds() {
    let _g = guard();
    const THREADS: usize = 4;
    const PAIRS: u64 = 500;
    for round in 0..4u64 {
        let seed = test_seed(0x9ECD_0000 + round);
        slow_path_storm(seed)
            .with(Site::WcqHelp, 150_000, FaultAction::Fail)
            .arm();
        let q = Wcq::with_config(LcrqConfig::new().with_ring_order(5));
        let announced = AtomicU64::new(0);
        let finalized = AtomicU64::new(0);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            let (q, announced, finalized, seen) = (&q, &announced, &finalized, &seen);
            for t in 0..THREADS {
                s.spawn(move || {
                    let before = metrics::local_snapshot();
                    let mut got = Vec::new();
                    for i in 0..PAIRS {
                        q.enqueue(encode(t, i));
                        if let Some(v) = q.dequeue() {
                            got.push(v);
                        }
                    }
                    let d = metrics::local_snapshot().delta_since(&before);
                    announced.fetch_add(d.get(Event::HelpAnnounce), Ordering::SeqCst);
                    finalized.fetch_add(d.get(Event::HelpFinalized), Ordering::SeqCst);
                    seen.lock().unwrap().extend(got);
                });
            }
        });
        fault::disarm();
        let mut seen = seen.into_inner().unwrap();
        while let Some(v) = q.dequeue() {
            seen.push(v);
        }
        seen.sort_unstable();
        let mut expect: Vec<u64> = (0..THREADS)
            .flat_map(|t| (0..PAIRS).map(move |i| encode(t, i)))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect, "lost or duplicated value (seed {seed:#x})");
        let (a, f) = (
            announced.load(Ordering::SeqCst),
            finalized.load(Ordering::SeqCst),
        );
        assert!(
            a >= PAIRS,
            "storm failed to engage the slow path (seed {seed:#x})"
        );
        assert_eq!(
            f, a,
            "announce/finalize mismatch: {a} announced, {f} finalized (seed {seed:#x})"
        );
    }
}

/// Invariant 2 under record-slot reuse: far more announced operations
/// than the 64 request records, over a tiny spilling ring, so every slot
/// cycles through many sequence generations. A stale-generation helper
/// delivering into a recycled record would duplicate or lose a value.
#[test]
fn record_generations_recycle_without_duplication() {
    let _g = guard();
    let seed = test_seed(0x9ECD_0010);
    slow_path_storm(seed).arm();
    // R = 4: constant spill → tantrum-close → fresh-ring churn underneath
    // the record machinery.
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(2));
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 2_000;
    let consumed = Mutex::new(Vec::new());
    let produced_done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let (q, produced_done, consumed) = (&q, &produced_done, &consumed);
        for t in 0..PRODUCERS {
            s.spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.enqueue(encode(t, i));
                }
                produced_done.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..CONSUMERS {
            s.spawn(|| {
                let mut got = Vec::new();
                loop {
                    match q.dequeue() {
                        Some(v) => got.push(v),
                        None if produced_done.load(Ordering::SeqCst) == PRODUCERS => break,
                        None => std::thread::yield_now(),
                    }
                }
                consumed.lock().unwrap().extend(got);
            });
        }
    });
    fault::disarm();
    let mut seen = consumed.into_inner().unwrap();
    while let Some(v) = q.dequeue() {
        seen.push(v);
    }
    seen.sort_unstable();
    let mut expect: Vec<u64> = (0..PRODUCERS)
        .flat_map(|t| (0..PER_PRODUCER).map(move |i| encode(t, i)))
        .collect();
    expect.sort_unstable();
    assert_eq!(seen, expect, "record reuse lost or duplicated a value");
}

struct DropCounter(Arc<AtomicUsize>);
impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Invariant 3: with every dequeue denied its fast window, delivery runs
/// through announced dequeue records that concurrent threads help — the
/// path where a double-delivery would double-free the boxed value. Each
/// received value must drop exactly once, and the queue's own drop must
/// account for exactly the undelivered remainder.
#[test]
fn helped_dequeues_drop_each_value_exactly_once() {
    let _g = guard();
    const TOTAL: usize = 800;
    const TAKE: usize = 400;
    let seed = test_seed(0x9ECD_0020);
    slow_path_storm(seed).arm();
    let drops = Arc::new(AtomicUsize::new(0));
    let q: TypedWcq<DropCounter> = TypedWcq::with_config(LcrqConfig::new().with_ring_order(4));
    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..TOTAL {
                q.enqueue(DropCounter(Arc::clone(&drops)));
            }
        });
        s.spawn(|| {
            let mut taken = 0;
            while taken < TAKE {
                if q.dequeue().is_some() {
                    // received value dropped here
                    taken += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    });
    fault::disarm();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        TAKE,
        "a helped dequeue delivered a value zero or two times"
    );
    drop(q);
    assert_eq!(
        drops.load(Ordering::SeqCst),
        TOTAL,
        "queue drop missed undelivered boxed values"
    );
}

/// Invariant 4: one of four threads stalls permanently inside a helping
/// step (`Site::WcqHelp` `Stall`) — possibly while its *own* record is
/// announced and unfinalized. The survivors must finish their full op
/// budget anyway: peers complete the stalled thread's request and move
/// on. After `disarm` the sleeper resumes and the global accounting must
/// still be exact — its helped request must not complete a second time.
#[test]
fn a_stalled_helper_never_blocks_other_finalizations() {
    let _g = guard();
    const WORKERS: usize = 4;
    const STALLS: usize = 1;
    const PAIRS: u64 = 400;
    let seed = test_seed(0x9ECD_0030);
    slow_path_storm(seed)
        .with(Site::WcqHelp, 400_000, FaultAction::Stall)
        .max_stalls(STALLS as u64)
        .arm();
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(5));
    let done = AtomicUsize::new(0);
    let seen = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        let (q, done, seen) = (&q, &done, &seen);
        for t in 0..WORKERS {
            s.spawn(move || {
                let mut got = Vec::new();
                for i in 0..PAIRS {
                    q.enqueue(encode(t, i));
                    if let Some(v) = q.dequeue() {
                        got.push(v);
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
                seen.lock().unwrap().extend(got);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        while done.load(Ordering::SeqCst) < WORKERS - STALLS {
            assert!(
                Instant::now() < deadline,
                "survivors wedged behind a stalled helper"
            );
            std::thread::yield_now();
        }
        assert_eq!(fault::stalled_count(), STALLS, "stall gate never fired");
        fault::disarm(); // wake the sleeper so the scope can join
    });
    let mut seen = seen.into_inner().unwrap();
    while let Some(v) = q.dequeue() {
        seen.push(v);
    }
    seen.sort_unstable();
    let mut expect: Vec<u64> = (0..WORKERS)
        .flat_map(|t| (0..PAIRS).map(move |i| encode(t, i)))
        .collect();
    expect.sort_unstable();
    assert_eq!(seen, expect, "stall + resume lost or duplicated a value");
}
