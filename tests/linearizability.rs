//! Linearizability checking of real concurrent executions, for every queue
//! algorithm in the repository.
//!
//! Strategy: record many *small* histories (3 threads × 4 operations) under
//! genuine concurrency and run the Wing–Gong checker on each. Small
//! histories keep exhaustive checking fast while still catching ordering,
//! duplication, loss, and premature-EMPTY bugs — each seed produces a
//! different interleaving pressure via randomized op mixes.

use lcrq_bench::{QueueKind, QueueSpec, ALL_KINDS};
use lcrq_verify::{
    check_fifo, check_relaxed, check_tantrum, record, Completed, HistoryOp, Recording,
};

/// Builds randomized scripts: `threads` threads, each with `ops` operations,
/// roughly half enqueues (values unique per thread) and half dequeues.
fn scripts(seed: u64, threads: usize, ops: usize) -> Vec<Vec<Completed>> {
    let mut rng = lcrq::util::XorShift64Star::new(seed);
    (0..threads)
        .map(|t| {
            (0..ops)
                .map(|i| {
                    if rng.chance(55, 100) {
                        Completed::Enq(((t as u64) << 32) | i as u64)
                    } else {
                        Completed::Deq
                    }
                })
                .collect()
        })
        .collect()
}

fn check_kind(kind: QueueKind, rounds: u64) {
    for seed in 0..rounds {
        // LCRQ_TEST_SEED pins every round to one script seed for replay.
        let script_seed = lcrq::util::rng::test_seed(seed * 7 + 1);
        // Tiny rings: exercise CRQ switching.
        let q = QueueSpec::backend(kind)
            .with_ring_order(4)
            .with_clusters(2)
            .build();
        let rec = record(&q, &scripts(script_seed, 3, 4));
        if let Err(e) = check_fifo(&rec) {
            panic!(
                "{}: script seed {script_seed} produced a non-linearizable history \
                 (reproduce with LCRQ_TEST_SEED={script_seed}): {e}\n{:#?}",
                kind.name(),
                rec.ops
            );
        }
    }
}

/// Randomized scripts mixing scalar and batch steps. Batches are small
/// (2–4 items) so the expanded histories stay exhaustively checkable.
fn batch_scripts(seed: u64, threads: usize, ops: usize) -> Vec<Vec<Completed>> {
    let mut rng = lcrq::util::XorShift64Star::new(seed);
    (0..threads)
        .map(|t| {
            (0..ops)
                .map(|i| {
                    let base = ((t as u64) << 32) | ((i as u64) << 8);
                    match rng.next_below(4) {
                        0 => Completed::Enq(base),
                        1 => Completed::Deq,
                        2 => {
                            let n = 2 + rng.next_below(3);
                            Completed::EnqBatch((0..n).map(|j| base | j).collect())
                        }
                        _ => Completed::DeqBatch(2 + rng.next_below(3) as usize),
                    }
                })
                .collect()
        })
        .collect()
}

fn check_kind_batched(kind: QueueKind, ring_order: u32, rounds: u64) {
    for seed in 0..rounds {
        let script_seed = lcrq::util::rng::test_seed(seed * 13 + 3);
        let q = QueueSpec::backend(kind)
            .with_ring_order(ring_order)
            .with_clusters(2)
            .build();
        let rec = record(&q, &batch_scripts(script_seed, 3, 3));
        if let Err(e) = check_fifo(&rec) {
            panic!(
                "{}: batch script seed {script_seed} produced a non-linearizable \
                 history (reproduce with LCRQ_TEST_SEED={script_seed}): {e}\n{:#?}",
                kind.name(),
                rec.ops
            );
        }
    }
}

#[test]
fn lcrq_batch_histories_are_linearizable() {
    // R = 16: batches fit; exercises the multi-slot reservation fast path.
    check_kind_batched(QueueKind::Lcrq, 4, 30);
}

#[test]
fn lcrq_batch_histories_with_ring_close_mid_batch_are_linearizable() {
    // R = 4 with batches up to 4: reservations regularly overrun the ring,
    // closing it mid-batch and spilling the remainder into a fresh seeded
    // ring — the tentpole's trickiest linearizability case.
    check_kind_batched(QueueKind::Lcrq, 2, 30);
    check_kind_batched(QueueKind::LcrqCas, 2, 20);
}

#[test]
fn default_batch_impl_histories_are_linearizable() {
    // A queue without a native batch path runs the trait's scalar-loop
    // defaults; its histories must check out the same way.
    check_kind_batched(QueueKind::Ms, 4, 20);
}

#[test]
fn lcrq_histories_are_linearizable() {
    check_kind(QueueKind::Lcrq, 40);
}

#[test]
fn lscq_histories_are_linearizable() {
    check_kind(QueueKind::Lscq, 40);
}

#[test]
fn lscq_cas_histories_are_linearizable() {
    check_kind(QueueKind::LscqCas, 40);
}

#[test]
fn wcq_histories_are_linearizable() {
    check_kind(QueueKind::Wcq, 40);
}

#[test]
fn wcq_batch_histories_are_linearizable() {
    // wCQ has no native batch path: scalar-loop defaults over tiny rings,
    // closing and spilling mid-batch — helped placements included.
    check_kind_batched(QueueKind::Wcq, 2, 30);
}

#[test]
fn lscq_batch_histories_are_linearizable() {
    // LSCQ has no native batch path: these run the trait's scalar-loop
    // defaults over tiny rings, closing and spilling mid-batch.
    check_kind_batched(QueueKind::Lscq, 2, 30);
    check_kind_batched(QueueKind::LscqCas, 2, 20);
}

#[test]
fn lcrq_cas_histories_are_linearizable() {
    check_kind(QueueKind::LcrqCas, 40);
}

#[test]
fn lcrq_h_histories_are_linearizable() {
    check_kind(QueueKind::LcrqH, 25);
}

#[test]
fn ms_queue_histories_are_linearizable() {
    check_kind(QueueKind::Ms, 40);
}

#[test]
fn two_lock_histories_are_linearizable() {
    check_kind(QueueKind::TwoLock, 25);
}

#[test]
fn cc_queue_histories_are_linearizable() {
    check_kind(QueueKind::Cc, 25);
}

#[test]
fn h_queue_histories_are_linearizable() {
    check_kind(QueueKind::H, 25);
}

#[test]
fn fc_queue_histories_are_linearizable() {
    check_kind(QueueKind::Fc, 25);
}

#[test]
fn infinite_array_histories_are_linearizable() {
    check_kind(QueueKind::Infinite, 25);
}

#[test]
fn sim_queue_histories_are_linearizable() {
    check_kind(QueueKind::Sim, 25);
}

#[test]
fn optimistic_queue_histories_are_linearizable() {
    check_kind(QueueKind::Optimistic, 40);
}

#[test]
fn baskets_queue_histories_are_linearizable() {
    check_kind(QueueKind::Baskets, 40);
}

#[test]
fn every_kind_is_covered_by_a_linearizability_test() {
    // Guard against new registry kinds silently skipping verification.
    // (The sharded front-end is a spec wrapper, not a kind: its histories
    // are checked by the relaxed tests below.)
    assert_eq!(ALL_KINDS.len(), 15);
}

/// Records real concurrent histories of a sharded spec and checks them with
/// the relaxation checker at the spec's analytic bound — the relaxed
/// analogue of [`check_kind`].
fn check_spec_relaxed(spec_str: &str, rounds: u64) {
    let spec = QueueSpec::parse(spec_str).unwrap();
    let bound = spec.rank_error_bound(3);
    for seed in 0..rounds {
        let script_seed = lcrq::util::rng::test_seed(seed * 11 + 5);
        let q = spec.build();
        let rec = record(&q, &scripts(script_seed, 3, 4));
        if let Err(e) = check_relaxed(&rec, bound) {
            panic!(
                "{spec}: script seed {script_seed} violated the relaxed spec at bound \
                 {bound} (reproduce with LCRQ_TEST_SEED={script_seed}): {e}\n{:#?}",
                rec.ops
            );
        }
    }
}

#[test]
fn sharded_lcrq_histories_satisfy_the_relaxed_specification() {
    // refresh=1 keeps estimates fresh; tiny inner rings exercise switching
    // under the front-end.
    check_spec_relaxed("sharded:shards=4,d=2,refresh=1,inner=lcrq:ring=4", 30);
}

#[test]
fn sharded_lscq_histories_satisfy_the_relaxed_specification() {
    check_spec_relaxed("sharded:shards=4,d=2,refresh=1,inner=lscq:ring=4", 30);
}

#[test]
fn sharded_wcq_histories_satisfy_the_relaxed_specification() {
    check_spec_relaxed("sharded:shards=4,d=2,refresh=1,inner=wcq:ring=4", 30);
}

#[test]
fn sharded_with_stale_estimates_still_satisfies_the_relaxed_specification() {
    // A huge refresh interval makes every estimate arbitrarily stale: the
    // relaxation may grow but exactly-once and honest-EMPTY must hold (the
    // bound term scales with refresh, so the check stays meaningful via
    // its duplicate/loss/premature-EMPTY arms).
    check_spec_relaxed("sharded:shards=4,d=2,refresh=1000000,inner=lcrq:ring=4", 20);
}

#[test]
fn sharded_single_shard_histories_are_strictly_linearizable() {
    // shards=1 must add no relaxation at all: run the *strict* checker.
    let spec = QueueSpec::parse("sharded:shards=1,d=1,inner=lcrq:ring=4").unwrap();
    assert_eq!(spec.rank_error_bound(3), 0);
    for seed in 0..20u64 {
        let script_seed = lcrq::util::rng::test_seed(seed * 17 + 7);
        let q = spec.build();
        let rec = record(&q, &scripts(script_seed, 3, 4));
        if let Err(e) = check_fifo(&rec) {
            panic!(
                "sharded(1): seed {script_seed} not linearizable \
                 (reproduce with LCRQ_TEST_SEED={script_seed}): {e}\n{:#?}",
                rec.ops
            );
        }
    }
}

#[test]
fn sharded_batch_histories_satisfy_the_relaxed_specification() {
    let spec = QueueSpec::parse("sharded:shards=3,d=2,refresh=1,inner=lcrq:ring=2").unwrap();
    let bound = spec.rank_error_bound(3);
    for seed in 0..20u64 {
        let script_seed = lcrq::util::rng::test_seed(seed * 19 + 9);
        let q = spec.build();
        let rec = record(&q, &batch_scripts(script_seed, 3, 3));
        if let Err(e) = check_relaxed(&rec, bound) {
            panic!(
                "{spec}: batch seed {script_seed} violated the relaxed spec at bound \
                 {bound} (reproduce with LCRQ_TEST_SEED={script_seed}): {e}\n{:#?}",
                rec.ops
            );
        }
    }
}

/// The bare CRQ is a *tantrum* queue: enqueues may return CLOSED. Record
/// histories on a tiny ring (closes are common) and check against the
/// tantrum specification.
#[test]
fn crq_histories_satisfy_the_tantrum_specification() {
    use lcrq::{Crq, LcrqConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Barrier, Mutex};

    for seed in 0..30u64 {
        let crq: Crq = Crq::new(&LcrqConfig::new().with_ring_order(2)); // R = 4
        let scripts = scripts(seed + 1000, 3, 4);
        let clock = AtomicU64::new(0);
        let log: Mutex<Vec<lcrq_verify::OpRecord>> = Mutex::new(Vec::new());
        let barrier = Barrier::new(scripts.len());
        let (crq, clock, log, barrier) = (&crq, &clock, &log, &barrier);
        std::thread::scope(|s| {
            for (t, script) in scripts.iter().enumerate() {
                s.spawn(move || {
                    let mut local = Vec::new();
                    barrier.wait();
                    for step in script {
                        let invoked = clock.fetch_add(1, Ordering::SeqCst);
                        let op = match *step {
                            Completed::Enq(v) => match crq.enqueue(v) {
                                Ok(()) => HistoryOp::Enq(v),
                                Err(_) => HistoryOp::EnqClosed(v),
                            },
                            Completed::Deq => match crq.dequeue() {
                                Some(v) => HistoryOp::DeqOk(v),
                                None => HistoryOp::DeqEmpty,
                            },
                            // scripts() only emits scalar steps.
                            _ => unreachable!("batch steps not used here"),
                        };
                        let returned = clock.fetch_add(1, Ordering::SeqCst);
                        local.push(lcrq_verify::OpRecord {
                            thread: t,
                            op,
                            invoked,
                            returned,
                        });
                    }
                    log.lock().unwrap().extend(local);
                });
            }
        });
        let mut ops = std::mem::take(&mut *log.lock().unwrap());
        ops.sort_by_key(|r| r.invoked);
        let rec = Recording { ops };
        if let Err(e) = check_tantrum(&rec) {
            panic!("CRQ seed {seed}: tantrum check failed: {e}\n{:#?}", rec.ops);
        }
    }
}
