//! Memory-reclamation integration tests: retired CRQs are freed (or, with
//! the recycling pool, scrubbed and reused), typed values are dropped
//! exactly once, sustained ring churn does not accumulate unbounded
//! garbage, and steady-state churn through the pool allocates nothing.

use lcrq::hazard::Domain;
use lcrq::util::metrics::{self, Event};
use lcrq::{Crq, Lcrq, LcrqConfig, Lscq, RingPool, ScqD, TypedLcrq, TypedLscq, TypedWcq, Wcq};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

struct DropCounter(Arc<AtomicUsize>);
impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn typed_values_drop_exactly_once_through_ring_churn() {
    let drops = Arc::new(AtomicUsize::new(0));
    let q: TypedLcrq<DropCounter> = TypedLcrq::with_config(LcrqConfig::new().with_ring_order(2)); // R = 4
    const N: usize = 5_000;
    for _ in 0..N {
        q.enqueue(DropCounter(Arc::clone(&drops)));
    }
    for _ in 0..N / 2 {
        drop(q.dequeue().expect("items present"));
    }
    assert_eq!(drops.load(Ordering::SeqCst), N / 2);
    drop(q);
    assert_eq!(drops.load(Ordering::SeqCst), N, "queue drop frees the rest");
}

#[test]
fn ring_churn_does_not_accumulate_rings() {
    // Constant spill through tiny rings: after a drain + eager reclaim the
    // list must be back to a handful of rings.
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(2));
    for round in 0..200u64 {
        for i in 0..100 {
            q.enqueue(round * 1000 + i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(round * 1000 + i));
        }
    }
    assert!(
        q.ring_count() <= 3,
        "live ring chain should stay short, got {}",
        q.ring_count()
    );
}

#[test]
fn concurrent_churn_then_quiescent_drop() {
    // Hazard-protected rings may be retired while other threads still hold
    // them; after all threads quiesce, dropping the queue must free
    // everything without crashes (validated under the default allocator;
    // UAF/double-free would abort).
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(3));
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..10_000u64 {
                    q.enqueue(t << 40 | i);
                    let _ = q.dequeue();
                }
            });
        }
    });
    while q.dequeue().is_some() {}
}

#[test]
fn many_short_lived_queues_do_not_leak_or_crash() {
    for i in 0..300 {
        let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(2));
        for v in 0..50 {
            q.enqueue(v + i);
        }
        // Half-drained drop.
        for _ in 0..25 {
            let _ = q.dequeue();
        }
    }
}

// ---------------------------------------------------------------------------
// Recycle-pool suite: the bounded ring pool replaces retire-means-free with
// retire-means-recycle (see DESIGN.md "Ring recycling").
// ---------------------------------------------------------------------------

/// Single-threaded spill churn: every round overflows the tiny ring several
/// times, so each round closes and retires rings.
fn churn_rounds(q: &Lcrq, rounds: u64) {
    for round in 0..rounds {
        for i in 0..16 {
            q.enqueue(round * 100 + i);
        }
        for i in 0..16 {
            assert_eq!(q.dequeue(), Some(round * 100 + i));
        }
    }
}

#[test]
fn steady_state_ring_churn_allocates_zero() {
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(2) // R = 4: 16 items/round force >= 3 closes
            .with_ring_pool_capacity(4),
    );
    churn_rounds(&q, 50); // warm the pool
    let before = metrics::local_snapshot();
    churn_rounds(&q, 200);
    let d = metrics::local_snapshot().delta_since(&before);
    assert_eq!(
        d.get(Event::RingAlloc),
        0,
        "steady-state spills must be served from the pool"
    );
    assert!(
        d.get(Event::RingReuse) >= 200,
        "every round spills through recycled rings, got {}",
        d.get(Event::RingReuse)
    );
}

#[test]
fn disabled_pool_allocates_per_spill_like_before() {
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(2)
            .with_ring_pool_capacity(0),
    );
    churn_rounds(&q, 20);
    let before = metrics::local_snapshot();
    churn_rounds(&q, 50);
    let d = metrics::local_snapshot().delta_since(&before);
    assert_eq!(d.get(Event::RingReuse), 0, "pool disabled: no reuse");
    assert!(d.get(Event::RingAlloc) > 0, "every spill allocates");
    assert_eq!(q.ring_pool().len(), 0);
    assert_eq!(q.ring_pool().capacity(), 0);
}

#[test]
fn typed_values_drop_exactly_once_across_spill_reuse_cycles() {
    let drops = Arc::new(AtomicUsize::new(0));
    let q: TypedLcrq<DropCounter> = TypedLcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(2)
            .with_ring_pool_capacity(4),
    );
    let mut expected = 0usize;
    // Several cycles so values live in recycled rings, with a residue left
    // behind each cycle that the next cycle drains.
    for cycle in 0..50 {
        for _ in 0..20 {
            q.enqueue(DropCounter(Arc::clone(&drops)));
        }
        let take = 10 + cycle % 11; // drain unevenly across ring boundaries
        for _ in 0..take {
            if let Some(v) = q.dequeue() {
                drop(v);
                expected += 1;
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), expected);
    }
    // The rest (in live rings, some of them recycled incarnations) drop with
    // the queue, exactly once each.
    drop(q);
    assert_eq!(drops.load(Ordering::SeqCst), 50 * 20);
}

#[test]
fn pool_never_exceeds_its_configured_bound() {
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(2)
            .with_ring_pool_capacity(2),
    );
    assert_eq!(q.ring_pool().capacity(), 2);
    for round in 0..100 {
        churn_rounds(&q, 1);
        assert!(
            q.ring_pool().len() <= 2,
            "round {round}: pool len {} exceeds bound",
            q.ring_pool().len()
        );
    }
    // And concurrently, sampled while churn is in flight.
    let q = &q;
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(move || {
                for round in 0..2_000u64 {
                    for i in 0..16 {
                        q.enqueue(round * 100 + i);
                    }
                    for _ in 0..16 {
                        let _ = q.dequeue();
                    }
                }
            });
        }
        s.spawn(move || {
            for _ in 0..10_000 {
                assert!(q.ring_pool().len() <= 2, "bound violated under churn");
            }
        });
    });
}

// --- ABA regression: a reader stalled with a hazard pointer on a ring must
// not observe scrubbed/reused tuples after the ring is recycled. -----------

static STALL_POOL: OnceLock<Arc<RingPool>> = OnceLock::new();

/// Reclaimer used by the stalled-reader test: park the ring in a pool the
/// test can observe (mirrors the queue-internal recycle callback).
unsafe fn recycle_into_stall_pool(p: *mut ()) {
    // SAFETY: `p` is the Box::into_raw ring retired below; the hazard
    // domain hands it over with sole ownership.
    let ring = unsafe { Box::from_raw(p as *mut Crq) };
    let _ = STALL_POOL.get().unwrap().push(ring);
}

#[test]
fn stalled_hazard_reader_never_observes_a_scrubbed_ring() {
    // Arm the scheduler adversary so the protect/retire interleaving below
    // runs with preemption injected inside read→CAS2 windows too.
    lcrq::util::adversary::set_preempt_ppm(10_000);
    let pool = Arc::clone(STALL_POOL.get_or_init(|| RingPool::new(4)));
    let domain = Domain::new();
    let ring: Box<Crq> = Box::new(Crq::new(&LcrqConfig::new().with_ring_order(3)));
    for i in 0..5 {
        ring.enqueue(i).unwrap();
    }
    while ring.dequeue().is_some() {}
    ring.close();
    let top_before = ring.head_index().max(ring.tail_index());
    let raw = Box::into_raw(ring);

    // A reader stalls holding a hazard pointer on the ring — the position
    // of a dequeuer preempted between protecting the head ring and acting
    // on its (now stale) node views.
    domain.protect_raw(0, raw as *mut ());
    // Meanwhile the ring is retired for recycling.
    // SAFETY: `raw` is unreachable from any queue; the stalled hazard above
    // is exactly what retirement must (and does) respect.
    unsafe { domain.retire_with(raw as *mut (), recycle_into_stall_pool) };
    domain.scan();
    assert_eq!(pool.len(), 0, "protected ring must not be recycled");
    // The stalled reader's world is intact: no scrub happened, so every
    // tuple it can see is from its own epoch.
    // SAFETY: still hazard-protected.
    let r = unsafe { &*raw };
    assert_eq!(r.reuse_epoch(), 0, "no scrub while a hazard is held");
    assert!(r.is_closed());
    assert!(r.head_index().max(r.tail_index()) == top_before);

    // The reader finishes and releases its hazard; only now is the ring
    // scrubbed into the pool, on a fresh epoch.
    domain.clear(0);
    domain.scan();
    assert_eq!(pool.len(), 1, "quiescent ring is recycled");
    let r = pool.pop(&domain, 0).expect("pooled ring");
    assert_eq!(r.reuse_epoch(), 1);
    assert!(!r.is_closed());
    // The reuse-epoch re-base: every index of the new incarnation lies
    // strictly above anything the stalled reader could have seen, so its
    // stale views can never alias recycled tuples (CAS2s must fail).
    assert!(
        r.base_index() > top_before + r.ring_size() - 1,
        "base {} must clear the old incarnation (top {top_before})",
        r.base_index()
    );
    lcrq::util::adversary::set_preempt_ppm(0);
}

#[test]
fn adversary_churn_with_recycling_preserves_per_producer_fifo() {
    // MPMC churn through tiny recycled rings with the scheduler adversary
    // injecting preemptions inside read→CAS2 windows: per-producer
    // sequences must come out strictly in order, each value exactly once —
    // an ABA through a recycled ring would surface as loss or duplication.
    lcrq::util::adversary::set_preempt_ppm(20_000);
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(2)
            .with_starvation_limit(4) // tantrum early and often
            .with_ring_pool_capacity(4),
    );
    const PRODUCERS: u64 = 2;
    const PER: u64 = 20_000;
    let q = &q;
    let seen: Vec<Vec<u64>> = std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            s.spawn(move || {
                for i in 0..PER {
                    q.enqueue(t << 48 | i);
                }
            });
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0u32;
                    while misses < 1_000 {
                        match q.dequeue() {
                            Some(v) => {
                                misses = 0;
                                got.push(v);
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).collect()
    });
    let mut remaining: Vec<u64> = Vec::new();
    while let Some(v) = q.dequeue() {
        remaining.push(v);
    }
    let mut counts = vec![0u64; PRODUCERS as usize];
    for stream in seen.iter().chain(std::iter::once(&remaining)) {
        let mut stream_last = vec![None::<u64>; PRODUCERS as usize];
        for &v in stream {
            let (t, i) = ((v >> 48) as usize, v & ((1 << 48) - 1));
            counts[t] += 1;
            // FIFO per producer within one consumer's stream.
            assert!(stream_last[t].is_none_or(|p| p < i), "reordered: {v:#x}");
            stream_last[t] = Some(i);
        }
    }
    for (t, &c) in counts.iter().enumerate() {
        assert_eq!(c, PER, "producer {t}: lost or duplicated items");
    }
    lcrq::util::adversary::set_preempt_ppm(0);
}

// ---------------------------------------------------------------------------
// LSCQ suite: the SCQ-ring list reuses the same hazard domain machinery but
// frees retired rings outright (no recycle pool), so its invariants are the
// classic ones — drop exactly once, defer while a hazard is held, no
// unbounded garbage.
// ---------------------------------------------------------------------------

#[test]
fn lscq_typed_values_drop_exactly_once_through_ring_churn() {
    let drops = Arc::new(AtomicUsize::new(0));
    let q: TypedLscq<DropCounter> = TypedLscq::with_config(LcrqConfig::new().with_ring_order(2));
    const N: usize = 5_000;
    for _ in 0..N {
        q.enqueue(DropCounter(Arc::clone(&drops)));
    }
    for _ in 0..N / 2 {
        drop(q.dequeue().expect("items present"));
    }
    assert_eq!(drops.load(Ordering::SeqCst), N / 2);
    drop(q);
    assert_eq!(drops.load(Ordering::SeqCst), N, "queue drop frees the rest");
}

#[test]
fn lscq_ring_churn_does_not_accumulate_rings() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(2));
    for round in 0..200u64 {
        for i in 0..100 {
            q.enqueue(round * 1000 + i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(round * 1000 + i));
        }
    }
    assert!(
        q.ring_count() <= 3,
        "live SCQ ring chain should stay short, got {}",
        q.ring_count()
    );
}

#[test]
fn lscq_concurrent_churn_then_quiescent_drop() {
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(3));
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..10_000u64 {
                    q.enqueue(t << 40 | i);
                    let _ = q.dequeue();
                }
            });
        }
    });
    while q.dequeue().is_some() {}
}

/// Reclaimer used by the LSCQ stalled-reader test: count frees into a sink
/// the test can observe instead of dropping silently.
static SCQ_RINGS_FREED: AtomicUsize = AtomicUsize::new(0);
unsafe fn count_scq_ring_free(p: *mut ()) {
    // SAFETY: `p` is the Box::into_raw ScqD retired below; the hazard
    // domain hands it over with sole ownership.
    drop(unsafe { Box::from_raw(p as *mut ScqD) });
    SCQ_RINGS_FREED.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn lscq_stalled_hazard_reader_defers_ring_reclamation() {
    // The SCQ twist on the stalled-reader ABA scenario: a dequeuer preempted
    // between protecting the head ring and acting on its entry views must
    // keep the ring alive — if it were freed (or its slots reused) under
    // the hazard, the reader's cycle-tagged views would alias a new
    // incarnation.
    lcrq::util::adversary::set_preempt_ppm(10_000);
    let domain = Domain::new();
    let ring: Box<ScqD> = Box::new(ScqD::new(&LcrqConfig::new().with_ring_order(3)));
    for i in 0..5 {
        ring.enqueue(i).unwrap();
    }
    while ring.dequeue().is_some() {}
    ring.close();
    let top_before = ring.head_index().max(ring.tail_index());
    let raw = Box::into_raw(ring);

    // Reader stalls holding a hazard pointer on the ring...
    domain.protect_raw(0, raw as *mut ());
    // ...while the ring is retired.
    // SAFETY: `raw` is unreachable from any queue; the stalled hazard above
    // is exactly what retirement must (and does) respect.
    unsafe { domain.retire_with(raw as *mut (), count_scq_ring_free) };
    domain.scan();
    assert_eq!(
        SCQ_RINGS_FREED.load(Ordering::SeqCst),
        0,
        "protected SCQ ring must not be freed"
    );
    // The stalled reader's world is intact: the ring is still the closed,
    // drained incarnation it protected.
    // SAFETY: still hazard-protected.
    let r = unsafe { &*raw };
    assert!(r.is_closed());
    assert_eq!(r.head_index().max(r.tail_index()), top_before);
    assert_eq!(r.dequeue(), None, "still drained, still answerable");

    // Only after the reader releases its hazard is the ring reclaimed.
    domain.clear(0);
    domain.scan();
    assert_eq!(
        SCQ_RINGS_FREED.load(Ordering::SeqCst),
        1,
        "quiescent SCQ ring is freed exactly once"
    );
    lcrq::util::adversary::set_preempt_ppm(0);
}

#[test]
fn lscq_adversary_churn_preserves_per_producer_fifo() {
    // MPMC churn through tiny SCQ rings with the scheduler adversary
    // injecting preemptions inside the entry CAS windows: per-producer
    // sequences must come out strictly in order, each value exactly once —
    // an ABA through a reclaimed ring would surface as loss or duplication.
    lcrq::util::adversary::set_preempt_ppm(20_000);
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(2));
    const PRODUCERS: u64 = 2;
    const PER: u64 = 20_000;
    let q = &q;
    let seen: Vec<Vec<u64>> = std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            s.spawn(move || {
                for i in 0..PER {
                    q.enqueue(t << 48 | i);
                }
            });
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0u32;
                    while misses < 1_000 {
                        match q.dequeue() {
                            Some(v) => {
                                misses = 0;
                                got.push(v);
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).collect()
    });
    let mut remaining: Vec<u64> = Vec::new();
    while let Some(v) = q.dequeue() {
        remaining.push(v);
    }
    let mut counts = vec![0u64; PRODUCERS as usize];
    for stream in seen.iter().chain(std::iter::once(&remaining)) {
        let mut stream_last = vec![None::<u64>; PRODUCERS as usize];
        for &v in stream {
            let (t, i) = ((v >> 48) as usize, v & ((1 << 48) - 1));
            counts[t] += 1;
            assert!(stream_last[t].is_none_or(|p| p < i), "reordered: {v:#x}");
            stream_last[t] = Some(i);
        }
    }
    for (t, &c) in counts.iter().enumerate() {
        assert_eq!(c, PER, "producer {t}: lost or duplicated items");
    }
    lcrq::util::adversary::set_preempt_ppm(0);
}

// ---------------------------------------------------------------------------
// wCQ suite: the wait-free list shares the LSCQ chain/hazard machinery, but
// dequeues may complete through helper records — values bound into a slot by
// one thread and published by another must still drop exactly once.
// ---------------------------------------------------------------------------

#[test]
fn wcq_typed_values_drop_exactly_once_through_ring_churn() {
    let drops = Arc::new(AtomicUsize::new(0));
    let q: TypedWcq<DropCounter> = TypedWcq::with_config(LcrqConfig::new().with_ring_order(2));
    const N: usize = 5_000;
    for _ in 0..N {
        q.enqueue(DropCounter(Arc::clone(&drops)));
    }
    for _ in 0..N / 2 {
        drop(q.dequeue().expect("items present"));
    }
    assert_eq!(drops.load(Ordering::SeqCst), N / 2);
    drop(q);
    assert_eq!(drops.load(Ordering::SeqCst), N, "queue drop frees the rest");
}

#[test]
fn wcq_ring_churn_does_not_accumulate_rings() {
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(2));
    for round in 0..200u64 {
        for i in 0..100 {
            q.enqueue(round * 1000 + i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(round * 1000 + i));
        }
    }
    assert!(
        q.ring_count() <= 3,
        "live wCQ ring chain should stay short, got {}",
        q.ring_count()
    );
}

#[test]
fn wcq_concurrent_churn_then_quiescent_drop() {
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(3));
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..10_000u64 {
                    q.enqueue(t << 40 | i);
                    let _ = q.dequeue();
                }
            });
        }
    });
    while q.dequeue().is_some() {}
}

#[test]
fn wcq_adversary_churn_preserves_per_producer_fifo() {
    // Same ABA-through-reclamation hunt as the LSCQ variant, with the extra
    // hazard that a helper may finish a dequeue against a ring another
    // thread is about to retire.
    lcrq::util::adversary::set_preempt_ppm(20_000);
    let q = Wcq::with_config(LcrqConfig::new().with_ring_order(2));
    const PRODUCERS: u64 = 2;
    const PER: u64 = 20_000;
    let q = &q;
    let seen: Vec<Vec<u64>> = std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            s.spawn(move || {
                for i in 0..PER {
                    q.enqueue(t << 48 | i);
                }
            });
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0u32;
                    while misses < 1_000 {
                        match q.dequeue() {
                            Some(v) => {
                                misses = 0;
                                got.push(v);
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).collect()
    });
    let mut remaining: Vec<u64> = Vec::new();
    while let Some(v) = q.dequeue() {
        remaining.push(v);
    }
    let mut counts = vec![0u64; PRODUCERS as usize];
    for stream in seen.iter().chain(std::iter::once(&remaining)) {
        let mut stream_last = vec![None::<u64>; PRODUCERS as usize];
        for &v in stream {
            let (t, i) = ((v >> 48) as usize, v & ((1 << 48) - 1));
            counts[t] += 1;
            assert!(stream_last[t].is_none_or(|p| p < i), "reordered: {v:#x}");
            stream_last[t] = Some(i);
        }
    }
    for (t, &c) in counts.iter().enumerate() {
        assert_eq!(c, PER, "producer {t}: lost or duplicated items");
    }
    lcrq::util::adversary::set_preempt_ppm(0);
}
