//! Memory-reclamation integration tests: retired CRQs are freed, typed
//! values are dropped exactly once, and sustained ring churn does not
//! accumulate unbounded garbage.

use lcrq::{Lcrq, LcrqConfig, TypedLcrq};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct DropCounter(Arc<AtomicUsize>);
impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn typed_values_drop_exactly_once_through_ring_churn() {
    let drops = Arc::new(AtomicUsize::new(0));
    let q: TypedLcrq<DropCounter> = TypedLcrq::with_config(LcrqConfig::new().with_ring_order(2)); // R = 4
    const N: usize = 5_000;
    for _ in 0..N {
        q.enqueue(DropCounter(Arc::clone(&drops)));
    }
    for _ in 0..N / 2 {
        drop(q.dequeue().expect("items present"));
    }
    assert_eq!(drops.load(Ordering::SeqCst), N / 2);
    drop(q);
    assert_eq!(drops.load(Ordering::SeqCst), N, "queue drop frees the rest");
}

#[test]
fn ring_churn_does_not_accumulate_rings() {
    // Constant spill through tiny rings: after a drain + eager reclaim the
    // list must be back to a handful of rings.
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(2));
    for round in 0..200u64 {
        for i in 0..100 {
            q.enqueue(round * 1000 + i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(round * 1000 + i));
        }
    }
    assert!(
        q.ring_count() <= 3,
        "live ring chain should stay short, got {}",
        q.ring_count()
    );
}

#[test]
fn concurrent_churn_then_quiescent_drop() {
    // Hazard-protected rings may be retired while other threads still hold
    // them; after all threads quiesce, dropping the queue must free
    // everything without crashes (validated under the default allocator;
    // UAF/double-free would abort).
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(3));
    let q = &q;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..10_000u64 {
                    q.enqueue(t << 40 | i);
                    let _ = q.dequeue();
                }
            });
        }
    });
    while q.dequeue().is_some() {}
}

#[test]
fn many_short_lived_queues_do_not_leak_or_crash() {
    for i in 0..300 {
        let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(2));
        for v in 0..50 {
            q.enqueue(v + i);
        }
        // Half-drained drop.
        for _ in 0..25 {
            let _ = q.dequeue();
        }
    }
}
