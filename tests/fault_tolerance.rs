//! Fault-injection robustness suite (tentpole of the robustness PR).
//!
//! Compiled only with `--features fault-injection`; the default build gets
//! an empty test binary. Everything here drives the `lcrq_util::fault`
//! registry: deterministic seeds (honoring `LCRQ_TEST_SEED`), per-site
//! probabilities, and the stall gate that simulates crashed threads.
//!
//! The registry is process-global, so every test serializes on [`guard`].

#![cfg(feature = "fault-injection")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lcrq::core::LcrqConfig;
use lcrq::hazard::{Domain, SLOTS_PER_THREAD};
use lcrq::queues::testing::{encode, mpmc_stress, mpmc_stress_relaxed};
use lcrq::queues::EnqueueError;
use lcrq::util::fault::{self, FaultAction, Scenario, Site};
use lcrq::util::rng::test_seed;
use lcrq::{
    rank_error_bound_for, ConcurrentQueue, Lcrq, Lscq, LscqCas, ShardedConfig, ShardedQueue, Wcq,
};

/// Serializes tests: the fail-point registry is process-global.
static LOCK: Mutex<()> = Mutex::new(());
fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny() -> LcrqConfig {
    LcrqConfig::new().with_ring_order(4) // R = 16: frequent ring turnover
}

/// Crash-tolerance harness: stall `STALLS` of `WORKERS` threads at their
/// most dangerous sites (hazard publish→revalidate, pre-F&A) and require
/// the survivors to finish a fixed op budget anyway — the operational
/// reading of the paper's nonblocking progress claim. While the stalled
/// threads hold published hazards, the retired-ring backlog of every live
/// thread must stay within the hazard-pointer reclamation bound. After
/// release, exactly-once delivery must hold across *all* threads.
fn crash_tolerant<Q, D>(label: &str, q: &Q, domain_of: D)
where
    Q: ConcurrentQueue,
    D: Fn(&Q) -> &Domain + Sync,
{
    const WORKERS: usize = 8;
    const STALLS: usize = 2;
    const BUDGET: u64 = 2_000;
    let seed = test_seed(0x57A1_1ED5_EED0_0001);
    let scenario = Scenario::new(seed)
        .with(Site::HazardProtect, 400_000, FaultAction::Stall)
        .with(Site::Faa, 400_000, FaultAction::Stall)
        .max_stalls(STALLS as u64);
    let stext = scenario.to_string();
    scenario.arm();

    let done = AtomicUsize::new(0);
    // 0 = no violation; otherwise the offending retired-list length. The
    // workers report instead of asserting so a violation cannot strand the
    // scope join behind still-stalled threads.
    let bound_violation = AtomicUsize::new(0);
    let (done, bound_violation, domain_of) = (&done, &bound_violation, &domain_of);

    let all: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|t| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..BUDGET {
                        q.enqueue(encode(t, i));
                        if let Some(v) = q.dequeue() {
                            got.push(v);
                        }
                        if i % 256 == 0 {
                            let d = domain_of(q);
                            let retired = d.retired_count();
                            let bound = 2 * (2 * d.record_count() * SLOTS_PER_THREAD + 16);
                            if retired > bound {
                                bound_violation.store(retired, Ordering::SeqCst);
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                    got
                })
            })
            .collect();

        // Survivors must complete their budget while the stalled threads
        // stay parked; a deadline turns a progress failure into a report
        // instead of a hang (disarm first so the scope can still join).
        let deadline = Instant::now() + Duration::from_secs(120);
        while done.load(Ordering::SeqCst) < WORKERS - STALLS {
            if Instant::now() >= deadline {
                fault::disarm();
                panic!(
                    "[{label}] survivors starved with {STALLS} peers stalled \
                     under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
                );
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stalled = fault::stalled_count();
        fault::disarm(); // release the "crashed" threads so they can join
        assert_eq!(
            stalled, STALLS,
            "[{label}] expected exactly {STALLS} stalled threads under [{stext}] \
             (replay with LCRQ_TEST_SEED={seed:#x})"
        );
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let violation = bound_violation.load(Ordering::SeqCst);
    assert_eq!(
        violation, 0,
        "[{label}] retired-ring backlog {violation} exceeded the hazard bound \
         while peers were stalled under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
    );

    // Exactly-once delivery across survivors, released threads, and the
    // final drain.
    let mut seen: Vec<u64> = all.into_iter().flatten().collect();
    while let Some(v) = q.dequeue() {
        seen.push(v);
    }
    let total = WORKERS as u64 * BUDGET;
    assert_eq!(
        seen.len() as u64,
        total,
        "[{label}] lost items under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
    );
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len() as u64,
        total,
        "[{label}] duplicated items under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
    );
    assert_eq!(q.dequeue(), None, "[{label}] queue should be drained");
}

#[test]
fn survivors_outlive_stalled_peers_lcrq() {
    let _g = guard();
    let q = Lcrq::with_config(tiny());
    crash_tolerant("lcrq", &q, |q: &Lcrq| q.hazard_domain());
}

#[test]
fn survivors_outlive_stalled_peers_lscq() {
    let _g = guard();
    let q = Lscq::with_config(tiny());
    crash_tolerant("lscq", &q, |q: &Lscq| q.hazard_domain());
}

#[test]
fn survivors_outlive_stalled_peers_lscq_cas() {
    let _g = guard();
    let q = LscqCas::with_config(tiny());
    crash_tolerant("lscq-cas", &q, |q: &LscqCas| q.hazard_domain());
}

#[test]
fn survivors_outlive_stalled_peers_wcq() {
    let _g = guard();
    let q = Wcq::with_config(tiny());
    crash_tolerant("wcq", &q, |q: &Wcq| q.hazard_domain());
}

/// Same seed ⇒ byte-identical hit log, end to end through the real queue
/// (the unit tests in `lcrq-util` check the registry in isolation).
#[test]
fn same_seed_replays_an_identical_hit_log() {
    let _g = guard();

    fn run(seed: u64) -> Vec<fault::SiteHit> {
        let scenario = Scenario::new(seed)
            .recording(true)
            .with(Site::Cas2, 50_000, FaultAction::Fail)
            .with(Site::CrqEnqueue, 5_000, FaultAction::Fail)
            .with(Site::CrqDequeue, 50_000, FaultAction::Yield);
        scenario.arm();
        let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(3));
        for i in 0..2_000 {
            q.enqueue(i);
        }
        while q.dequeue().is_some() {}
        fault::disarm();
        fault::take_hit_log()
    }

    let a = run(0xD1CE);
    let b = run(0xD1CE);
    assert!(!a.is_empty(), "the scenario must actually fire");
    assert_eq!(a, b, "same seed must replay the exact same fault schedule");
    let c = run(0xBEEF);
    assert_ne!(a, c, "distinct seeds must produce distinct schedules");
}

/// Graceful degradation: when the pool is empty and the (injected)
/// allocator refuses a fresh ring, `try_enqueue_fallible` reports
/// `AllocFailed` with the value handed back — the queue stays open and
/// recovers as soon as allocation succeeds again.
#[test]
fn refused_ring_allocation_degrades_instead_of_aborting() {
    let _g = guard();
    let seed = test_seed(0xA110_C000_0000_0001);

    // LCRQ with the recycling pool disabled: every spill must allocate.
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(3)
            .with_ring_pool_capacity(0),
    );
    Scenario::new(seed)
        .with(Site::RingAlloc, 1_000_000, FaultAction::Fail)
        .arm();
    let mut placed = 0u64;
    let err = loop {
        match q.try_enqueue_fallible(placed) {
            Ok(()) => placed += 1,
            Err(e) => break e,
        }
        assert!(placed < 10_000, "the first ring never filled");
    };
    assert_eq!(err, EnqueueError::AllocFailed(placed));
    assert!(
        !q.is_closed(),
        "a refused allocation must not close the queue"
    );
    fault::disarm();
    // Allocator "recovered": the same value goes through, FIFO intact.
    q.try_enqueue_fallible(placed).unwrap();
    for i in 0..=placed {
        assert_eq!(q.dequeue(), Some(i));
    }
    assert_eq!(q.dequeue(), None);

    // LSCQ: no pool at all, same surface.
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(3));
    Scenario::new(seed)
        .with(Site::RingAlloc, 1_000_000, FaultAction::Fail)
        .arm();
    let mut placed = 0u64;
    let err = loop {
        match q.try_enqueue_fallible(placed) {
            Ok(()) => placed += 1,
            Err(e) => break e,
        }
        assert!(placed < 10_000, "the first ring never filled");
    };
    assert_eq!(err, EnqueueError::AllocFailed(placed));
    assert!(!q.is_closed());
    fault::disarm();
    q.try_enqueue_fallible(placed).unwrap();
    for i in 0..=placed {
        assert_eq!(q.dequeue(), Some(i));
    }
    assert_eq!(q.dequeue(), None);
}

/// Panic-safety: a producer that dies between its F&A reservation and the
/// CAS2 placement wastes its slot but corrupts nothing — dequeuers skip
/// the hole and every other item is delivered exactly once, in order.
#[test]
fn producer_panic_between_faa_and_placement_leaves_the_ring_consistent() {
    let _g = guard();
    let seed = test_seed(0x9A21_C000_0000_0001);
    let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(3));
    for i in 0..5 {
        q.enqueue(i);
    }
    Scenario::new(seed)
        .with_limited(Site::CrqEnqueue, 1_000_000, FaultAction::Panic, 1)
        .arm();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.enqueue(777)));
    fault::disarm();
    let payload = r.expect_err("the armed panic must fire");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("crq-enqueue"),
        "panic payload must name the site: {msg}"
    );
    // The crashed enqueue's item was never placed; the queue remains fully
    // usable and FIFO for everything else.
    for i in 5..10 {
        q.enqueue(i);
    }
    let drained: Vec<u64> = q.drain().collect();
    assert_eq!(drained, (0..10).collect::<Vec<_>>());
}

/// A receiver permanently stalled inside the park window must not keep
/// `close()` from settling, and the wakeup it missed while stalled must
/// still be delivered once it is released (the mandatory re-poll).
#[test]
fn channel_close_settles_with_a_receiver_stalled_at_park() {
    let _g = guard();
    let seed = test_seed(0xC105_E000_0000_0001);
    let (tx, rx) = lcrq::channel::channel::<u64>();
    Scenario::new(seed)
        .with(Site::ChannelPark, 1_000_000, FaultAction::Stall)
        .max_stalls(1)
        .arm();
    std::thread::scope(|s| {
        let h = s.spawn(|| {
            let first = rx.recv();
            let second = rx.recv();
            (first, second)
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        while fault::stalled_count() < 1 {
            if Instant::now() >= deadline {
                fault::disarm();
                panic!("receiver never reached the park site (LCRQ_TEST_SEED={seed:#x})");
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // The stalled receiver must not block the sender-side lifecycle.
        tx.send(7).unwrap();
        assert!(tx.close());
        assert!(tx.is_closed());
        fault::disarm();
        let (first, second) = h.join().unwrap();
        assert_eq!(first.ok(), Some(7), "released receiver must see the send");
        assert!(second.is_err(), "closed and drained must be terminal");
    });
}

/// Seeded stress sweep: a mixed mild scenario over every injected layer,
/// under the full MPMC exactly-once/FIFO harness. Any failure reports the
/// exact scenario and seed to replay (the CI gate runs this across a sweep
/// of `LCRQ_TEST_SEED` values).
#[test]
fn stress_sweep() {
    let _g = guard();
    let seed = test_seed(0xFA17_5EED_0000_0001);
    let scenario = Scenario::new(seed)
        .with(Site::Cas2, 3_000, FaultAction::Fail)
        .with(Site::Faa, 1_500, FaultAction::Fail)
        .with(Site::ScqEnqueue, 3_000, FaultAction::Fail)
        .with(Site::ScqDequeue, 3_000, FaultAction::Fail)
        .with(Site::CrqEnqueue, 300, FaultAction::Fail)
        .with(Site::CloseRace, 2_000, FaultAction::Yield)
        .with(Site::RingAlloc, 20_000, FaultAction::Fail)
        .with(Site::PoolPop, 2_000, FaultAction::Yield)
        .with(Site::PoolScrub, 2_000, FaultAction::Yield)
        .with(Site::HazardScan, 2_000, FaultAction::Yield)
        .with(Site::WcqEnqueue, 3_000, FaultAction::Fail)
        .with(Site::WcqDequeue, 3_000, FaultAction::Fail)
        .with(Site::WcqHelp, 2_000, FaultAction::Yield)
        .with(Site::CrqDequeue, 1_000, FaultAction::SpinDelay(64));
    let stext = scenario.to_string();
    scenario.arm();
    let result = std::panic::catch_unwind(|| {
        let q = Lcrq::with_config(tiny());
        mpmc_stress(&q, 3, 3, 4_000);
        let q = Lscq::with_config(tiny());
        mpmc_stress(&q, 3, 3, 4_000);
        let q = LscqCas::with_config(tiny());
        mpmc_stress(&q, 2, 2, 2_000);
        let q = Wcq::with_config(tiny());
        mpmc_stress(&q, 3, 3, 4_000);
    });
    fault::disarm();
    if let Err(e) = result {
        eprintln!("fault scenario in effect: [{stext}]");
        eprintln!("replay with LCRQ_TEST_SEED={seed:#x}");
        std::panic::resume_unwind(e);
    }
}

/// Crash tolerance through the sharded front-end: stall threads *inside
/// the d-choice sampling window* (holding arbitrarily stale estimates)
/// and require the survivors to keep completing against the remaining
/// shards. A stalled sampler parks only its own thread — shard selection
/// is thread-local, so no shard, counter, or peer is wedged — and after
/// release every element is delivered exactly once.
#[test]
fn survivors_outlive_peers_stalled_in_the_sampling_window() {
    let _g = guard();
    const WORKERS: usize = 8;
    const STALLS: usize = 2;
    const BUDGET: u64 = 2_000;
    let seed = test_seed(0x57A1_1ED5_EED0_0002);
    let scenario = Scenario::new(seed)
        .with(Site::ShardSample, 400_000, FaultAction::Stall)
        .max_stalls(STALLS as u64);
    let stext = scenario.to_string();
    scenario.arm();

    let q = ShardedQueue::from_factory(
        &ShardedConfig::new()
            .with_shards(4)
            .with_d(2)
            .with_refresh(16),
        |_| Lcrq::with_config(tiny()),
    );
    let done = AtomicUsize::new(0);
    let (q, done) = (&q, &done);
    let all: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|t| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..BUDGET {
                        q.enqueue(encode(t, i));
                        if let Some(v) = q.dequeue() {
                            got.push(v);
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                    got
                })
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(120);
        while done.load(Ordering::SeqCst) < WORKERS - STALLS {
            if Instant::now() >= deadline {
                fault::disarm();
                panic!(
                    "[sharded] survivors starved with {STALLS} peers stalled \
                     under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
                );
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stalled = fault::stalled_count();
        fault::disarm(); // release the "crashed" samplers so they can join
        assert_eq!(
            stalled, STALLS,
            "[sharded] expected exactly {STALLS} stalled threads under [{stext}] \
             (replay with LCRQ_TEST_SEED={seed:#x})"
        );
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut seen: Vec<u64> = all.into_iter().flatten().collect();
    while let Some(v) = q.dequeue() {
        seen.push(v);
    }
    let total = WORKERS as u64 * BUDGET;
    assert_eq!(
        seen.len() as u64,
        total,
        "[sharded] lost items under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
    );
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len() as u64,
        total,
        "[sharded] duplicated items under [{stext}] (replay with LCRQ_TEST_SEED={seed:#x})"
    );
    assert_eq!(q.dequeue(), None, "[sharded] queue should be drained");
}

/// `Fail` at the sampling site degrades an operation to a single uniform
/// sample — the stale-estimate worst case, equivalent to d = 1. Delivery
/// must stay exactly-once and the relaxation must stay inside the d = 1
/// envelope (the widest this front-end can produce at this geometry).
#[test]
fn failed_sampling_degrades_to_uniform_choice_not_lost_elements() {
    let _g = guard();
    let seed = test_seed(0x57A1_1ED5_EED0_0003);
    let scenario = Scenario::new(seed).with(Site::ShardSample, 500_000, FaultAction::Fail);
    let stext = scenario.to_string();
    scenario.arm();
    let result = std::panic::catch_unwind(|| {
        let q = ShardedQueue::from_factory(
            &ShardedConfig::new()
                .with_shards(4)
                .with_d(2)
                .with_refresh(16),
            |_| Lcrq::with_config(tiny()),
        );
        // Half the picks lose their extra samples, so judge against the
        // d = 1 envelope rather than the configured d = 2 one.
        let bound = rank_error_bound_for(4, 1, 16, 6);
        mpmc_stress_relaxed(&q, 3, 3, 4_000, bound);
    });
    fault::disarm();
    if let Err(e) = result {
        eprintln!("fault scenario in effect: [{stext}]");
        eprintln!("replay with LCRQ_TEST_SEED={seed:#x}");
        std::panic::resume_unwind(e);
    }
}
