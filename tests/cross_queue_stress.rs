//! Cross-algorithm stress and model checks: the same battery for every
//! queue in the registry, so a regression in any algorithm (or in shared
//! substrates like hazard pointers and the combining constructions) fails
//! loudly here. The sharded d-choice front-end runs the *relaxed* variants
//! of the battery at its analytic rank-error bound — exactly-once delivery
//! and honest EMPTY reports are never relaxed.

use lcrq::queues::testing;
use lcrq_bench::{QueueKind, QueueSpec, ALL_KINDS};

fn backend(k: QueueKind, ring_order: u32) -> Box<dyn lcrq::queues::ConcurrentQueue> {
    QueueSpec::backend(k)
        .with_ring_order(ring_order)
        .with_clusters(2)
        .build()
}

#[test]
fn model_check_every_kind_against_vecdeque() {
    for &k in ALL_KINDS {
        let q = backend(k, 10);
        testing::model_check(&q, 0xBEEF ^ k.name().len() as u64);
    }
}

#[test]
fn mpmc_stress_every_kind() {
    for &k in ALL_KINDS {
        let q = backend(k, 12);
        testing::mpmc_stress(&q, 3, 3, 3_000);
    }
}

#[test]
fn mpmc_stress_lcrq_variants_with_tiny_rings() {
    // Ring switching under contention is LCRQ's trickiest path; LSCQ
    // shares the list structure but swaps in SCQ rings underneath, and wCQ
    // adds the helping records on top.
    for kind in [
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::LcrqH,
        QueueKind::Lscq,
        QueueKind::LscqCas,
        QueueKind::Wcq,
    ] {
        let q = backend(kind, 3); // R = 8
        testing::mpmc_stress(&q, 3, 3, 3_000);
    }
}

#[test]
fn pairs_workload_every_kind_drains() {
    for &k in ALL_KINDS {
        let q = backend(k, 8);
        testing::pairs_smoke(&q, 4, 1_500);
    }
}

#[test]
fn single_producer_single_consumer_order_every_kind() {
    for &k in ALL_KINDS {
        let q = backend(k, 8);
        testing::mpmc_stress(&q, 1, 1, 10_000);
    }
}

#[test]
fn burst_then_drain_every_kind() {
    // Large burst (beyond one CRQ ring) followed by a full drain in order.
    for &k in ALL_KINDS {
        let q = backend(k, 6); // R = 64 for the LCRQ variants
        for i in 0..10_000u64 {
            q.enqueue(i);
        }
        for i in 0..10_000u64 {
            assert_eq!(q.dequeue(), Some(i), "{}", k.name());
        }
        assert_eq!(q.dequeue(), None, "{}", k.name());
    }
}

#[test]
fn batch_model_check_every_kind_against_vecdeque() {
    // Mixed scalar/batch operation sequences: the LCRQ variants run their
    // native multi-slot reservation paths; every other registry queue runs
    // the trait's default scalar-loop batches. Both must match the model.
    for &k in ALL_KINDS {
        let q = backend(k, 10);
        testing::batch_model_check(&q, 0xFACE ^ k.name().len() as u64);
    }
}

#[test]
fn mpmc_batch_stress_every_kind() {
    for &k in ALL_KINDS {
        let q = backend(k, 12);
        testing::mpmc_batch_stress(&q, 3, 3, 3_000, 16);
    }
}

#[test]
fn mpmc_batch_stress_lcrq_variants_with_tiny_rings() {
    // Ring-close-mid-batch is the tentpole's trickiest path: R = 8 with
    // batches of 16 forces every reservation to overrun and spill its
    // remainder into a freshly appended seeded ring. The LSCQ variants run
    // the scalar-loop default batches over the same tiny rings.
    for kind in [
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::LcrqH,
        QueueKind::Lscq,
        QueueKind::LscqCas,
        QueueKind::Wcq,
    ] {
        let q = backend(kind, 3); // R = 8
        testing::mpmc_batch_stress(&q, 3, 3, 3_000, 16);
    }
}

#[test]
fn batch_and_scalar_cross_product_lcrq() {
    // Scalar producers with batch consumers and vice versa, across scalar
    // and tiny rings: the two APIs must interoperate on one queue.
    for kind in [QueueKind::Lcrq, QueueKind::LcrqCas] {
        for ring_order in [3u32, 10] {
            let q = backend(kind, ring_order);
            let q = &q;
            let total = 4_000u64;
            // Batch producer / scalar consumer.
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut i = 0u64;
                    while i < total {
                        let n = 16.min(total - i);
                        let vals: Vec<u64> = (i..i + n).collect();
                        q.enqueue_batch(&vals);
                        i += n;
                    }
                });
                let mut expect = 0u64;
                while expect < total {
                    if let Some(v) = q.dequeue() {
                        assert_eq!(v, expect, "single consumer must see FIFO");
                        expect += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
            // Scalar producer / batch consumer.
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..total {
                        q.enqueue(i);
                    }
                });
                let mut got = Vec::new();
                while (got.len() as u64) < total {
                    if q.dequeue_batch(&mut got, 16) == 0 {
                        std::thread::yield_now();
                    }
                }
                let expect: Vec<u64> = (0..total).collect();
                assert_eq!(got, expect, "single batch consumer must see FIFO");
            });
            assert_eq!(q.dequeue(), None);
        }
    }
}

#[test]
fn alternating_empty_nonempty_every_kind() {
    // Hammers the EMPTY path (empty transitions + fixState for CRQ-based
    // queues) interleaved with successful operations.
    for &k in ALL_KINDS {
        let q = backend(k, 6);
        for round in 0..500u64 {
            assert_eq!(q.dequeue(), None, "{}", k.name());
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round), "{}", k.name());
        }
    }
}

/// The sharded specs the shared battery runs against: LCRQ and LSCQ inner
/// backends (the ci.sh sharded gate's pair), plus a nested composition.
const SHARDED_SPECS: &[&str] = &[
    "sharded:shards=4,d=2,refresh=8,inner=lcrq:ring=6",
    "sharded:shards=4,d=2,refresh=8,inner=lscq:ring=6",
    "sharded:shards=4,d=2,refresh=8,inner=wcq:ring=6",
    "sharded:shards=2,d=2,refresh=4,inner=sharded:shards=2,d=1,refresh=4,inner=lcrq:ring=6",
];

/// Empirical relaxation windows in these tests are far below the analytic
/// envelope; the stress harness uses the spec's bound at the test's
/// concurrency.
fn parsed_sharded() -> Vec<QueueSpec> {
    SHARDED_SPECS
        .iter()
        .map(|s| QueueSpec::parse(s).unwrap())
        .collect()
}

#[test]
fn relaxed_model_check_sharded_specs() {
    for spec in parsed_sharded() {
        let q = spec.build();
        // Sequential, single sampler, refresh up to 8 stale: the d-choice
        // window stays within the bound for 1 thread.
        let window = spec.rank_error_bound(1) as usize;
        testing::relaxed_model_check(&q, 0x54AD ^ window as u64, window);
    }
}

#[test]
fn mpmc_stress_relaxed_sharded_specs() {
    for spec in parsed_sharded() {
        let q = spec.build();
        testing::mpmc_stress_relaxed(&q, 3, 3, 3_000, spec.rank_error_bound(6));
    }
}

#[test]
fn mpmc_batch_stress_relaxed_sharded_specs() {
    for spec in parsed_sharded() {
        let q = spec.build();
        // `refresh` counts operations and each batched call moves up to 16
        // elements, so the envelope scales by the batch size.
        let bound = spec.rank_error_bound(6).saturating_mul(16);
        testing::mpmc_batch_stress_relaxed(&q, 3, 3, 3_000, 16, bound);
    }
}

#[test]
fn burst_then_drain_sharded_stays_within_displacement_bound() {
    // Sequential burst + drain: element i must come out within the
    // analytic bound of position i, and nothing may be lost.
    for spec in parsed_sharded() {
        let q = spec.build();
        let bound = spec.rank_error_bound(1);
        let total = 10_000u64;
        for i in 0..total {
            q.enqueue(i);
        }
        let mut seen = vec![false; total as usize];
        for p in 0..total {
            let v = q
                .dequeue()
                .unwrap_or_else(|| panic!("{spec}: lost items at {p}"));
            assert!(
                v <= p + bound && p <= v + bound,
                "{spec}: displacement |{v} - {p}| exceeds bound {bound}"
            );
            assert!(!seen[v as usize], "{spec}: duplicate {v}");
            seen[v as usize] = true;
        }
        assert_eq!(q.dequeue(), None, "{spec}");
    }
}

#[test]
fn alternating_empty_nonempty_sharded_is_exact() {
    // With a single element in flight there is nothing to relax: the
    // exact-empty fallback sweep must find it every round, and EMPTY must
    // only be reported when the queue really is empty.
    for spec in parsed_sharded() {
        let q = spec.build();
        for round in 0..500u64 {
            assert_eq!(q.dequeue(), None, "{spec}");
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round), "{spec}");
        }
    }
}

#[test]
fn pairs_workload_sharded_drains() {
    for spec in parsed_sharded() {
        let q = spec.build();
        testing::pairs_smoke(&q, 4, 1_500);
    }
}
