//! Cross-algorithm stress and model checks: the same battery for every
//! queue in the registry, so a regression in any algorithm (or in shared
//! substrates like hazard pointers and the combining constructions) fails
//! loudly here.

use lcrq::queues::testing;
use lcrq_bench::{make_queue, QueueKind, ALL_KINDS};

#[test]
fn model_check_every_kind_against_vecdeque() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 10, 2);
        testing::model_check(&q, 0xBEEF ^ k.name().len() as u64);
    }
}

#[test]
fn mpmc_stress_every_kind() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 12, 2);
        testing::mpmc_stress(&q, 3, 3, 3_000);
    }
}

#[test]
fn mpmc_stress_lcrq_variants_with_tiny_rings() {
    // Ring switching under contention is LCRQ's trickiest path.
    for kind in [QueueKind::Lcrq, QueueKind::LcrqCas, QueueKind::LcrqH] {
        let q = make_queue(kind, 3, 2); // R = 8
        testing::mpmc_stress(&q, 3, 3, 3_000);
    }
}

#[test]
fn pairs_workload_every_kind_drains() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 8, 2);
        testing::pairs_smoke(&q, 4, 1_500);
    }
}

#[test]
fn single_producer_single_consumer_order_every_kind() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 8, 2);
        testing::mpmc_stress(&q, 1, 1, 10_000);
    }
}

#[test]
fn burst_then_drain_every_kind() {
    // Large burst (beyond one CRQ ring) followed by a full drain in order.
    for &k in ALL_KINDS {
        let q = make_queue(k, 6, 2); // R = 64 for the LCRQ variants
        for i in 0..10_000u64 {
            q.enqueue(i);
        }
        for i in 0..10_000u64 {
            assert_eq!(q.dequeue(), Some(i), "{}", k.name());
        }
        assert_eq!(q.dequeue(), None, "{}", k.name());
    }
}

#[test]
fn alternating_empty_nonempty_every_kind() {
    // Hammers the EMPTY path (empty transitions + fixState for CRQ-based
    // queues) interleaved with successful operations.
    for &k in ALL_KINDS {
        let q = make_queue(k, 6, 2);
        for round in 0..500u64 {
            assert_eq!(q.dequeue(), None, "{}", k.name());
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round), "{}", k.name());
        }
    }
}
