//! Cross-algorithm stress and model checks: the same battery for every
//! queue in the registry, so a regression in any algorithm (or in shared
//! substrates like hazard pointers and the combining constructions) fails
//! loudly here.

use lcrq::queues::testing;
use lcrq_bench::{make_queue, QueueKind, ALL_KINDS};

#[test]
fn model_check_every_kind_against_vecdeque() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 10, 2);
        testing::model_check(&q, 0xBEEF ^ k.name().len() as u64);
    }
}

#[test]
fn mpmc_stress_every_kind() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 12, 2);
        testing::mpmc_stress(&q, 3, 3, 3_000);
    }
}

#[test]
fn mpmc_stress_lcrq_variants_with_tiny_rings() {
    // Ring switching under contention is LCRQ's trickiest path; LSCQ
    // shares the list structure but swaps in SCQ rings underneath.
    for kind in [
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::LcrqH,
        QueueKind::Lscq,
        QueueKind::LscqCas,
    ] {
        let q = make_queue(kind, 3, 2); // R = 8
        testing::mpmc_stress(&q, 3, 3, 3_000);
    }
}

#[test]
fn pairs_workload_every_kind_drains() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 8, 2);
        testing::pairs_smoke(&q, 4, 1_500);
    }
}

#[test]
fn single_producer_single_consumer_order_every_kind() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 8, 2);
        testing::mpmc_stress(&q, 1, 1, 10_000);
    }
}

#[test]
fn burst_then_drain_every_kind() {
    // Large burst (beyond one CRQ ring) followed by a full drain in order.
    for &k in ALL_KINDS {
        let q = make_queue(k, 6, 2); // R = 64 for the LCRQ variants
        for i in 0..10_000u64 {
            q.enqueue(i);
        }
        for i in 0..10_000u64 {
            assert_eq!(q.dequeue(), Some(i), "{}", k.name());
        }
        assert_eq!(q.dequeue(), None, "{}", k.name());
    }
}

#[test]
fn batch_model_check_every_kind_against_vecdeque() {
    // Mixed scalar/batch operation sequences: the LCRQ variants run their
    // native multi-slot reservation paths; every other registry queue runs
    // the trait's default scalar-loop batches. Both must match the model.
    for &k in ALL_KINDS {
        let q = make_queue(k, 10, 2);
        testing::batch_model_check(&q, 0xFACE ^ k.name().len() as u64);
    }
}

#[test]
fn mpmc_batch_stress_every_kind() {
    for &k in ALL_KINDS {
        let q = make_queue(k, 12, 2);
        testing::mpmc_batch_stress(&q, 3, 3, 3_000, 16);
    }
}

#[test]
fn mpmc_batch_stress_lcrq_variants_with_tiny_rings() {
    // Ring-close-mid-batch is the tentpole's trickiest path: R = 8 with
    // batches of 16 forces every reservation to overrun and spill its
    // remainder into a freshly appended seeded ring. The LSCQ variants run
    // the scalar-loop default batches over the same tiny rings.
    for kind in [
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::LcrqH,
        QueueKind::Lscq,
        QueueKind::LscqCas,
    ] {
        let q = make_queue(kind, 3, 2); // R = 8
        testing::mpmc_batch_stress(&q, 3, 3, 3_000, 16);
    }
}

#[test]
fn batch_and_scalar_cross_product_lcrq() {
    // Scalar producers with batch consumers and vice versa, across scalar
    // and tiny rings: the two APIs must interoperate on one queue.
    for kind in [QueueKind::Lcrq, QueueKind::LcrqCas] {
        for ring_order in [3u32, 10] {
            let q = make_queue(kind, ring_order, 2);
            let q = &q;
            let total = 4_000u64;
            // Batch producer / scalar consumer.
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut i = 0u64;
                    while i < total {
                        let n = 16.min(total - i);
                        let vals: Vec<u64> = (i..i + n).collect();
                        q.enqueue_batch(&vals);
                        i += n;
                    }
                });
                let mut expect = 0u64;
                while expect < total {
                    if let Some(v) = q.dequeue() {
                        assert_eq!(v, expect, "single consumer must see FIFO");
                        expect += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
            // Scalar producer / batch consumer.
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..total {
                        q.enqueue(i);
                    }
                });
                let mut got = Vec::new();
                while (got.len() as u64) < total {
                    if q.dequeue_batch(&mut got, 16) == 0 {
                        std::thread::yield_now();
                    }
                }
                let expect: Vec<u64> = (0..total).collect();
                assert_eq!(got, expect, "single batch consumer must see FIFO");
            });
            assert_eq!(q.dequeue(), None);
        }
    }
}

#[test]
fn alternating_empty_nonempty_every_kind() {
    // Hammers the EMPTY path (empty transitions + fixState for CRQ-based
    // queues) interleaved with successful operations.
    for &k in ALL_KINDS {
        let q = make_queue(k, 6, 2);
        for round in 0..500u64 {
            assert_eq!(q.dequeue(), None, "{}", k.name());
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round), "{}", k.name());
        }
    }
}
