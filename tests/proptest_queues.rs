//! Property-based tests (proptest): arbitrary operation sequences against a
//! `VecDeque` model for every queue, arbitrary configurations for LCRQ, and
//! round-trip properties of the node bit packing.
//!
//! Gated behind the `proptest` feature so the default (tier-1) build needs
//! no registry access: enabling the feature requires re-adding the
//! `proptest` dev-dependency on a networked host (see the workspace
//! Cargo.toml) and running `cargo test --features proptest`.

#![cfg(feature = "proptest")]

use lcrq::{ConcurrentQueue, Lcrq, LcrqCas, LcrqConfig, Lscq, LscqCas};
use lcrq_bench::{QueueKind, QueueSpec, ALL_KINDS};
use proptest::prelude::*;
use std::collections::VecDeque;

/// One step of a sequential workload.
#[derive(Debug, Clone, Copy)]
enum Step {
    Enq(u64),
    Deq,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![(0u64..1_000_000).prop_map(Step::Enq), Just(Step::Deq),]
}

fn run_against_model<Q: ConcurrentQueue>(q: &Q, steps: &[Step]) {
    let mut model: VecDeque<u64> = VecDeque::new();
    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Enq(v) => {
                q.enqueue(v);
                model.push_back(v);
            }
            Step::Deq => {
                assert_eq!(q.dequeue(), model.pop_front(), "diverged at step {i}");
            }
        }
    }
    while let Some(v) = model.pop_front() {
        assert_eq!(q.dequeue(), Some(v));
    }
    assert_eq!(q.dequeue(), None);
}

/// One step of a close/recycle × batch-op workload (exercises the ring
/// recycling pool: tiny rings force tantrums, so batch spills constantly
/// retire rings through the pool and reseed recycled ones).
#[derive(Debug, Clone)]
enum BatchStep {
    Enq(u64),
    Deq,
    EnqBatch(Vec<u64>),
    DeqBatch(usize),
    Close,
}

fn batch_step_strategy() -> impl Strategy<Value = BatchStep> {
    prop_oneof![
        4 => (0u64..1_000_000).prop_map(BatchStep::Enq),
        4 => Just(BatchStep::Deq),
        3 => prop::collection::vec(0u64..1_000_000, 0..24).prop_map(BatchStep::EnqBatch),
        3 => (0usize..24).prop_map(BatchStep::DeqBatch),
        1 => Just(BatchStep::Close),
    ]
}

/// Arbitrary backend spec: any registry kind, any ring order (including
/// the omitted-from-Display default 12), any cluster count.
fn backend_spec_strategy() -> impl Strategy<Value = QueueSpec> {
    (0..ALL_KINDS.len(), 1u32..=20, 1usize..=4).prop_map(|(k, ring, clusters)| {
        QueueSpec::backend(ALL_KINDS[k])
            .with_ring_order(ring)
            .with_clusters(clusters)
    })
}

/// Arbitrary spec: a bare backend, a sharded front-end over one, or a
/// sharded front-end nested one level deep.
fn spec_strategy() -> impl Strategy<Value = QueueSpec> {
    let sharded = |inner: BoxedStrategy<QueueSpec>| {
        (inner, 1usize..=8, 1usize..=8, 1u32..=128).prop_map(|(inner, shards, d, refresh)| {
            QueueSpec::sharded(inner)
                .with_shards(shards)
                .with_d(d)
                .with_refresh(refresh)
        })
    };
    prop_oneof![
        2 => backend_spec_strategy(),
        2 => sharded(backend_spec_strategy().boxed()),
        1 => sharded(sharded(backend_spec_strategy().boxed()).boxed()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lcrq_matches_model(steps in prop::collection::vec(step_strategy(), 0..400)) {
        run_against_model(&Lcrq::new(), &steps);
    }

    #[test]
    fn lcrq_tiny_ring_matches_model(
        steps in prop::collection::vec(step_strategy(), 0..400),
        order in 1u32..6,
    ) {
        let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(order));
        run_against_model(&q, &steps);
    }

    #[test]
    fn lcrq_cas_matches_model(steps in prop::collection::vec(step_strategy(), 0..300)) {
        run_against_model(&LcrqCas::new(), &steps);
    }

    #[test]
    fn lscq_matches_model(steps in prop::collection::vec(step_strategy(), 0..400)) {
        run_against_model(&Lscq::new(), &steps);
    }

    #[test]
    fn lscq_tiny_ring_matches_model(
        steps in prop::collection::vec(step_strategy(), 0..400),
        order in 1u32..6,
    ) {
        // Tiny SCQ rings spill constantly, covering close/append/retire.
        let q = Lscq::with_config(LcrqConfig::new().with_ring_order(order));
        run_against_model(&q, &steps);
    }

    #[test]
    fn lscq_cas_matches_model(steps in prop::collection::vec(step_strategy(), 0..300)) {
        run_against_model(&LscqCas::new(), &steps);
    }

    #[test]
    fn lscq_close_semantics_match_model(
        order in 1u32..5,
        n_before in 0u64..40,
        n_after in 1u64..10,
    ) {
        // Accept-then-close: the accepted backlog drains FIFO; enqueues
        // after close refuse without placing anything.
        let q = Lscq::with_config(LcrqConfig::new().with_ring_order(order));
        for i in 0..n_before {
            prop_assert_eq!(q.try_enqueue(i), Ok(()));
        }
        prop_assert!(q.close());
        prop_assert!(q.is_closed());
        for i in 0..n_after {
            prop_assert_eq!(q.try_enqueue(1_000_000 + i), Err(1_000_000 + i));
        }
        for i in 0..n_before {
            prop_assert_eq!(q.dequeue(), Some(i));
        }
        prop_assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn arbitrary_config_still_fifo(
        order in 1u32..8,
        starvation in 1u32..64,
        wait in 0u32..64,
        steps in prop::collection::vec(step_strategy(), 0..200),
    ) {
        let q = Lcrq::with_config(
            LcrqConfig::new()
                .with_ring_order(order)
                .with_starvation_limit(starvation)
                .with_bounded_wait(wait),
        );
        run_against_model(&q, &steps);
    }

    #[test]
    fn baseline_queues_match_model(
        steps in prop::collection::vec(step_strategy(), 0..200),
        kind_idx in 0usize..7,
    ) {
        let kind = [
            QueueKind::Ms,
            QueueKind::TwoLock,
            QueueKind::Cc,
            QueueKind::Fc,
            QueueKind::Sim,
            QueueKind::Optimistic,
            QueueKind::Baskets,
        ][kind_idx];
        let q = QueueSpec::backend(kind).with_ring_order(6).build();
        run_against_model(&q, &steps);
    }

    #[test]
    fn queue_specs_round_trip_through_display(spec in spec_strategy()) {
        // Canonical form: Display then parse recovers the exact spec, and
        // the canonical string is a fixed point of another round trip.
        let rendered = spec.to_string();
        let reparsed = QueueSpec::parse(&rendered);
        prop_assert_eq!(reparsed, Ok(spec.clone()), "{}", rendered);
        prop_assert_eq!(QueueSpec::parse(&rendered).unwrap().to_string(), rendered);
    }

    #[test]
    fn queue_spec_parse_never_panics(s in "[a-z0-9:=,;-]{0,40}") {
        // Arbitrary near-miss strings must yield Ok or Err, never a panic.
        let _ = QueueSpec::parse(&s);
        let _ = QueueSpec::parse_list(&s);
    }

    #[test]
    fn node_packing_round_trips(safe in any::<bool>(), idx in 0u64..(1 << 63)) {
        use lcrq::core::node::{pack, unpack};
        prop_assert_eq!(unpack(pack(safe, idx)), (safe, idx));
    }

    #[test]
    fn histogram_percentiles_bound_samples(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..500),
    ) {
        let mut h = lcrq::util::LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let max = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        prop_assert_eq!(h.max(), max);
        prop_assert_eq!(h.min(), min);
        prop_assert!(h.percentile(100.0) == max);
        prop_assert!(h.percentile(0.0) >= min.saturating_sub(min / 16));
        // Monotone percentiles.
        let mut last = 0;
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn crq_tantrum_prefix_property(
        n_items in 1u64..200,
        order in 1u32..5,
    ) {
        // Enqueue until CLOSED: the accepted prefix must come back out in
        // order, exactly once, followed by EMPTY forever.
        use lcrq::{Crq, CrqClosed};
        let q: Crq = Crq::new(&LcrqConfig::new().with_ring_order(order));
        let mut accepted = 0;
        for i in 0..n_items {
            match q.enqueue(i) {
                Ok(()) => accepted += 1,
                Err(CrqClosed) => break,
            }
        }
        for i in 0..accepted {
            prop_assert_eq!(q.dequeue(), Some(i));
        }
        prop_assert_eq!(q.dequeue(), None);
        prop_assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn close_and_recycle_cross_batch_ops_match_model(
        steps in prop::collection::vec(batch_step_strategy(), 0..300),
        order in 1u32..4,
        starvation in 1u32..8,
        pool_cap in 0usize..4,
    ) {
        // Tiny rings + tiny starvation limits force frequent tantrums, so
        // the sequence churns through many ring incarnations; pool_cap
        // covers disabled (0) through bigger-than-churn pools. The model is
        // a VecDeque plus a closed flag: after close, enqueues refuse and
        // dequeues drain the backlog.
        let q = Lcrq::with_config(
            LcrqConfig::new()
                .with_ring_order(order)
                .with_starvation_limit(starvation)
                .with_ring_pool_capacity(pool_cap),
        );
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut closed = false;
        let mut out = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            match step {
                BatchStep::Enq(v) => {
                    if closed {
                        prop_assert_eq!(q.try_enqueue(*v), Err(*v), "step {}", i);
                    } else {
                        prop_assert_eq!(q.try_enqueue(*v), Ok(()), "step {}", i);
                        model.push_back(*v);
                    }
                }
                BatchStep::Deq => {
                    prop_assert_eq!(q.dequeue(), model.pop_front(), "step {}", i);
                }
                BatchStep::EnqBatch(vs) => {
                    if closed {
                        // Single-threaded: a closed queue places nothing.
                        prop_assert_eq!(q.try_enqueue_batch(vs), Err(0), "step {}", i);
                    } else {
                        prop_assert_eq!(q.try_enqueue_batch(vs), Ok(()), "step {}", i);
                        model.extend(vs.iter().copied());
                    }
                }
                BatchStep::DeqBatch(max) => {
                    out.clear();
                    let got = q.dequeue_batch(&mut out, *max);
                    prop_assert_eq!(got, out.len());
                    prop_assert!(got <= *max);
                    // A short batch is a linearizable EMPTY observation.
                    prop_assert_eq!(got, (*max).min(model.len()), "step {}", i);
                    for v in &out {
                        prop_assert_eq!(Some(*v), model.pop_front(), "step {}", i);
                    }
                }
                BatchStep::Close => {
                    prop_assert_eq!(q.close(), !closed, "step {}", i);
                    closed = true;
                    prop_assert!(q.is_closed());
                }
            }
            // The pool bound holds at every step of the sequence.
            prop_assert!(q.ring_pool().len() <= pool_cap, "step {}", i);
        }
        // Drain: the surviving backlog comes out FIFO, exactly once.
        while let Some(v) = model.pop_front() {
            prop_assert_eq!(q.dequeue(), Some(v));
        }
        prop_assert_eq!(q.dequeue(), None);
    }
}
