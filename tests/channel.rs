//! Channel-layer integration tests (ISSUE 2 satellite): linearizability-style
//! MPMC stress with parking in the loop, no-lost-wakeup stress, timeout
//! precision, backpressure, batch ordering, and the async API driven by the
//! crate's own `block_on`.
//!
//! Thread counts stay small (this host has one core) but every test funnels
//! through the full wait ladder — spin, yield, park — because the consumers
//! genuinely outrun the producers on a single CPU.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use lcrq::channel::{self, block_on, RecvError, RecvTimeoutError, TryRecvError, TrySendError};

/// Tags an item with its producer: per-producer sequence numbers let the
/// consumers check FIFO order per sender, the property the channel inherits
/// from the LCRQ (total FIFO) restricted to each sender's subsequence.
fn tag(producer: u64, seq: u64) -> u64 {
    (producer << 32) | seq
}

#[test]
fn mpmc_stress_no_loss_no_dup_per_sender_fifo() {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 4;
    const PER: u64 = 5_000;

    let (tx, rx) = channel::channel::<u64>();
    let barrier = Barrier::new(PRODUCERS as usize + CONSUMERS);
    let barrier = &barrier;

    let consumed: Vec<Vec<u64>> = std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            s.spawn(move || {
                barrier.wait();
                for seq in 0..PER {
                    tx.send(tag(p, seq)).unwrap();
                }
            });
        }
        drop(tx); // producers hold the remaining clones

        let handles: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let rx = rx.clone();
                s.spawn(move || {
                    barrier.wait();
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly-once delivery: the union of all consumers' items is the exact
    // multiset sent.
    let mut count: HashMap<u64, u64> = HashMap::new();
    for v in consumed.iter().flatten() {
        *count.entry(*v).or_default() += 1;
    }
    assert_eq!(count.len() as u64, PRODUCERS * PER, "lost items");
    assert!(count.values().all(|&c| c == 1), "duplicated items");

    // Per-sender FIFO within each consumer's local stream.
    for got in &consumed {
        let mut last: HashMap<u64, u64> = HashMap::new();
        for &v in got {
            let (p, seq) = (v >> 32, v & 0xffff_ffff);
            if let Some(&prev) = last.get(&p) {
                assert!(prev < seq, "per-sender order violated: {prev} then {seq}");
            }
            last.insert(p, seq);
        }
    }
}

/// The classic lost-wakeup shape, looped: one item in flight at a time, with
/// the consumer's final-poll-then-park window raced against the producer's
/// enqueue-then-notify. Any lost wakeup deadlocks the iteration (caught by
/// the recv_timeout + panic below rather than hanging the suite).
#[test]
fn no_lost_wakeup_one_item_ping() {
    const ROUNDS: u64 = 2_000;
    let (tx, rx) = channel::channel::<u64>();
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..ROUNDS {
                tx.send(i).unwrap();
                // Stagger occasionally so the consumer reaches the parked
                // state (not just the spin phase) in some iterations.
                if i % 64 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        for i in 0..ROUNDS {
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(v) => assert_eq!(v, i),
                Err(e) => panic!("round {i}: wakeup lost ({e})"),
            }
        }
    });
}

#[test]
fn recv_timeout_times_out_within_tolerance() {
    let (tx, rx) = channel::channel::<u64>();
    let start = Instant::now();
    let r = rx.recv_timeout(Duration::from_millis(80));
    let elapsed = start.elapsed();
    assert_eq!(r, Err(RecvTimeoutError::Timeout));
    assert!(
        elapsed >= Duration::from_millis(80),
        "woke early: {elapsed:?}"
    );
    // Generous upper bound: CI schedulers are noisy, but a parked waiter must
    // not overshoot by an order of magnitude.
    assert!(
        elapsed < Duration::from_millis(800),
        "overshot: {elapsed:?}"
    );
    drop(tx);
}

#[test]
fn recv_timeout_returns_item_sent_mid_wait() {
    let (tx, rx) = channel::channel::<u64>();
    std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(99).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(99));
    });
}

#[test]
fn bounded_backpressure_blocks_and_unblocks() {
    let (tx, rx) = channel::bounded::<u64>(2);
    tx.send(0).unwrap();
    tx.send(1).unwrap();
    match tx.try_send(2) {
        Err(TrySendError::Full(v)) => assert_eq!(v, 2),
        other => panic!("expected Full, got {other:?}"),
    }

    // A blocking send on the full channel must park, then complete once the
    // receiver frees a slot.
    let unblocked = AtomicU64::new(0);
    std::thread::scope(|s| {
        let (tx2, unblocked) = (tx.clone(), &unblocked);
        s.spawn(move || {
            tx2.send(2).unwrap();
            unblocked.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(unblocked.load(Ordering::SeqCst), 0, "send ignored capacity");
        assert_eq!(rx.recv(), Ok(0));
    });
    assert_eq!(unblocked.load(Ordering::SeqCst), 1);
    assert_eq!(rx.recv(), Ok(1));
    assert_eq!(rx.recv(), Ok(2));
    assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
}

#[test]
fn bounded_mpmc_stress_respects_capacity_and_delivers_all() {
    const PRODUCERS: u64 = 3;
    const CONSUMERS: usize = 3;
    const PER: u64 = 3_000;
    let (tx, rx) = channel::bounded::<u64>(16);
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            s.spawn(move || {
                for seq in 0..PER {
                    tx.send(tag(p, seq)).unwrap();
                }
            });
        }
        drop(tx);
        for _ in 0..CONSUMERS {
            let (rx, total) = (rx.clone(), &total);
            s.spawn(move || {
                let mut n = 0;
                while rx.recv().is_ok() {
                    n += 1;
                }
                total.fetch_add(n, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(total.load(Ordering::SeqCst), PRODUCERS * PER);
}

#[test]
fn batch_send_recv_preserves_order_and_count() {
    let (tx, rx) = channel::channel::<u64>();
    tx.send_batch((0..100).collect()).unwrap();
    let mut out = Vec::new();
    let n = rx.recv_batch(&mut out, 64).unwrap();
    assert_eq!(n, 64);
    let n2 = rx.recv_batch(&mut out, 64).unwrap();
    assert_eq!(n + n2, 100);
    assert_eq!(out, (0..100).collect::<Vec<_>>());
}

#[test]
fn async_roundtrip_across_threads() {
    let (tx, rx) = channel::channel::<u64>();
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..500 {
                block_on(tx.send_async(i)).unwrap();
            }
        });
        for i in 0..500 {
            assert_eq!(block_on(rx.recv_async()), Ok(i));
        }
    });
    assert_eq!(block_on(rx.recv_async()), Err(RecvError::Disconnected));
}

#[test]
fn iterator_drains_until_disconnect() {
    let (tx, rx) = channel::channel::<u64>();
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..200 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u64> = rx.iter().collect();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    });
}
