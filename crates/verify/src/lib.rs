//! Linearizability verification for concurrent queue histories.
//!
//! The paper proves CRQ is a linearizable *tantrum queue* (§4.1.2) and LCRQ
//! a linearizable FIFO queue (§4.2). This crate provides the machinery to
//! *test* those claims on real executions:
//!
//! * [`record`] — runs a concurrent workload against any
//!   [`ConcurrentQueue`], recording each operation's invocation/response
//!   interval on a global atomic clock;
//! * [`check_fifo`] — a Wing & Gong style exhaustive search (with
//!   memoization) deciding whether a recorded history has a linearization
//!   satisfying the sequential FIFO queue specification;
//! * [`check_tantrum`] — the same for the tantrum-queue specification
//!   (enqueues may return CLOSED; after the first CLOSED-returning enqueue
//!   is linearized, every later enqueue must also return CLOSED);
//! * [`measure_relaxation`] / [`check_relaxed`] — quantitative checking
//!   for *relaxed* queues (the sharded d-choice front-end): measures the
//!   empirical rank error of a history and asserts it within a bound,
//!   while still hard-rejecting duplicates, loss, and dishonest EMPTYs.
//!
//! Exhaustive checking is exponential, so it is applied to many *small*
//! histories (a few threads, a few operations each) rather than one big
//! run; large runs are covered by the cheaper per-producer order check in
//! `lcrq_queues::testing`.

#![warn(missing_docs)]

pub mod checker;
pub mod history;
pub mod relaxed;

pub use checker::{check_fifo, check_tantrum, CheckError};
pub use history::{record, Completed, HistoryOp, OpRecord, Recording};
pub use relaxed::{check_relaxed, measure_relaxation, RelaxError, RelaxationReport};
