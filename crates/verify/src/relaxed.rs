//! Quantitative checking of *relaxed* FIFO histories.
//!
//! A sharded d-choice front-end is deliberately not linearizable to the
//! strict FIFO specification: a dequeue may overtake elements that are
//! older but live in unsampled shards. The Wing–Gong checker would (rightly)
//! reject such histories, so this module replaces the boolean question
//! "is there a FIFO linearization?" with a measured one: **how far from
//! FIFO was this execution, and is that within the configured bound?**
//!
//! The metric is **rank error**: for each successful dequeue of `v`, the
//! number of elements *definitely older* than `v` (their enqueue returned
//! before `v`'s enqueue was invoked — a real-time precedence every
//! linearization must respect) that were *definitely still pending* (their
//! dequeue, if any, was invoked only after this dequeue returned). Under
//! concurrency this undercounts the true rank of any particular
//! linearization — which makes it *sound*: a reported rank of `k` proves
//! every linearization dequeues `v` ahead of at least `k` older elements.
//! For sequential (non-overlapping) histories it is exact. A strict FIFO
//! queue always measures 0.
//!
//! Exactly-once delivery and honest EMPTY reports are **not** relaxed:
//! duplicated, invented, or dropped elements and premature-EMPTY
//! observations are hard errors, same as in the strict checker.

use crate::history::{HistoryOp, Recording};
use std::collections::HashMap;

/// Why a recorded history violates even the *relaxed* specification.
#[derive(Debug, Clone, PartialEq)]
pub enum RelaxError {
    /// The same value was enqueued twice: the metric needs unique values
    /// (use distinct payloads per operation, as the harnesses do).
    DuplicateEnqueue(u64),
    /// A value was dequeued twice.
    DuplicateDequeue(u64),
    /// A value was dequeued that no enqueue ever produced.
    ForeignDequeue(u64),
    /// A value's dequeue returned before its enqueue was invoked.
    DequeueBeforeEnqueue(u64),
    /// A dequeue reported EMPTY while some element was definitely present
    /// for the whole call: enqueued (returned) before the dequeue was
    /// invoked and not dequeued until after it returned. Relaxation never
    /// licenses lying about emptiness.
    PrematureEmpty {
        /// A value that was definitely present across the EMPTY report.
        pending: u64,
    },
    /// `check_relaxed` only: the measured rank error exceeds the bound.
    RankBoundExceeded {
        /// The dequeued value with the worst measured rank error.
        value: u64,
        /// Its measured rank error.
        rank: u64,
        /// The configured bound it exceeded.
        bound: u64,
    },
}

impl core::fmt::Display for RelaxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RelaxError::DuplicateEnqueue(v) => write!(f, "value {v} enqueued twice"),
            RelaxError::DuplicateDequeue(v) => write!(f, "value {v} dequeued twice"),
            RelaxError::ForeignDequeue(v) => write!(f, "dequeued {v}, which was never enqueued"),
            RelaxError::DequeueBeforeEnqueue(v) => {
                write!(f, "value {v} dequeued before its enqueue was invoked")
            }
            RelaxError::PrematureEmpty { pending } => write!(
                f,
                "dequeue reported EMPTY while {pending} was definitely present"
            ),
            RelaxError::RankBoundExceeded { value, rank, bound } => write!(
                f,
                "dequeue of {value} measured rank error {rank}, exceeding the bound {bound}"
            ),
        }
    }
}

impl std::error::Error for RelaxError {}

/// Empirical relaxation measurements of one recorded history.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RelaxationReport {
    /// Successful dequeues measured.
    pub dequeues: u64,
    /// EMPTY observations (all verified honest).
    pub empties: u64,
    /// Worst per-dequeue rank error.
    pub max_rank_error: u64,
    /// The value whose dequeue measured `max_rank_error` (0 if none did).
    pub max_rank_value: u64,
    /// Sum of per-dequeue rank errors (mean = `total / dequeues`).
    pub total_rank_error: u64,
    /// Enqueued values never dequeued — fine for a history that ends
    /// non-empty; a *drained* run should see 0.
    pub undelivered: u64,
}

impl RelaxationReport {
    /// Mean rank error per successful dequeue (0.0 when none).
    pub fn mean_rank_error(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.total_rank_error as f64 / self.dequeues as f64
        }
    }
}

/// Interval bookkeeping for one value's lifetime in the history.
struct Lifetime {
    enq_invoked: u64,
    enq_returned: u64,
    /// Invocation time of the dequeue that removed it, if any.
    deq_invoked: Option<u64>,
}

/// Replays `rec` and measures its empirical relaxation (see the module
/// docs for the metric). Errors on anything no amount of reordering
/// relaxation can excuse: duplicates, foreign or time-travelling values,
/// and dishonest EMPTY reports.
pub fn measure_relaxation(rec: &Recording) -> Result<RelaxationReport, RelaxError> {
    // Pass 1: index every value's enqueue and dequeue intervals.
    let mut lives: HashMap<u64, Lifetime> = HashMap::new();
    for r in &rec.ops {
        match r.op {
            HistoryOp::Enq(v) => {
                let prev = lives.insert(
                    v,
                    Lifetime {
                        enq_invoked: r.invoked,
                        enq_returned: r.returned,
                        deq_invoked: None,
                    },
                );
                if prev.is_some() {
                    return Err(RelaxError::DuplicateEnqueue(v));
                }
            }
            HistoryOp::EnqClosed(_) | HistoryOp::DeqOk(_) | HistoryOp::DeqEmpty => {}
        }
    }
    for r in &rec.ops {
        if let HistoryOp::DeqOk(v) = r.op {
            let life = lives.get_mut(&v).ok_or(RelaxError::ForeignDequeue(v))?;
            if life.deq_invoked.is_some() {
                return Err(RelaxError::DuplicateDequeue(v));
            }
            if life.enq_invoked > r.returned {
                return Err(RelaxError::DequeueBeforeEnqueue(v));
            }
            life.deq_invoked = Some(r.invoked);
        }
    }

    // Pass 2: score each dequeue against the values definitely pending
    // around it. O(dequeues × values) — histories here are test-sized.
    let mut report = RelaxationReport::default();
    for r in &rec.ops {
        match r.op {
            HistoryOp::DeqOk(v) => {
                let me = &lives[&v];
                let rank = lives
                    .iter()
                    .filter(|(&e, life)| {
                        e != v
                            && life.enq_returned < me.enq_invoked
                            && life.deq_invoked.is_none_or(|d| d > r.returned)
                    })
                    .count() as u64;
                report.dequeues += 1;
                report.total_rank_error += rank;
                if rank > report.max_rank_error {
                    report.max_rank_error = rank;
                    report.max_rank_value = v;
                }
            }
            HistoryOp::DeqEmpty => {
                if let Some((&pending, _)) = lives.iter().find(|(_, life)| {
                    life.enq_returned < r.invoked && life.deq_invoked.is_none_or(|d| d > r.returned)
                }) {
                    return Err(RelaxError::PrematureEmpty { pending });
                }
                report.empties += 1;
            }
            HistoryOp::Enq(_) | HistoryOp::EnqClosed(_) => {}
        }
    }
    report.undelivered = lives.values().filter(|l| l.deq_invoked.is_none()).count() as u64;
    Ok(report)
}

/// [`measure_relaxation`], then asserts the worst measured rank error stays
/// within `bound`. This is the relaxed analogue of
/// [`check_fifo`](crate::check_fifo): `bound = 0` accepts exactly the
/// histories whose measured relaxation is indistinguishable from FIFO.
pub fn check_relaxed(rec: &Recording, bound: u64) -> Result<RelaxationReport, RelaxError> {
    let report = measure_relaxation(rec)?;
    if report.max_rank_error > bound {
        return Err(RelaxError::RankBoundExceeded {
            value: report.max_rank_value,
            rank: report.max_rank_error,
            bound,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;

    /// Builds a strictly sequential recording: each step gets a disjoint
    /// `[2i, 2i+1]` interval, so the measured metric is exact.
    fn seq(ops: &[HistoryOp]) -> Recording {
        Recording {
            ops: ops
                .iter()
                .enumerate()
                .map(|(i, &op)| OpRecord {
                    thread: 0,
                    op,
                    invoked: 2 * i as u64,
                    returned: 2 * i as u64 + 1,
                })
                .collect(),
        }
    }

    fn enq(v: u64) -> HistoryOp {
        HistoryOp::Enq(v)
    }
    fn deq(v: u64) -> HistoryOp {
        HistoryOp::DeqOk(v)
    }

    #[test]
    fn fifo_history_measures_zero() {
        let rec = seq(&[enq(1), enq(2), enq(3), deq(1), deq(2), deq(3)]);
        let rep = measure_relaxation(&rec).unwrap();
        assert_eq!(rep.max_rank_error, 0);
        assert_eq!(rep.total_rank_error, 0);
        assert_eq!(rep.dequeues, 3);
        assert_eq!(rep.undelivered, 0);
        assert!(check_relaxed(&rec, 0).is_ok());
    }

    #[test]
    fn k_rotated_dequeue_order_measures_rank_k() {
        // Enqueue 0..6, dequeue rotated left by k: every early dequeue
        // overtakes exactly the k oldest still-pending elements.
        for k in 1..5u64 {
            let n = 6u64;
            let mut ops: Vec<HistoryOp> = (0..n).map(enq).collect();
            ops.extend((0..n).map(|i| deq((i + k) % n)));
            let rep = measure_relaxation(&seq(&ops)).unwrap();
            assert_eq!(rep.max_rank_error, k, "rotation by {k}");
            assert!(check_relaxed(&seq(&ops), k).is_ok());
            let err = check_relaxed(&seq(&ops), k - 1).unwrap_err();
            assert!(
                matches!(err, RelaxError::RankBoundExceeded { rank, bound, .. }
                    if rank == k && bound == k - 1),
                "rotation by {k}: got {err:?}"
            );
        }
    }

    #[test]
    fn adjacent_swap_measures_rank_one() {
        let rec = seq(&[enq(1), enq(2), enq(3), deq(2), deq(1), deq(3)]);
        let rep = measure_relaxation(&rec).unwrap();
        assert_eq!(rep.max_rank_error, 1);
        assert_eq!(rep.total_rank_error, 1);
    }

    #[test]
    fn duplicate_dequeue_is_rejected() {
        let rec = seq(&[enq(1), enq(2), deq(1), deq(1)]);
        assert_eq!(
            measure_relaxation(&rec),
            Err(RelaxError::DuplicateDequeue(1))
        );
    }

    #[test]
    fn duplicate_enqueue_is_rejected() {
        let rec = seq(&[enq(1), enq(1)]);
        assert_eq!(
            measure_relaxation(&rec),
            Err(RelaxError::DuplicateEnqueue(1))
        );
    }

    #[test]
    fn foreign_value_is_rejected() {
        let rec = seq(&[enq(1), deq(42)]);
        assert_eq!(
            measure_relaxation(&rec),
            Err(RelaxError::ForeignDequeue(42))
        );
    }

    #[test]
    fn time_travelling_value_is_rejected() {
        // Dequeue completes strictly before the value is ever enqueued.
        let rec = seq(&[deq(1), enq(1)]);
        assert_eq!(
            measure_relaxation(&rec),
            Err(RelaxError::DequeueBeforeEnqueue(1))
        );
    }

    #[test]
    fn dropped_element_fails_a_drained_history() {
        // A lossy queue shows up as EMPTY while the dropped element is
        // still (logically) pending — relaxation does not excuse loss.
        let rec = seq(&[enq(1), enq(2), deq(1), HistoryOp::DeqEmpty]);
        assert_eq!(
            measure_relaxation(&rec),
            Err(RelaxError::PrematureEmpty { pending: 2 })
        );
    }

    #[test]
    fn undelivered_is_reported_not_rejected() {
        // Ending non-empty (no EMPTY claim) is fine; the report says so.
        let rec = seq(&[enq(1), enq(2), deq(1)]);
        let rep = measure_relaxation(&rec).unwrap();
        assert_eq!(rep.undelivered, 1);
    }

    #[test]
    fn honest_empty_on_drained_queue_is_accepted() {
        let rec = seq(&[HistoryOp::DeqEmpty, enq(1), deq(1), HistoryOp::DeqEmpty]);
        let rep = measure_relaxation(&rec).unwrap();
        assert_eq!(rep.empties, 2);
    }

    #[test]
    fn concurrent_enqueues_do_not_count_toward_rank() {
        // Two enqueues with overlapping intervals have no real-time order:
        // dequeuing either first is rank 0 under the sound metric.
        let rec = Recording {
            ops: vec![
                OpRecord {
                    thread: 0,
                    op: enq(1),
                    invoked: 0,
                    returned: 3,
                },
                OpRecord {
                    thread: 1,
                    op: enq(2),
                    invoked: 1,
                    returned: 2,
                },
                OpRecord {
                    thread: 0,
                    op: deq(2),
                    invoked: 4,
                    returned: 5,
                },
                OpRecord {
                    thread: 0,
                    op: deq(1),
                    invoked: 6,
                    returned: 7,
                },
            ],
        };
        let rep = measure_relaxation(&rec).unwrap();
        assert_eq!(rep.max_rank_error, 0);
    }

    #[test]
    fn empty_concurrent_with_enqueue_is_not_premature() {
        // The EMPTY's window overlaps the enqueue: a linearization may
        // order the EMPTY first, so it must be accepted.
        let rec = Recording {
            ops: vec![
                OpRecord {
                    thread: 0,
                    op: enq(1),
                    invoked: 0,
                    returned: 3,
                },
                OpRecord {
                    thread: 1,
                    op: HistoryOp::DeqEmpty,
                    invoked: 1,
                    returned: 2,
                },
            ],
        };
        assert!(measure_relaxation(&rec).is_ok());
    }
}
