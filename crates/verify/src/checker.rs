//! Wing & Gong style linearizability checking for queue histories.
//!
//! Exhaustively searches for a total order of the recorded operations that
//! (a) respects real-time order — if `a` returned before `b` was invoked,
//! `a` must precede `b` — and (b) satisfies the sequential specification.
//! Memoizing on (set of linearized ops, abstract queue state) prunes the
//! search enough for histories of a few dozen operations, the regime in
//! which we use it (many small adversarial runs rather than one big one).

use crate::history::{HistoryOp, OpRecord, Recording};
use std::collections::{HashSet, VecDeque};

/// Why a history failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// No linearization exists. Contains the length of the longest
    /// specification-respecting prefix found, as a debugging hint.
    NotLinearizable {
        /// Most operations any explored branch managed to linearize.
        best_prefix: usize,
        /// Total operations in the history.
        total: usize,
    },
    /// The history is too large for exhaustive checking (> 128 operations).
    TooLarge(usize),
}

impl core::fmt::Display for CheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckError::NotLinearizable { best_prefix, total } => write!(
                f,
                "history is not linearizable (best prefix {best_prefix}/{total})"
            ),
            CheckError::TooLarge(n) => write!(f, "history too large for exhaustive check: {n}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Checks a history against the FIFO queue specification. On success
/// returns one witness linearization (indices into `rec.ops`).
pub fn check_fifo(rec: &Recording) -> Result<Vec<usize>, CheckError> {
    check(rec, false)
}

/// Checks a history against the *tantrum queue* specification (§4.1.2):
/// like FIFO, but an enqueue may return CLOSED, after which every
/// linearized-later enqueue must also return CLOSED.
pub fn check_tantrum(rec: &Recording) -> Result<Vec<usize>, CheckError> {
    check(rec, true)
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct StateKey {
    done: u128,
    queue: Vec<u64>,
    closed: bool,
}

fn check(rec: &Recording, tantrum: bool) -> Result<Vec<usize>, CheckError> {
    let ops = &rec.ops;
    let n = ops.len();
    if n > 128 {
        return Err(CheckError::TooLarge(n));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut visited: HashSet<StateKey> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut best_prefix = 0usize;
    let ok = dfs(
        ops,
        tantrum,
        0,
        false,
        &mut queue,
        &mut order,
        &mut visited,
        &mut best_prefix,
    );
    if ok {
        Ok(order)
    } else {
        Err(CheckError::NotLinearizable {
            best_prefix,
            total: n,
        })
    }
}

/// Applies `op` to the abstract state if legal; returns an undo token.
fn apply(
    op: &HistoryOp,
    tantrum: bool,
    closed: bool,
    queue: &mut VecDeque<u64>,
) -> Option<(bool, Option<u64>)> {
    match *op {
        HistoryOp::Enq(v) => {
            if tantrum && closed {
                return None; // a closed tantrum queue cannot accept items
            }
            queue.push_back(v);
            Some((closed, None))
        }
        HistoryOp::EnqClosed(_) => {
            if !tantrum {
                return None; // FIFO queues never refuse
            }
            // Either already closed, or this op throws the tantrum.
            Some((true, None))
        }
        HistoryOp::DeqOk(v) => {
            if queue.front() == Some(&v) {
                queue.pop_front();
                Some((closed, Some(v)))
            } else {
                None
            }
        }
        HistoryOp::DeqEmpty => {
            if queue.is_empty() {
                Some((closed, None))
            } else {
                None
            }
        }
    }
}

fn undo(op: &HistoryOp, token: (bool, Option<u64>), queue: &mut VecDeque<u64>) {
    match *op {
        HistoryOp::Enq(_) => {
            queue.pop_back();
        }
        HistoryOp::DeqOk(_) => {
            if let Some(v) = token.1 {
                queue.push_front(v);
            }
        }
        HistoryOp::EnqClosed(_) | HistoryOp::DeqEmpty => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    ops: &[OpRecord],
    tantrum: bool,
    done: u128,
    closed: bool,
    queue: &mut VecDeque<u64>,
    order: &mut Vec<usize>,
    visited: &mut HashSet<StateKey>,
    best_prefix: &mut usize,
) -> bool {
    let n = ops.len();
    *best_prefix = (*best_prefix).max(order.len());
    if order.len() == n {
        return true;
    }
    let key = StateKey {
        done,
        queue: queue.iter().copied().collect(),
        closed,
    };
    if !visited.insert(key) {
        return false; // already explored this (done, state) combination
    }
    // Minimal return time among pending ops: an op may linearize next only
    // if it was invoked before every pending op's return.
    let mut min_ret = u64::MAX;
    for (i, op) in ops.iter().enumerate() {
        if done & (1u128 << i) == 0 {
            min_ret = min_ret.min(op.returned);
        }
    }
    for (i, rec) in ops.iter().enumerate() {
        if done & (1u128 << i) != 0 || rec.invoked > min_ret {
            continue;
        }
        if let Some(token) = apply(&rec.op, tantrum, closed, queue) {
            let new_closed = token.0;
            order.push(i);
            if dfs(
                ops,
                tantrum,
                done | (1u128 << i),
                new_closed,
                queue,
                order,
                visited,
                best_prefix,
            ) {
                return true;
            }
            order.pop();
            undo(&rec.op, token, queue);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryOp::*, OpRecord};

    /// Builds a record list from (thread, op, invoked, returned) tuples.
    fn hist(items: &[(usize, HistoryOp, u64, u64)]) -> Recording {
        Recording {
            ops: items
                .iter()
                .map(|&(thread, op, invoked, returned)| OpRecord {
                    thread,
                    op,
                    invoked,
                    returned,
                })
                .collect(),
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert_eq!(check_fifo(&Recording::default()), Ok(vec![]));
    }

    #[test]
    fn sequential_fifo_history_accepted() {
        let h = hist(&[
            (0, Enq(1), 0, 1),
            (0, Enq(2), 2, 3),
            (0, DeqOk(1), 4, 5),
            (0, DeqOk(2), 6, 7),
            (0, DeqEmpty, 8, 9),
        ]);
        assert!(check_fifo(&h).is_ok());
    }

    #[test]
    fn sequential_lifo_history_rejected() {
        let h = hist(&[
            (0, Enq(1), 0, 1),
            (0, Enq(2), 2, 3),
            (0, DeqOk(2), 4, 5), // wrong: 1 must come out first
        ]);
        assert!(check_fifo(&h).is_err());
    }

    #[test]
    fn overlapping_enqueues_allow_either_order() {
        // Two concurrent enqueues; a dequeue later observes either value.
        for first in [1u64, 2] {
            let h = hist(&[
                (0, Enq(1), 0, 10),
                (1, Enq(2), 1, 9),
                (0, DeqOk(first), 11, 12),
            ]);
            assert!(check_fifo(&h).is_ok(), "first={first} should be allowed");
        }
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Enq(1) strictly precedes Enq(2), so dequeuing 2 first is illegal.
        let h = hist(&[
            (0, Enq(1), 0, 1),
            (1, Enq(2), 2, 3),
            (0, DeqOk(2), 4, 5),
            (1, DeqOk(1), 6, 7),
        ]);
        assert!(check_fifo(&h).is_err());
    }

    #[test]
    fn phantom_dequeue_rejected() {
        let h = hist(&[(0, DeqOk(7), 0, 1)]);
        assert!(check_fifo(&h).is_err());
    }

    #[test]
    fn duplicate_delivery_rejected() {
        let h = hist(&[
            (0, Enq(5), 0, 1),
            (0, DeqOk(5), 2, 3),
            (1, DeqOk(5), 2, 5), // same item delivered twice
        ]);
        assert!(check_fifo(&h).is_err());
    }

    #[test]
    fn empty_during_overlap_is_allowed() {
        // Deq overlapping an Enq may linearize before it and return empty.
        let h = hist(&[(0, Enq(1), 0, 10), (1, DeqEmpty, 1, 2)]);
        assert!(check_fifo(&h).is_ok());
    }

    #[test]
    fn empty_after_completed_enqueue_rejected() {
        // Enq(1) fully precedes the dequeue and nothing removed 1.
        let h = hist(&[(0, Enq(1), 0, 1), (1, DeqEmpty, 2, 3)]);
        assert!(check_fifo(&h).is_err());
    }

    #[test]
    fn lost_item_history_rejected() {
        // The proceedings-version LCRQ bug: enqueue completes but its item
        // never comes out; a later dequeue sees empty. With only these ops
        // the history is not linearizable.
        let h = hist(&[
            (0, Enq(1), 0, 1),
            (1, DeqOk(1), 2, 3),
            (0, Enq(2), 4, 5), // the lost item
            (1, DeqEmpty, 6, 7),
        ]);
        assert!(check_fifo(&h).is_err());
    }

    #[test]
    fn closed_enqueue_rejected_under_fifo_spec() {
        let h = hist(&[(0, EnqClosed(1), 0, 1)]);
        assert!(check_fifo(&h).is_err());
        assert!(check_tantrum(&h).is_ok());
    }

    #[test]
    fn tantrum_closed_is_permanent() {
        // enqueue returns CLOSED, then a later enqueue claims OK: illegal.
        let h = hist(&[(0, EnqClosed(1), 0, 1), (0, Enq(2), 2, 3)]);
        assert!(check_tantrum(&h).is_err());
    }

    #[test]
    fn tantrum_overlapping_close_and_enqueue_ok() {
        // Concurrent: the OK enqueue may linearize before the tantrum.
        let h = hist(&[
            (0, EnqClosed(1), 0, 10),
            (1, Enq(2), 1, 9),
            (1, DeqOk(2), 11, 12),
            (1, DeqEmpty, 13, 14),
        ]);
        assert!(check_tantrum(&h).is_ok());
    }

    #[test]
    fn tantrum_items_remain_dequeueable_after_close() {
        let h = hist(&[
            (0, Enq(1), 0, 1),
            (0, EnqClosed(2), 2, 3),
            (1, DeqOk(1), 4, 5),
            (1, DeqEmpty, 6, 7),
        ]);
        assert!(check_tantrum(&h).is_ok());
    }

    #[test]
    fn witness_linearization_is_a_permutation_respecting_real_time() {
        let h = hist(&[
            (0, Enq(1), 0, 4),
            (1, Enq(2), 1, 3),
            (0, DeqOk(2), 5, 8),
            (1, DeqOk(1), 6, 7),
        ]);
        let order = check_fifo(&h).expect("linearizable");
        assert_eq!(order.len(), 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Real-time edges: op with returned < invoked of another must precede.
        for (a_pos, &a) in order.iter().enumerate() {
            for &b in &order[a_pos + 1..] {
                assert!(
                    h.ops[a].invoked < h.ops[b].returned,
                    "order violates real time"
                );
            }
        }
    }

    #[test]
    fn too_large_history_is_reported() {
        let ops: Vec<OpRecord> = (0..129)
            .map(|i| OpRecord {
                thread: 0,
                op: Enq(i as u64),
                invoked: 2 * i as u64,
                returned: 2 * i as u64 + 1,
            })
            .collect();
        assert_eq!(
            check_fifo(&Recording { ops }),
            Err(CheckError::TooLarge(129))
        );
    }

    #[test]
    fn wide_concurrency_is_tractable() {
        // 6 threads × 4 ops fully overlapping: stresses memoization.
        let mut ops = Vec::new();
        for t in 0..6usize {
            for k in 0..2u64 {
                ops.push(OpRecord {
                    thread: t,
                    op: Enq((t as u64) * 10 + k),
                    invoked: (t as u64 * 2 + k) * 2,
                    returned: 1000 + (t as u64 * 2 + k) * 2,
                });
            }
        }
        // All concurrent; everything linearizable. Then a sequential drain.
        let mut base = 3000;
        let drained: Vec<u64> = (0..6u64)
            .flat_map(|t| (0..2).map(move |k| t * 10 + k))
            .collect();
        for v in drained {
            ops.push(OpRecord {
                thread: 0,
                op: DeqOk(v),
                invoked: base,
                returned: base + 1,
            });
            base += 2;
        }
        let rec = Recording { ops };
        assert!(check_fifo(&rec).is_ok());
    }
}
