//! Concurrent history recording.

use lcrq_queues::ConcurrentQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// What an operation did, including its observed result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryOp {
    /// `enqueue(value)` completed normally.
    Enq(u64),
    /// `enqueue(value)` returned CLOSED (tantrum queues only).
    EnqClosed(u64),
    /// `dequeue()` returned `value`.
    DeqOk(u64),
    /// `dequeue()` returned empty.
    DeqEmpty,
}

/// One completed operation with its timing interval.
///
/// `invoked` and `returned` are drawn from a single global atomic counter,
/// so for any two records `a`, `b`: `a.returned < b.invoked` means `a`
/// really-happened-before `b` and every linearization must respect it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Id of the thread that performed the operation.
    pub thread: usize,
    /// Operation and result.
    pub op: HistoryOp,
    /// Clock value drawn immediately before invoking the operation.
    pub invoked: u64,
    /// Clock value drawn immediately after the operation returned.
    pub returned: u64,
}

/// A recorded history, sorted by invocation time.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    /// All completed operations.
    pub ops: Vec<OpRecord>,
}

/// Marker describing the kind of operation a workload step performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completed {
    /// Enqueue the given value.
    Enq(u64),
    /// Attempt a dequeue.
    Deq,
    /// Enqueue all given values with one `enqueue_batch` call.
    EnqBatch(Vec<u64>),
    /// Attempt to dequeue up to `max` values with one `dequeue_batch` call.
    DeqBatch(usize),
}

/// Runs a concurrent workload against `queue` and records the history.
///
/// `scripts[t]` is the operation sequence thread `t` executes. All threads
/// start together on a barrier to maximize overlap. Returns the merged
/// history sorted by invocation time.
///
/// Batch steps expand into one [`OpRecord`] *per item*, all sharing the
/// batch call's `[invoked, returned]` window: the batch contract is that
/// the call linearizes as that many individual operations inside its
/// real-time window, which is exactly what the expansion asserts. (The
/// known intra-batch order becomes "concurrent" in the recorded history —
/// a sound weakening: the checker can never falsely reject, and batch
/// *order* is covered separately by the stress harnesses.) A
/// `dequeue_batch` shortfall appends one [`HistoryOp::DeqEmpty`], the
/// batch's linearizable EMPTY observation.
pub fn record<Q: ConcurrentQueue>(queue: &Q, scripts: &[Vec<Completed>]) -> Recording {
    let clock = AtomicU64::new(0);
    let log: Mutex<Vec<OpRecord>> = Mutex::new(Vec::new());
    let barrier = Barrier::new(scripts.len());
    let (clock, log, barrier) = (&clock, &log, &barrier);
    std::thread::scope(|s| {
        for (t, script) in scripts.iter().enumerate() {
            s.spawn(move || {
                let mut local = Vec::with_capacity(script.len());
                barrier.wait();
                for step in script {
                    let invoked = clock.fetch_add(1, Ordering::SeqCst);
                    let mut push = |op, returned| {
                        local.push(OpRecord {
                            thread: t,
                            op,
                            invoked,
                            returned,
                        })
                    };
                    match step {
                        Completed::Enq(v) => {
                            queue.enqueue(*v);
                            let returned = clock.fetch_add(1, Ordering::SeqCst);
                            push(HistoryOp::Enq(*v), returned);
                        }
                        Completed::Deq => {
                            let got = queue.dequeue();
                            let returned = clock.fetch_add(1, Ordering::SeqCst);
                            push(
                                match got {
                                    Some(v) => HistoryOp::DeqOk(v),
                                    None => HistoryOp::DeqEmpty,
                                },
                                returned,
                            );
                        }
                        Completed::EnqBatch(vals) => {
                            queue.enqueue_batch(vals);
                            let returned = clock.fetch_add(1, Ordering::SeqCst);
                            for &v in vals {
                                push(HistoryOp::Enq(v), returned);
                            }
                        }
                        Completed::DeqBatch(max) => {
                            let mut out = Vec::with_capacity(*max);
                            let taken = queue.dequeue_batch(&mut out, *max);
                            let returned = clock.fetch_add(1, Ordering::SeqCst);
                            for &v in &out {
                                push(HistoryOp::DeqOk(v), returned);
                            }
                            if taken < *max {
                                push(HistoryOp::DeqEmpty, returned);
                            }
                        }
                    }
                }
                log.lock().unwrap().extend(local);
            });
        }
    });
    let mut ops = std::mem::take(&mut *log.lock().unwrap());
    ops.sort_by_key(|r| r.invoked);
    Recording { ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    struct LockQueue(Mutex<VecDeque<u64>>);
    impl ConcurrentQueue for LockQueue {
        fn enqueue(&self, v: u64) {
            self.0.lock().unwrap().push_back(v);
        }
        fn dequeue(&self) -> Option<u64> {
            self.0.lock().unwrap().pop_front()
        }
        fn name(&self) -> &'static str {
            "lock"
        }
        fn is_nonblocking(&self) -> bool {
            false
        }
    }

    #[test]
    fn records_every_operation_with_ordered_intervals() {
        let q = LockQueue(Mutex::new(VecDeque::new()));
        let scripts = vec![
            vec![Completed::Enq(1), Completed::Deq],
            vec![Completed::Enq(2), Completed::Deq, Completed::Deq],
        ];
        let rec = record(&q, &scripts);
        assert_eq!(rec.ops.len(), 5);
        for r in &rec.ops {
            assert!(r.invoked < r.returned, "interval must be well-formed");
        }
        // Clock values are globally unique.
        let mut stamps: Vec<u64> = rec
            .ops
            .iter()
            .flat_map(|r| [r.invoked, r.returned])
            .collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 10);
    }

    #[test]
    fn batch_steps_expand_into_per_item_records() {
        let q = LockQueue(Mutex::new(VecDeque::new()));
        let scripts = vec![vec![
            Completed::EnqBatch(vec![1, 2, 3]),
            Completed::DeqBatch(5),
        ]];
        let rec = record(&q, &scripts);
        // 3 enqueues + 3 successful dequeues + 1 EMPTY for the shortfall.
        assert_eq!(rec.ops.len(), 7);
        let enqs = rec
            .ops
            .iter()
            .filter(|r| matches!(r.op, HistoryOp::Enq(_)))
            .count();
        let deq_ok = rec
            .ops
            .iter()
            .filter(|r| matches!(r.op, HistoryOp::DeqOk(_)))
            .count();
        let deq_empty = rec
            .ops
            .iter()
            .filter(|r| r.op == HistoryOp::DeqEmpty)
            .count();
        assert_eq!((enqs, deq_ok, deq_empty), (3, 3, 1));
        // Records of one batch share the call's interval.
        assert_eq!(rec.ops[0].invoked, rec.ops[1].invoked);
        assert_eq!(rec.ops[0].returned, rec.ops[2].returned);
        // And the expanded history is linearizable.
        assert!(crate::check_fifo(&rec).is_ok());
    }

    #[test]
    fn full_batch_dequeue_records_no_empty() {
        let q = LockQueue(Mutex::new(VecDeque::new()));
        let scripts = vec![vec![
            Completed::EnqBatch(vec![7, 8]),
            Completed::DeqBatch(2),
        ]];
        let rec = record(&q, &scripts);
        assert_eq!(rec.ops.len(), 4, "no shortfall: no DeqEmpty record");
        assert!(rec.ops.iter().all(|r| r.op != HistoryOp::DeqEmpty));
    }

    #[test]
    fn sequential_script_produces_disjoint_intervals() {
        let q = LockQueue(Mutex::new(VecDeque::new()));
        let rec = record(
            &q,
            &[vec![Completed::Enq(1), Completed::Enq(2), Completed::Deq]],
        );
        for w in rec.ops.windows(2) {
            assert!(w[0].returned < w[1].invoked);
        }
        assert_eq!(rec.ops[2].op, HistoryOp::DeqOk(1));
    }
}
