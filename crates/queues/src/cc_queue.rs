//! CC-Queue (Fatourou & Kallimanis, PPoPP 2012).
//!
//! The two-lock queue with each lock replaced by a CC-Synch combining
//! instance: one instance serializes enqueues against the tail, the other
//! serializes dequeues against the head, and the two run in parallel. This
//! was the fastest previously published queue the paper compares against on
//! single-processor runs (LCRQ outperforms it by ≈1.5×; Figure 6a).

use crate::ll::{free_chain, LlNode};
use crate::ConcurrentQueue;
use core::sync::atomic::Ordering;
use lcrq_combining::{CcSynch, SeqObject};

/// The enqueue side: owns the tail pointer; `apply(v)` appends a node.
pub(crate) struct EnqSide {
    tail: *mut LlNode,
}

// SAFETY: only the (unique) combiner of the owning construction touches it.
unsafe impl Send for EnqSide {}

impl EnqSide {
    /// Creates the enqueue side with `tail` as the current last node.
    pub(crate) fn with_tail(tail: *mut LlNode) -> Self {
        Self { tail }
    }
}

impl SeqObject for EnqSide {
    type Op = u64;
    type Ret = ();

    fn apply(&mut self, value: u64) {
        let node = LlNode::alloc(value);
        // SAFETY: `tail` is the last node of the list; it is never freed
        // while reachable (dequeue frees strictly older nodes).
        unsafe {
            (*self.tail).next.store(node, Ordering::Release);
        }
        self.tail = node;
    }
}

/// The dequeue side: owns the head (dummy) pointer; `apply(())` removes the
/// oldest item.
pub(crate) struct DeqSide {
    head: *mut LlNode,
}

// SAFETY: as for EnqSide.
unsafe impl Send for DeqSide {}

impl DeqSide {
    /// Creates the dequeue side with `head` as the current dummy.
    pub(crate) fn with_head(head: *mut LlNode) -> Self {
        Self { head }
    }

    /// The current dummy pointer (for teardown).
    pub(crate) fn head_ptr(&mut self) -> *mut LlNode {
        self.head
    }
}

impl SeqObject for DeqSide {
    type Op = ();
    type Ret = Option<u64>;

    fn apply(&mut self, _: ()) -> Option<u64> {
        // SAFETY: `head` is the dummy; `next` is atomic because it races
        // (benignly) with a concurrent enqueue when the queue is empty.
        unsafe {
            let next = (*self.head).next.load(Ordering::Acquire);
            if next.is_null() {
                return None;
            }
            let value = (*next).value;
            let old = self.head;
            self.head = next;
            drop(Box::from_raw(old));
            Some(value)
        }
    }
}

/// The CC-Queue: two CC-Synch instances over the two-lock queue's sides.
pub struct CcQueue {
    enq: CcSynch<EnqSide>,
    deq: CcSynch<DeqSide>,
}

impl CcQueue {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = LlNode::alloc(0);
        Self {
            enq: CcSynch::new(EnqSide { tail: dummy }),
            deq: CcSynch::new(DeqSide { head: dummy }),
        }
    }

    /// Creates a queue whose combiners serve at most `help_limit` requests
    /// per round.
    pub fn with_help_limit(help_limit: usize) -> Self {
        let dummy = LlNode::alloc(0);
        Self {
            enq: CcSynch::with_help_limit(EnqSide { tail: dummy }, help_limit),
            deq: CcSynch::with_help_limit(DeqSide { head: dummy }, help_limit),
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: u64) {
        self.enq.apply(value);
    }

    /// Removes the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<u64> {
        self.deq.apply(())
    }
}

impl Default for CcQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CcQueue {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; the chain from the dummy covers
        // every remaining node including the tail.
        unsafe { free_chain(self.deq.state_mut().head) };
    }
}

impl ConcurrentQueue for CcQueue {
    fn enqueue(&self, value: u64) {
        CcQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        CcQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "cc-queue"
    }
    fn is_nonblocking(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn empty_queue_returns_none() {
        let q = CcQueue::new();
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = CcQueue::new();
        for i in 0..200 {
            q.enqueue(i);
        }
        for i in 0..200 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn enqueue_and_dequeue_sides_run_in_parallel() {
        let q = CcQueue::new();
        testing::mpmc_stress(&q, 2, 2, 10_000);
    }

    #[test]
    fn mpmc_stress() {
        let q = CcQueue::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&CcQueue::new(), 0xCC);
    }

    #[test]
    fn small_help_limit_works() {
        let q = CcQueue::with_help_limit(1);
        testing::mpmc_stress(&q, 2, 2, 2_000);
    }

    #[test]
    fn drop_with_items_is_clean() {
        let q = CcQueue::new();
        for i in 0..500 {
            q.enqueue(i);
        }
    }

    #[test]
    fn pairs_workload_drains() {
        let q = CcQueue::new();
        testing::pairs_smoke(&q, 4, 2_000);
    }
}
