//! The uniform MPMC FIFO queue interface used by the harness and tests.

/// A linearizable multi-producer multi-consumer FIFO queue of `u64` values.
///
/// The paper's workloads transfer word-sized payloads (integers or
/// pointers), so the benchmark-facing interface is monomorphic; the LCRQ
/// core crate additionally exposes a generic typed API on top.
pub trait ConcurrentQueue: Send + Sync {
    /// Appends `value` to the queue.
    fn enqueue(&self, value: u64);

    /// Removes and returns the oldest value, or `None` if the queue is
    /// (linearizably) empty.
    fn dequeue(&self) -> Option<u64>;

    /// Short algorithm name for harness output (e.g. `"lcrq"`, `"ms"`).
    fn name(&self) -> &'static str;

    /// Whether the implementation is nonblocking (lock-free). Lock-based
    /// algorithms lose progress when a lock holder / combiner is preempted,
    /// the effect Figure 6b measures.
    fn is_nonblocking(&self) -> bool;
}

impl<Q: ConcurrentQueue + ?Sized> ConcurrentQueue for &Q {
    fn enqueue(&self, value: u64) {
        (**self).enqueue(value)
    }
    fn dequeue(&self) -> Option<u64> {
        (**self).dequeue()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_nonblocking(&self) -> bool {
        (**self).is_nonblocking()
    }
}

impl<Q: ConcurrentQueue + ?Sized> ConcurrentQueue for Box<Q> {
    fn enqueue(&self, value: u64) {
        (**self).enqueue(value)
    }
    fn dequeue(&self) -> Option<u64> {
        (**self).dequeue()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_nonblocking(&self) -> bool {
        (**self).is_nonblocking()
    }
}

impl<Q: ConcurrentQueue + ?Sized> ConcurrentQueue for std::sync::Arc<Q> {
    fn enqueue(&self, value: u64) {
        (**self).enqueue(value)
    }
    fn dequeue(&self) -> Option<u64> {
        (**self).dequeue()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_nonblocking(&self) -> bool {
        (**self).is_nonblocking()
    }
}
