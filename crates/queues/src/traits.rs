//! The uniform MPMC FIFO queue interface used by the harness and tests.

/// A linearizable multi-producer multi-consumer FIFO queue of `u64` values.
///
/// The paper's workloads transfer word-sized payloads (integers or
/// pointers), so the benchmark-facing interface is monomorphic; the LCRQ
/// core crate additionally exposes a generic typed API on top.
///
/// # Batched operations
///
/// [`enqueue_batch`] and [`dequeue_batch`] move several values per call.
/// Their contract is deliberately weak so every queue can provide them:
/// a batch is a *sequence of individual operations*, *not* an atomic
/// multi-enqueue/multi-dequeue — concurrent operations may interleave
/// between two items of the same batch, and a partially-consumed queue
/// never exposes items out of FIFO order. The default implementations
/// simply loop the scalar operations; implementations with a cheaper bulk
/// path (LCRQ reserves k ring indices with a single fetch-and-add)
/// override them and may offer stronger contiguity within one internal
/// reservation, but callers must only rely on the sequential-composition
/// semantics documented here.
///
/// [`enqueue_batch`]: ConcurrentQueue::enqueue_batch
/// [`dequeue_batch`]: ConcurrentQueue::dequeue_batch
pub trait ConcurrentQueue: Send + Sync {
    /// Appends `value` to the queue.
    fn enqueue(&self, value: u64);

    /// Removes and returns the oldest value, or `None` if the queue is
    /// (linearizably) empty.
    fn dequeue(&self) -> Option<u64>;

    /// Appends every value in `values`, in slice order.
    ///
    /// Equivalent to `for &v in values { self.enqueue(v) }`: the items
    /// linearize as `values.len()` individual enqueues in order, with no
    /// atomicity across the batch (see the trait-level docs).
    fn enqueue_batch(&self, values: &[u64]) {
        for &v in values {
            self.enqueue(v);
        }
    }

    /// Removes up to `max` of the oldest values, appending them to `out`
    /// in queue (FIFO) order; returns how many were removed.
    ///
    /// Equivalent to `max` individual [`dequeue`]s stopping at the first
    /// empty: a return value `< max` means the queue was observed
    /// (linearizably) empty, with the same guarantee as a scalar dequeue
    /// returning `None`.
    ///
    /// [`dequeue`]: ConcurrentQueue::dequeue
    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.dequeue() {
                Some(v) => {
                    out.push(v);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Short algorithm name for harness output (e.g. `"lcrq"`, `"ms"`).
    fn name(&self) -> &'static str;

    /// Whether the implementation is nonblocking (lock-free). Lock-based
    /// algorithms lose progress when a lock holder / combiner is preempted,
    /// the effect Figure 6b measures.
    fn is_nonblocking(&self) -> bool;
}

/// Why a fallible enqueue rejected a value. Returned by
/// [`ClosableQueue::try_enqueue_fallible`]; the rejected value rides along
/// so the caller can retry or surface it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The queue is closed: no enqueue will ever succeed again.
    Closed(u64),
    /// The queue needed a fresh ring but its allocation was refused (pool
    /// empty and the — possibly fault-injected — allocator declined). The
    /// queue stays open and usable; the condition is transient, so a
    /// retry may succeed. This is the graceful-degradation alternative to
    /// aborting on allocation failure.
    AllocFailed(u64),
}

impl EnqueueError {
    /// The value the enqueue handed back.
    pub fn value(self) -> u64 {
        match self {
            EnqueueError::Closed(v) | EnqueueError::AllocFailed(v) => v,
        }
    }
}

impl core::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EnqueueError::Closed(v) => write!(f, "enqueue of {v} on a closed queue"),
            EnqueueError::AllocFailed(v) => {
                write!(f, "enqueue of {v} could not allocate a fresh ring")
            }
        }
    }
}

impl std::error::Error for EnqueueError {}

/// A [`ConcurrentQueue`] that supports shutdown: enqueues can be fenced off
/// while dequeues keep draining what was already placed.
///
/// This is the queue-level hook the channel layer builds its close/drop
/// lifecycle on. The contract:
///
/// * After [`close`] returns, every [`try_enqueue`] fails and every
///   [`ConcurrentQueue::enqueue`] panics. An enqueue that completed before
///   `close` began is unaffected — its item remains dequeuable.
/// * Dequeues are never fenced: they drain remaining items and then report
///   empty as usual. "Closed **and** observed empty" is therefore a stable
///   terminal state a consumer can act on (no later dequeue will succeed,
///   modulo enqueuers racing the close itself — see the implementation's
///   documentation for its straggler bound).
///
/// [`close`]: ClosableQueue::close
/// [`try_enqueue`]: ClosableQueue::try_enqueue
pub trait ClosableQueue: ConcurrentQueue {
    /// Fences off all future enqueues. Returns `true` on the first call,
    /// `false` if the queue was already closed.
    fn close(&self) -> bool;

    /// Whether [`close`](ClosableQueue::close) has been called.
    fn is_closed(&self) -> bool;

    /// Appends `value`, or returns it as `Err(value)` if the queue is
    /// closed.
    fn try_enqueue(&self, value: u64) -> Result<(), u64>;

    /// Like [`try_enqueue`](ClosableQueue::try_enqueue), but distinguishes
    /// *why* the value was rejected — and, for implementations with a
    /// fallible allocation path, surfaces a refused ring allocation as
    /// [`EnqueueError::AllocFailed`] instead of retrying internally.
    ///
    /// The default forwards to `try_enqueue` (whose only failure is
    /// [`EnqueueError::Closed`]); ring-based queues override it.
    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        self.try_enqueue(value).map_err(EnqueueError::Closed)
    }
}

impl<Q: ConcurrentQueue + ?Sized> ConcurrentQueue for &Q {
    fn enqueue(&self, value: u64) {
        (**self).enqueue(value)
    }
    fn dequeue(&self) -> Option<u64> {
        (**self).dequeue()
    }
    fn enqueue_batch(&self, values: &[u64]) {
        (**self).enqueue_batch(values)
    }
    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        (**self).dequeue_batch(out, max)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_nonblocking(&self) -> bool {
        (**self).is_nonblocking()
    }
}

impl<Q: ConcurrentQueue + ?Sized> ConcurrentQueue for Box<Q> {
    fn enqueue(&self, value: u64) {
        (**self).enqueue(value)
    }
    fn dequeue(&self) -> Option<u64> {
        (**self).dequeue()
    }
    fn enqueue_batch(&self, values: &[u64]) {
        (**self).enqueue_batch(values)
    }
    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        (**self).dequeue_batch(out, max)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_nonblocking(&self) -> bool {
        (**self).is_nonblocking()
    }
}

impl<Q: ConcurrentQueue + ?Sized> ConcurrentQueue for std::sync::Arc<Q> {
    fn enqueue(&self, value: u64) {
        (**self).enqueue(value)
    }
    fn dequeue(&self) -> Option<u64> {
        (**self).dequeue()
    }
    fn enqueue_batch(&self, values: &[u64]) {
        (**self).enqueue_batch(values)
    }
    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        (**self).dequeue_batch(out, max)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_nonblocking(&self) -> bool {
        (**self).is_nonblocking()
    }
}

impl<Q: ClosableQueue + ?Sized> ClosableQueue for &Q {
    fn close(&self) -> bool {
        (**self).close()
    }
    fn is_closed(&self) -> bool {
        (**self).is_closed()
    }
    fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        (**self).try_enqueue(value)
    }
    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        (**self).try_enqueue_fallible(value)
    }
}

impl<Q: ClosableQueue + ?Sized> ClosableQueue for Box<Q> {
    fn close(&self) -> bool {
        (**self).close()
    }
    fn is_closed(&self) -> bool {
        (**self).is_closed()
    }
    fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        (**self).try_enqueue(value)
    }
    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        (**self).try_enqueue_fallible(value)
    }
}

impl<Q: ClosableQueue + ?Sized> ClosableQueue for std::sync::Arc<Q> {
    fn close(&self) -> bool {
        (**self).close()
    }
    fn is_closed(&self) -> bool {
        (**self).is_closed()
    }
    fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        (**self).try_enqueue(value)
    }
    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        (**self).try_enqueue_fallible(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Minimal queue relying entirely on the default batch methods.
    struct ModelQueue(Mutex<VecDeque<u64>>);

    impl ModelQueue {
        fn new() -> Self {
            Self(Mutex::new(VecDeque::new()))
        }
    }

    impl ConcurrentQueue for ModelQueue {
        fn enqueue(&self, value: u64) {
            self.0.lock().unwrap().push_back(value);
        }
        fn dequeue(&self) -> Option<u64> {
            self.0.lock().unwrap().pop_front()
        }
        fn name(&self) -> &'static str {
            "model"
        }
        fn is_nonblocking(&self) -> bool {
            false
        }
    }

    #[test]
    fn default_batch_methods_compose_scalar_ops() {
        let q = ModelQueue::new();
        q.enqueue_batch(&[1, 2, 3, 4, 5]);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        // Short batch: stops at empty and reports the shortfall.
        assert_eq!(q.dequeue_batch(&mut out, 10), 2);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.dequeue_batch(&mut out, 1), 0);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let q = ModelQueue::new();
        q.enqueue_batch(&[]);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 0), 0);
        assert!(out.is_empty());
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn blanket_impls_forward_batch_methods() {
        fn exercise<Q: ConcurrentQueue>(q: Q) {
            q.enqueue_batch(&[7, 8]);
            let mut out = Vec::new();
            assert_eq!(q.dequeue_batch(&mut out, 4), 2);
            assert_eq!(out, vec![7, 8]);
        }
        exercise(ModelQueue::new());
        exercise(Box::new(ModelQueue::new()));
        exercise(Arc::new(ModelQueue::new()));
        let boxed: Box<dyn ConcurrentQueue> = Box::new(ModelQueue::new());
        exercise(boxed);
    }
}
