//! H-Queue (Fatourou & Kallimanis, PPoPP 2012): the hierarchical CC-Queue.
//!
//! Identical to [`CcQueue`](crate::CcQueue) except each side uses H-Synch:
//! one request list per cluster plus a global lock, so combining batches
//! stay on one socket at a time. On the paper's 4-socket machine this is
//! the only combining queue that scales past 16 threads (Figure 7); its
//! weakness is sensitivity to reduced locality (the initially-full run
//! triples its L3 misses and drops throughput ≈40%, Table 3).
//!
//! Threads declare their cluster via
//! [`lcrq_util::topology::set_current_cluster`].

use crate::cc_queue::{DeqSide, EnqSide};
use crate::ll::{free_chain, LlNode};
use crate::ConcurrentQueue;
use lcrq_combining::HSynch;

/// The H-Queue: two H-Synch instances over the two-lock queue's sides.
pub struct HQueue {
    enq: HSynch<EnqSide>,
    deq: HSynch<DeqSide>,
}

impl HQueue {
    /// Creates an empty queue for `num_clusters` clusters.
    pub fn new(num_clusters: usize) -> Self {
        let dummy = LlNode::alloc(0);
        Self {
            enq: HSynch::new(EnqSide::with_tail(dummy), num_clusters),
            deq: HSynch::new(DeqSide::with_head(dummy), num_clusters),
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: u64) {
        self.enq.apply(value);
    }

    /// Removes the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<u64> {
        self.deq.apply(())
    }

    /// Number of clusters this queue was built for.
    pub fn num_clusters(&self) -> usize {
        self.enq.num_clusters()
    }
}

impl Drop for HQueue {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop.
        unsafe { free_chain(self.deq.state_mut().head_ptr()) };
    }
}

impl ConcurrentQueue for HQueue {
    fn enqueue(&self, value: u64) {
        HQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        HQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "h-queue"
    }
    fn is_nonblocking(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;
    use lcrq_util::topology::set_current_cluster;

    #[test]
    fn empty_queue_returns_none() {
        let q = HQueue::new(4);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = HQueue::new(4);
        for i in 0..200 {
            q.enqueue(i);
        }
        for i in 0..200 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_stress_single_cluster() {
        let q = HQueue::new(1);
        testing::mpmc_stress(&q, 4, 4, 4_000);
    }

    #[test]
    fn mpmc_stress_with_clustered_threads() {
        // Threads in different clusters use different request lists; the
        // global lock must still keep the queue linearizable.
        let q = HQueue::new(4);
        let q = &q;
        std::thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    set_current_cluster(t % 4);
                    for i in 0..4_000u64 {
                        q.enqueue(testing::encode(t, i));
                    }
                });
            }
        });
        let got = testing::drain(q);
        assert_eq!(got.len(), 16_000);
        // Per-producer order must hold in the drained sequence.
        let mut last = std::collections::HashMap::new();
        for v in got {
            let (p, seq) = testing::decode(v);
            if let Some(&prev) = last.get(&p) {
                assert!(seq > prev);
            }
            last.insert(p, seq);
        }
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&HQueue::new(2), 0x44);
    }

    #[test]
    fn drop_with_items_is_clean() {
        let q = HQueue::new(4);
        for i in 0..500 {
            q.enqueue(i);
        }
    }
}
