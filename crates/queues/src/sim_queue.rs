//! SimQueue — a wait-free FIFO queue built on the P-Sim universal
//! construction (Fatourou & Kallimanis, SPAA 2011; paper §2).
//!
//! The strongest-progress baseline in the repository: *wait-free*, so every
//! operation completes in a bounded number of its own steps even under an
//! adversarial scheduler — stronger than LCRQ's op-wise nonblocking and
//! far stronger than the blocking CC/FC/H queues. The price is combining
//! work plus a state copy per round, so its raw throughput trails both
//! LCRQ and CC-Queue; the paper's authors use F&A and SWAP inside Sim for
//! the same reason LCRQ does — those instructions cannot fail.
//!
//! This generic form copies the whole queue state per combining round (the
//! authors' specialized SimQueue avoids that); keep queue occupancy modest
//! when benchmarking it, as the paper's pairs workload does.

use crate::ConcurrentQueue;
use lcrq_combining::seq::{FifoOp, SeqFifo};
use lcrq_combining::Sim;

/// A wait-free MPMC FIFO queue (at most 64 distinct threads per instance).
pub struct SimQueue {
    inner: Sim<SeqFifo>,
}

impl SimQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: Sim::new(SeqFifo::default()),
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: u64) {
        self.inner.apply(FifoOp::Enq(value));
    }

    /// Removes the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<u64> {
        self.inner.apply(FifoOp::Deq)
    }
}

impl Default for SimQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentQueue for SimQueue {
    fn enqueue(&self, value: u64) {
        SimQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        SimQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "sim-queue"
    }
    fn is_nonblocking(&self) -> bool {
        true // wait-free, in fact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn empty_queue_returns_none() {
        let q = SimQueue::new();
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = SimQueue::new();
        for i in 0..200 {
            q.enqueue(i);
        }
        for i in 0..200 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_stress() {
        let q = SimQueue::new();
        testing::mpmc_stress(&q, 3, 3, 2_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&SimQueue::new(), 0x51);
    }

    #[test]
    fn completes_under_adversarial_preemption() {
        // Wait-freedom smoke: heavy injected preemption must not prevent a
        // fixed workload from finishing.
        lcrq_util::adversary::set_preempt_ppm(5_000);
        let q = SimQueue::new();
        testing::pairs_smoke(&q, 4, 500);
        lcrq_util::adversary::set_preempt_ppm(0);
    }
}
