//! Michael & Scott's nonblocking linked-list queue (PODC 1996).
//!
//! The paper's non-combining baseline. Every enqueue CASes the tail node's
//! `next` pointer and every dequeue CASes `head` — two contended hot spots
//! where most attempts fail under load. The paper attributes the queue's
//! throughput "meltdown" at high concurrency to the work wasted by those
//! failures (§1, Table 2), which is exactly what our software counters show.
//!
//! Memory reclamation uses hazard pointers (two slots: the node being
//! operated on and its successor), per Michael's original scheme, so the
//! baseline pays the same reclamation cost as LCRQ.

use core::sync::atomic::{AtomicPtr, Ordering};

use lcrq_atomic::ops::ptr::cas_ptr;
use lcrq_hazard::Domain;
use lcrq_util::CachePadded;

struct MsNode {
    next: AtomicPtr<MsNode>,
    value: u64,
}

impl MsNode {
    fn alloc(value: u64) -> *mut MsNode {
        Box::into_raw(Box::new(MsNode {
            next: AtomicPtr::new(core::ptr::null_mut()),
            value,
        }))
    }
}

/// Michael & Scott's lock-free FIFO queue.
///
/// ```
/// use lcrq_queues::{MsQueue, ConcurrentQueue};
/// let q = MsQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// assert_eq!(q.dequeue(), Some(2));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct MsQueue {
    head: CachePadded<AtomicPtr<MsNode>>,
    tail: CachePadded<AtomicPtr<MsNode>>,
    domain: Domain,
}

// SAFETY: all shared mutation is via atomics; reclamation via hazard ptrs.
unsafe impl Send for MsQueue {}
unsafe impl Sync for MsQueue {}

impl MsQueue {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = MsNode::alloc(0);
        Self {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            domain: Domain::new(),
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: u64) {
        let node = MsNode::alloc(value);
        loop {
            let tail = self.domain.protect(0, &self.tail);
            // SAFETY: `tail` is hazard-protected (validated against self.tail).
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            // Adversary injection inside the read→CAS window (see
            // lcrq_util::adversary): the MS queue is nonblocking — a
            // preempted operation blocks nobody — but its own CAS attempt
            // is wasted, the work-waste effect the paper measures.
            lcrq_util::adversary::preempt_point();
            if tail != self.tail.load(Ordering::Acquire) {
                continue;
            }
            if next.is_null() {
                // SAFETY: as above.
                if unsafe { cas_ptr(&(*tail).next, core::ptr::null_mut(), node) }.is_ok() {
                    // Linearization point. Swing tail (failure is benign —
                    // another thread already helped).
                    let _ = cas_ptr(&self.tail, tail, node);
                    self.domain.clear(0);
                    return;
                }
            } else {
                // Tail is lagging; help swing it.
                let _ = cas_ptr(&self.tail, tail, next);
            }
        }
    }

    /// Removes the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let head = self.domain.protect(0, &self.head);
            let tail = self.tail.load(Ordering::Acquire);
            lcrq_util::adversary::preempt_point(); // inside the read→CAS window
                                                   // SAFETY: `head` is hazard-protected.
            let next = self.domain.protect(1, unsafe { &(*head).next });
            if head != self.head.load(Ordering::Acquire) {
                continue;
            }
            if next.is_null() {
                self.domain.clear(0);
                self.domain.clear(1);
                return None;
            }
            if head == tail {
                // Tail is lagging behind a half-finished enqueue; help.
                let _ = cas_ptr(&self.tail, tail, next);
                continue;
            }
            // SAFETY: `next` is hazard-protected; read the value *before*
            // the CAS publishes `next` as the new dummy (after which another
            // dequeuer may retire it once our hazard clears).
            let value = unsafe { (*next).value };
            if cas_ptr(&self.head, head, next).is_ok() {
                self.domain.clear(0);
                self.domain.clear(1);
                // SAFETY: `head` (old dummy) is now unreachable from the
                // queue; hazard-pointer retirement defers the free.
                unsafe { self.domain.retire(head) };
                return Some(value);
            }
        }
    }
}

impl Default for MsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MsQueue {
    fn drop(&mut self) {
        // Exclusive access: free the remaining chain (dummy + live items).
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access in drop.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
        // Retired-but-unreclaimed nodes are freed when `domain` drops.
    }
}

impl crate::ConcurrentQueue for MsQueue {
    fn enqueue(&self, value: u64) {
        MsQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        MsQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "ms"
    }
    fn is_nonblocking(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn empty_queue_returns_none() {
        let q = MsQueue::new();
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = MsQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn interleaved_enq_deq() {
        let q = MsQueue::new();
        q.enqueue(1);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_stress() {
        let q = MsQueue::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn spsc_stress() {
        let q = MsQueue::new();
        testing::mpmc_stress(&q, 1, 1, 20_000);
    }

    #[test]
    fn drop_with_items_left_frees_them() {
        let q = MsQueue::new();
        for i in 0..1_000 {
            q.enqueue(i);
        }
        drop(q); // leak-checked implicitly; must not crash
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&MsQueue::new(), 0xA5);
    }
}
