//! Michael & Scott's two-lock queue (PODC 1996).
//!
//! A dummy-headed linked list with one lock serializing enqueues (tail) and
//! another serializing dequeues (head), so the two kinds of operations never
//! block each other. Enqueue's write of the old tail's `next` races benignly
//! with dequeue's read of the dummy's `next` when the queue is empty; the
//! `next` field is atomic, so the dequeuer sees either `null` (empty) or the
//! completed node.
//!
//! This is the substrate of CC-Queue and H-Queue, which replace each lock
//! with a combining instance (§5). Evaluated standalone here for tests and
//! as an extra datapoint.

use core::cell::UnsafeCell;
use core::sync::atomic::Ordering;

use crate::ll::{free_chain, LlNode};
use lcrq_combining::TasLock;
use lcrq_util::CachePadded;

/// Michael & Scott's two-lock FIFO queue.
pub struct TwoLockQueue {
    head_lock: CachePadded<TasLock>,
    tail_lock: CachePadded<TasLock>,
    head: CachePadded<UnsafeCell<*mut LlNode>>,
    tail: CachePadded<UnsafeCell<*mut LlNode>>,
}

// SAFETY: `head` is only accessed under `head_lock`, `tail` under
// `tail_lock`; the node link crossing the two is atomic.
unsafe impl Send for TwoLockQueue {}
unsafe impl Sync for TwoLockQueue {}

impl TwoLockQueue {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = LlNode::alloc(0);
        Self {
            head_lock: CachePadded::new(TasLock::new()),
            tail_lock: CachePadded::new(TasLock::new()),
            head: CachePadded::new(UnsafeCell::new(dummy)),
            tail: CachePadded::new(UnsafeCell::new(dummy)),
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: u64) {
        let node = LlNode::alloc(value);
        let _guard = self.tail_lock.lock();
        // SAFETY: tail is only touched under tail_lock; the tail node is
        // never freed while it is the tail (dequeue frees strictly older
        // nodes).
        unsafe {
            let tail = *self.tail.get();
            (*tail).next.store(node, Ordering::Release);
            *self.tail.get() = node;
        }
    }

    /// Removes the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<u64> {
        let _guard = self.head_lock.lock();
        // SAFETY: head is only touched under head_lock.
        unsafe {
            let head = *self.head.get();
            let next = (*head).next.load(Ordering::Acquire);
            if next.is_null() {
                return None;
            }
            let value = (*next).value;
            *self.head.get() = next; // `next` becomes the new dummy
            drop(Box::from_raw(head));
            Some(value)
        }
    }
}

impl Default for TwoLockQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TwoLockQueue {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; the chain from head covers every
        // live node including the dummy and the tail.
        unsafe { free_chain(*self.head.get()) };
    }
}

impl crate::ConcurrentQueue for TwoLockQueue {
    fn enqueue(&self, value: u64) {
        TwoLockQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        TwoLockQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "two-lock"
    }
    fn is_nonblocking(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;
    use crate::ConcurrentQueue as _;

    #[test]
    fn empty_queue_returns_none() {
        let q = TwoLockQueue::new();
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = TwoLockQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn enqueue_dequeue_do_not_deadlock_each_other() {
        // Producer and consumer take different locks; run them concurrently.
        let q = TwoLockQueue::new();
        testing::mpmc_stress(&q, 1, 1, 20_000);
    }

    #[test]
    fn mpmc_stress() {
        let q = TwoLockQueue::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&TwoLockQueue::new(), 0x2C);
    }

    #[test]
    fn drop_with_items_is_clean() {
        let q = TwoLockQueue::new();
        for i in 0..500 {
            q.enqueue(i);
        }
    }

    #[test]
    fn trait_metadata() {
        let q = TwoLockQueue::new();
        assert_eq!(q.name(), "two-lock");
        assert!(!q.is_nonblocking());
    }
}
