//! The singly linked node shared by the list-based queues (two-lock,
//! CC-Queue, H-Queue). Uses the Michael & Scott dummy-node representation:
//! the head always points at a dummy whose `next` is the oldest live item,
//! and a dequeued node becomes the new dummy.

use core::sync::atomic::{AtomicPtr, Ordering};

pub(crate) struct LlNode {
    pub(crate) next: AtomicPtr<LlNode>,
    pub(crate) value: u64,
}

impl LlNode {
    /// Allocates a node; `value` is arbitrary for dummies.
    pub(crate) fn alloc(value: u64) -> *mut LlNode {
        Box::into_raw(Box::new(LlNode {
            next: AtomicPtr::new(core::ptr::null_mut()),
            value,
        }))
    }
}

/// Frees a node chain starting at `head` (inclusive). Caller must have
/// exclusive access to the whole chain.
pub(crate) unsafe fn free_chain(head: *mut LlNode) {
    let mut cur = head;
    while !cur.is_null() {
        // SAFETY: exclusive access per contract; nodes are Box-allocated.
        let node = unsafe { Box::from_raw(cur) };
        cur = node.next.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_chain() {
        let a = LlNode::alloc(1);
        let b = LlNode::alloc(2);
        let c = LlNode::alloc(3);
        unsafe {
            (*a).next.store(b, Ordering::Relaxed);
            (*b).next.store(c, Ordering::Relaxed);
            free_chain(a); // must free all three without leaks or crashes
        }
    }

    #[test]
    fn free_chain_of_null_is_noop() {
        unsafe { free_chain(core::ptr::null_mut()) };
    }
}
