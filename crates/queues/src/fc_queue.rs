//! The flat-combining queue (Hendler, Incze, Shavit & Tzafrir, SPAA 2010).
//!
//! As evaluated in the paper (§5): "a linked list of cyclic arrays, with a
//! new tail array allocated when the old tail fills", behind a single flat
//! combining instance. Because only the combiner ever touches the storage,
//! the storage itself is a plain sequential structure — the segmented layout
//! matters for allocation behaviour (one allocation per `SEG_SIZE` items,
//! not per item).

use crate::ConcurrentQueue;
use lcrq_combining::{FlatCombining, SeqObject};

/// Items per segment (the paper does not specify; 1024 words ≈ 8 KiB keeps
/// allocation rare without wasting memory at small queue sizes).
pub const SEG_SIZE: usize = 1024;

struct Seg {
    items: Box<[u64; SEG_SIZE]>,
    /// Next index to dequeue within this segment.
    head: usize,
    /// Next index to enqueue within this segment.
    tail: usize,
    next: Option<Box<Seg>>,
}

impl Seg {
    fn new() -> Box<Seg> {
        Box::new(Seg {
            items: Box::new([0; SEG_SIZE]),
            head: 0,
            tail: 0,
            next: None,
        })
    }
}

/// A sequential FIFO over a linked list of fixed-size arrays.
pub struct SegFifo {
    /// The oldest segment (dequeue side). `None` only transiently.
    head: Option<Box<Seg>>,
    /// Raw pointer to the newest segment, which is owned by the chain
    /// starting at `head`. Only valid while the chain is intact.
    tail: *mut Seg,
    len: usize,
}

// SAFETY: only the combiner touches the storage (FlatCombining contract).
unsafe impl Send for SegFifo {}

impl SegFifo {
    /// Creates an empty segmented FIFO.
    pub fn new() -> Self {
        let mut head = Seg::new();
        let tail: *mut Seg = &mut *head;
        Self {
            head: Some(head),
            tail,
            len: 0,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the FIFO holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value` at the tail, allocating a new segment if full.
    pub fn push(&mut self, value: u64) {
        // SAFETY: `tail` points at the last segment of the chain owned by
        // `head`; `&mut self` gives exclusive access.
        let tail = unsafe { &mut *self.tail };
        if tail.tail == SEG_SIZE {
            let mut new_seg = Seg::new();
            let new_ptr: *mut Seg = &mut *new_seg;
            tail.next = Some(new_seg);
            self.tail = new_ptr;
            // SAFETY: as above, now for the fresh segment.
            let tail = unsafe { &mut *self.tail };
            tail.items[0] = value;
            tail.tail = 1;
        } else {
            tail.items[tail.tail] = value;
            tail.tail += 1;
        }
        self.len += 1;
    }

    /// Removes the oldest value.
    pub fn pop(&mut self) -> Option<u64> {
        loop {
            let head = self.head.as_mut().expect("head segment always present");
            if head.head < head.tail {
                let v = head.items[head.head];
                head.head += 1;
                self.len -= 1;
                return Some(v);
            }
            // Head segment exhausted: drop it if a successor exists.
            if head.next.is_some() {
                let next = head.next.take();
                self.head = next;
                // `tail` still points into the (new) chain: the dropped
                // segment was not the tail because it had a successor.
                continue;
            }
            return None;
        }
    }
}

impl Default for SegFifo {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SegFifo {
    fn drop(&mut self) {
        // Unlink iteratively: the default recursive Box-chain drop would
        // overflow the stack for queues with many thousands of segments.
        let mut cur = self.head.take();
        while let Some(mut seg) = cur {
            cur = seg.next.take();
        }
    }
}

/// Flat-combining queue operation.
#[derive(Debug, Clone, Copy)]
pub enum QOp {
    /// Append a value.
    Enq(u64),
    /// Remove the oldest value.
    Deq,
}

impl SeqObject for SegFifo {
    type Op = QOp;
    type Ret = Option<u64>;

    fn apply(&mut self, op: QOp) -> Option<u64> {
        match op {
            QOp::Enq(v) => {
                self.push(v);
                None
            }
            QOp::Deq => self.pop(),
        }
    }
}

/// The FC queue: flat combining over the segmented FIFO.
pub struct FcQueue {
    inner: FlatCombining<SegFifo>,
}

impl FcQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: FlatCombining::new(SegFifo::new()),
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: u64) {
        self.inner.apply(QOp::Enq(value));
    }

    /// Removes the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<u64> {
        self.inner.apply(QOp::Deq)
    }
}

impl Default for FcQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentQueue for FcQueue {
    fn enqueue(&self, value: u64) {
        FcQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        FcQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "fc-queue"
    }
    fn is_nonblocking(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn segfifo_basic() {
        let mut f = SegFifo::new();
        assert!(f.is_empty());
        assert_eq!(f.pop(), None);
        f.push(1);
        f.push(2);
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn segfifo_crosses_segment_boundaries() {
        let mut f = SegFifo::new();
        let n = (SEG_SIZE * 3 + 7) as u64;
        for i in 0..n {
            f.push(i);
        }
        assert_eq!(f.len(), n as usize);
        for i in 0..n {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn segfifo_reuse_after_drain() {
        let mut f = SegFifo::new();
        for round in 0..5u64 {
            for i in 0..(SEG_SIZE as u64 + 10) {
                f.push(round * 1_000_000 + i);
            }
            for i in 0..(SEG_SIZE as u64 + 10) {
                assert_eq!(f.pop(), Some(round * 1_000_000 + i));
            }
            assert!(f.is_empty());
        }
    }

    #[test]
    fn segfifo_interleaved_push_pop_across_boundary() {
        let mut f = SegFifo::new();
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..(SEG_SIZE * 4) {
            f.push(next_in);
            next_in += 1;
            f.push(next_in);
            next_in += 1;
            assert_eq!(f.pop(), Some(next_out));
            next_out += 1;
        }
        while let Some(v) = f.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, next_in);
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = FcQueue::new();
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = FcQueue::new();
        for i in 0..300 {
            q.enqueue(i);
        }
        for i in 0..300 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_stress() {
        let q = FcQueue::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&FcQueue::new(), 0xFC);
    }

    #[test]
    fn drop_with_items_is_clean() {
        let q = FcQueue::new();
        for i in 0..(SEG_SIZE as u64 * 2) {
            q.enqueue(i);
        }
    }
}
