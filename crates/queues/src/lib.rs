//! The baseline concurrent FIFO queues evaluated against LCRQ in the paper.
//!
//! * [`MsQueue`] — Michael & Scott's classic nonblocking linked-list queue
//!   (PODC 1996), with hazard-pointer reclamation. Scales poorly because
//!   every operation CASes a contended hot spot and most attempts fail.
//! * [`TwoLockQueue`] — Michael & Scott's two-lock queue: the substrate the
//!   combining queues are built on.
//! * [`CcQueue`] — Fatourou & Kallimanis's CC-Queue (PPoPP 2012): the
//!   two-lock queue with each lock replaced by a CC-Synch combining
//!   instance, so enqueue and dequeue batches proceed in parallel.
//! * [`HQueue`] — the hierarchical (NUMA-aware) version using H-Synch.
//! * [`FcQueue`] — Hendler et al.'s flat-combining queue (SPAA 2010): a
//!   linked list of cyclic arrays behind a single flat-combining instance.
//! * [`SimQueue`] — the *wait-free* queue built on Fatourou & Kallimanis's
//!   P-Sim construction (SPAA 2011), mentioned in the paper's related work;
//!   included as a strongest-progress reference point.
//! * [`OptimisticQueue`] — Ladan-Mozes & Shavit's optimistic queue
//!   (DISC 2004), a related-work MS descendant with one CAS per enqueue.
//! * [`BasketsQueue`] — Hoffman, Shalev & Shavit's baskets queue
//!   (OPODIS 2007), which turns tail-CAS losers into "basket" insertions.
//!
//! All queues implement the [`ConcurrentQueue`] trait over `u64` payloads
//! (the paper transfers integers/pointers), so the benchmark harness, the
//! linearizability checker, and the stress tests treat every algorithm —
//! including the LCRQ variants from `lcrq-core` — uniformly.

#![warn(missing_docs)]

pub mod baskets;
pub mod cc_queue;
pub mod fc_queue;
pub mod h_queue;
mod ll;
pub mod ms_queue;
pub mod optimistic;
pub mod sim_queue;
pub mod testing;
pub mod traits;
pub mod two_lock;

pub use baskets::BasketsQueue;
pub use cc_queue::CcQueue;
pub use fc_queue::FcQueue;
pub use h_queue::HQueue;
pub use ms_queue::MsQueue;
pub use optimistic::OptimisticQueue;
pub use sim_queue::SimQueue;
pub use traits::{ClosableQueue, ConcurrentQueue, EnqueueError};
pub use two_lock::TwoLockQueue;
