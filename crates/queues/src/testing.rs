//! Shared test harnesses for queue implementations.
//!
//! Used by the unit tests of every queue in this crate, by `lcrq-core`'s
//! tests, and by the workspace integration tests. Not compiled out of tests
//! builds (it is ordinary code) so downstream crates can reuse it.

use crate::ConcurrentQueue;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Encodes a (producer id, sequence number) pair into a queue payload.
pub fn encode(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 40) | seq
}

/// Inverse of [`encode`].
pub fn decode(value: u64) -> (usize, u64) {
    ((value >> 40) as usize, value & ((1 << 40) - 1))
}

/// Multi-producer multi-consumer stress test.
///
/// `producers` threads each enqueue `per_producer` encoded items while
/// `consumers` threads dequeue until everything is drained. Verifies:
///
/// 1. every enqueued item is dequeued exactly once (no loss, no duplication);
/// 2. items from each producer are dequeued in that producer's enqueue order
///    (a necessary condition of FIFO linearizability that scales to large
///    histories, unlike full linearizability checking).
///
/// Panics on any violation.
pub fn mpmc_stress<Q: ConcurrentQueue>(
    queue: &Q,
    producers: usize,
    consumers: usize,
    per_producer: u64,
) {
    assert!(producers > 0 && consumers > 0);
    let total = producers as u64 * per_producer;
    let dequeued = AtomicU64::new(0);
    let barrier = Barrier::new(producers + consumers);

    let barrier = &barrier;
    let dequeued = &dequeued;
    let all: Vec<Vec<u64>> = std::thread::scope(|s| {
        let mut consumer_handles = Vec::new();
        for p in 0..producers {
            s.spawn(move || {
                barrier.wait();
                for seq in 0..per_producer {
                    queue.enqueue(encode(p, seq));
                }
            });
        }
        for _ in 0..consumers {
            consumer_handles.push(s.spawn(move || {
                barrier.wait();
                let mut got = Vec::new();
                while dequeued.load(Ordering::Relaxed) < total {
                    match queue.dequeue() {
                        Some(v) => {
                            dequeued.fetch_add(1, Ordering::Relaxed);
                            got.push(v);
                        }
                        None => std::thread::yield_now(),
                    }
                }
                got
            }));
        }
        consumer_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    // 1. Exactly-once delivery.
    let mut seen: Vec<u64> = all.iter().flatten().copied().collect();
    assert_eq!(seen.len() as u64, total, "lost or duplicated items");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, total, "duplicated items");

    // 2. Per-producer order within each consumer's local stream. (The global
    // interleaving across consumers is not ordered, but any single consumer
    // must observe each producer's items in order — a consequence of queue
    // linearizability.)
    for stream in &all {
        let mut last: std::collections::HashMap<usize, u64> = Default::default();
        for &v in stream {
            let (p, seq) = decode(v);
            if let Some(&prev) = last.get(&p) {
                assert!(
                    seq > prev,
                    "consumer observed producer {p} out of order: {seq} after {prev}"
                );
            }
            last.insert(p, seq);
        }
    }

    // Queue must now be empty.
    assert_eq!(queue.dequeue(), None, "queue should be drained");
}

/// Multi-producer multi-consumer stress test over the *batch* API.
///
/// Like [`mpmc_stress`], but producers move items with
/// [`enqueue_batch`](ConcurrentQueue::enqueue_batch) in chunks of
/// `batch` and consumers with
/// [`dequeue_batch`](ConcurrentQueue::dequeue_batch). Checks the same
/// properties — exactly-once delivery and per-producer order within each
/// consumer stream — which batch semantics must preserve (a batch is a
/// sequence of individual operations; see the trait docs).
///
/// Panics on any violation.
pub fn mpmc_batch_stress<Q: ConcurrentQueue>(
    queue: &Q,
    producers: usize,
    consumers: usize,
    per_producer: u64,
    batch: usize,
) {
    assert!(producers > 0 && consumers > 0 && batch > 0);
    let total = producers as u64 * per_producer;
    let dequeued = AtomicU64::new(0);
    let barrier = Barrier::new(producers + consumers);

    let barrier = &barrier;
    let dequeued = &dequeued;
    let all: Vec<Vec<u64>> = std::thread::scope(|s| {
        let mut consumer_handles = Vec::new();
        for p in 0..producers {
            s.spawn(move || {
                barrier.wait();
                let mut seq = 0u64;
                while seq < per_producer {
                    let n = (batch as u64).min(per_producer - seq);
                    let vals: Vec<u64> = (seq..seq + n).map(|i| encode(p, i)).collect();
                    queue.enqueue_batch(&vals);
                    seq += n;
                }
            });
        }
        for _ in 0..consumers {
            consumer_handles.push(s.spawn(move || {
                barrier.wait();
                let mut got = Vec::new();
                while dequeued.load(Ordering::Relaxed) < total {
                    let taken = queue.dequeue_batch(&mut got, batch);
                    if taken > 0 {
                        dequeued.fetch_add(taken as u64, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            }));
        }
        consumer_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    // 1. Exactly-once delivery.
    let mut seen: Vec<u64> = all.iter().flatten().copied().collect();
    assert_eq!(seen.len() as u64, total, "lost or duplicated items");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, total, "duplicated items");

    // 2. Per-producer order within each consumer's local stream.
    for stream in &all {
        let mut last: std::collections::HashMap<usize, u64> = Default::default();
        for &v in stream {
            let (p, seq) = decode(v);
            if let Some(&prev) = last.get(&p) {
                assert!(
                    seq > prev,
                    "consumer observed producer {p} out of order: {seq} after {prev}"
                );
            }
            last.insert(p, seq);
        }
    }

    let mut rest = Vec::new();
    assert_eq!(
        queue.dequeue_batch(&mut rest, 1),
        0,
        "queue should be drained"
    );
}

/// Sequential model check mixing scalar and batch operations against a
/// `VecDeque` model: batch enqueues must append in slice order, batch
/// dequeues must pop in FIFO order and report shortfalls only when the
/// model is also empty.
///
/// `seed` may be overridden with the `LCRQ_TEST_SEED` env var (see
/// [`lcrq_util::rng::test_seed`]); failures print the effective seed.
pub fn batch_model_check<Q: ConcurrentQueue>(queue: &Q, seed: u64) {
    let seed = lcrq_util::rng::test_seed(seed);
    let mut rng = lcrq_util::XorShift64Star::new(seed);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next_val = 0u64;
    for step in 0..3_000 {
        match rng.next_below(4) {
            0 => {
                queue.enqueue(next_val);
                model.push_back(next_val);
                next_val += 1;
            }
            1 => {
                let n = rng.next_below(40) as usize;
                let vals: Vec<u64> = (next_val..next_val + n as u64).collect();
                queue.enqueue_batch(&vals);
                model.extend(&vals);
                next_val += n as u64;
            }
            2 => {
                assert_eq!(
                    queue.dequeue(),
                    model.pop_front(),
                    "divergence from model at step {step} \
                     (reproduce with LCRQ_TEST_SEED={seed})"
                );
            }
            _ => {
                let max = rng.next_below(40) as usize;
                let mut out = Vec::new();
                let taken = queue.dequeue_batch(&mut out, max);
                assert_eq!(taken, out.len(), "step {step}: taken != out.len()");
                assert!(taken <= max, "step {step}: over-delivered");
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(
                        Some(*v),
                        model.pop_front(),
                        "divergence from model at step {step}, batch item {i} \
                         (reproduce with LCRQ_TEST_SEED={seed})"
                    );
                }
                if taken < max {
                    assert!(
                        model.is_empty(),
                        "step {step}: short batch but model holds items \
                         (reproduce with LCRQ_TEST_SEED={seed})"
                    );
                }
            }
        }
    }
    while let Some(expect) = model.pop_front() {
        assert_eq!(queue.dequeue(), Some(expect));
    }
    assert_eq!(queue.dequeue(), None);
}

/// Runs a single-threaded randomized operation sequence against the queue
/// and a `VecDeque` model, asserting identical observable behaviour.
///
/// `seed` may be overridden with the `LCRQ_TEST_SEED` env var (see
/// [`lcrq_util::rng::test_seed`]); failures print the effective seed.
pub fn model_check<Q: ConcurrentQueue>(queue: &Q, seed: u64) {
    let seed = lcrq_util::rng::test_seed(seed);
    let mut rng = lcrq_util::XorShift64Star::new(seed);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next_val = 0u64;
    for step in 0..10_000 {
        // Bias toward enqueues early, dequeues late, to sweep queue sizes.
        let enq_bias = if step < 5_000 { 60 } else { 40 };
        if rng.chance(enq_bias, 100) {
            queue.enqueue(next_val);
            model.push_back(next_val);
            next_val += 1;
        } else {
            assert_eq!(
                queue.dequeue(),
                model.pop_front(),
                "divergence from model at step {step} \
                 (reproduce with LCRQ_TEST_SEED={seed})"
            );
        }
    }
    while let Some(expect) = model.pop_front() {
        assert_eq!(queue.dequeue(), Some(expect));
    }
    assert_eq!(queue.dequeue(), None);
}

/// Drains a queue, returning everything left in it, in order.
pub fn drain<Q: ConcurrentQueue>(queue: &Q) -> Vec<u64> {
    let mut out = Vec::new();
    while let Some(v) = queue.dequeue() {
        out.push(v);
    }
    out
}

/// Runs `threads` workers that each perform `pairs` enqueue/dequeue pairs —
/// the paper's benchmark workload shape — and asserts the queue is drained
/// at the end (every enqueue is matched by a successful dequeue eventually).
pub fn pairs_smoke<Q: ConcurrentQueue>(queue: &Q, threads: usize, pairs: u64) {
    let barrier = Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                barrier.wait();
                let mut missed = 0u64;
                for i in 0..pairs {
                    queue.enqueue(encode(t, i));
                    if queue.dequeue().is_none() {
                        missed += 1;
                    }
                }
                // Make up for empty dequeues so the queue drains.
                while missed > 0 {
                    if queue.dequeue().is_some() {
                        missed -= 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    assert_eq!(queue.dequeue(), None, "queue should be drained");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for p in [0usize, 1, 7, 100] {
            for s in [0u64, 1, 1 << 20, (1 << 40) - 1] {
                assert_eq!(decode(encode(p, s)), (p, s));
            }
        }
    }

    /// A deliberately broken queue that drops every 1000th item; the stress
    /// harness must catch it.
    struct LossyQueue {
        inner: std::sync::Mutex<VecDeque<u64>>,
        counter: AtomicU64,
    }
    impl ConcurrentQueue for LossyQueue {
        fn enqueue(&self, value: u64) {
            if self.counter.fetch_add(1, Ordering::Relaxed) % 1000 == 999 {
                return; // drop it
            }
            self.inner.lock().unwrap().push_back(value);
        }
        fn dequeue(&self) -> Option<u64> {
            self.inner.lock().unwrap().pop_front()
        }
        fn name(&self) -> &'static str {
            "lossy"
        }
        fn is_nonblocking(&self) -> bool {
            false
        }
    }

    #[test]
    fn stress_harness_detects_lost_items() {
        let q = LossyQueue {
            inner: Default::default(),
            counter: AtomicU64::new(0),
        };
        // The harness loops until `total` items are dequeued; with loss it
        // would hang, so test via the model checker instead, which fails fast.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model_check(&q, 42);
        }));
        assert!(result.is_err(), "harness must detect the lossy queue");
    }

    /// A LIFO "queue" — per-producer order checking must reject it.
    struct StackQueue {
        inner: std::sync::Mutex<Vec<u64>>,
    }
    impl ConcurrentQueue for StackQueue {
        fn enqueue(&self, value: u64) {
            self.inner.lock().unwrap().push(value);
        }
        fn dequeue(&self) -> Option<u64> {
            self.inner.lock().unwrap().pop()
        }
        fn name(&self) -> &'static str {
            "stack"
        }
        fn is_nonblocking(&self) -> bool {
            false
        }
    }

    #[test]
    fn stress_harness_detects_lifo_order() {
        let q = StackQueue {
            inner: Default::default(),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mpmc_stress(&q, 1, 1, 2_000);
        }));
        assert!(result.is_err(), "harness must reject LIFO order");
    }

    #[test]
    fn model_check_accepts_a_correct_queue() {
        struct GoodQueue(std::sync::Mutex<VecDeque<u64>>);
        impl ConcurrentQueue for GoodQueue {
            fn enqueue(&self, v: u64) {
                self.0.lock().unwrap().push_back(v);
            }
            fn dequeue(&self) -> Option<u64> {
                self.0.lock().unwrap().pop_front()
            }
            fn name(&self) -> &'static str {
                "good"
            }
            fn is_nonblocking(&self) -> bool {
                false
            }
        }
        let q = GoodQueue(Default::default());
        model_check(&q, 7);
        mpmc_stress(&q, 2, 2, 2_000);
    }

    #[test]
    fn batch_harnesses_accept_a_correct_queue() {
        struct GoodQueue(std::sync::Mutex<VecDeque<u64>>);
        impl ConcurrentQueue for GoodQueue {
            fn enqueue(&self, v: u64) {
                self.0.lock().unwrap().push_back(v);
            }
            fn dequeue(&self) -> Option<u64> {
                self.0.lock().unwrap().pop_front()
            }
            fn name(&self) -> &'static str {
                "good"
            }
            fn is_nonblocking(&self) -> bool {
                false
            }
        }
        let q = GoodQueue(Default::default());
        batch_model_check(&q, 11);
        mpmc_batch_stress(&q, 2, 2, 2_000, 16);
    }

    #[test]
    fn batch_stress_detects_lifo_order() {
        let q = StackQueue {
            inner: Default::default(),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mpmc_batch_stress(&q, 1, 1, 2_000, 8);
        }));
        assert!(result.is_err(), "batch harness must reject LIFO order");
    }
}
