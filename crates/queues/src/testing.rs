//! Shared test harnesses for queue implementations.
//!
//! Used by the unit tests of every queue in this crate, by `lcrq-core`'s
//! tests, and by the workspace integration tests. Not compiled out of tests
//! builds (it is ordinary code) so downstream crates can reuse it.

use crate::ConcurrentQueue;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Encodes a (producer id, sequence number) pair into a queue payload.
pub fn encode(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 40) | seq
}

/// Inverse of [`encode`].
pub fn decode(value: u64) -> (usize, u64) {
    ((value >> 40) as usize, value & ((1 << 40) - 1))
}

/// Multi-producer multi-consumer stress test.
///
/// `producers` threads each enqueue `per_producer` encoded items while
/// `consumers` threads dequeue until everything is drained. Verifies:
///
/// 1. every enqueued item is dequeued exactly once (no loss, no duplication);
/// 2. items from each producer are dequeued in that producer's enqueue order
///    (a necessary condition of FIFO linearizability that scales to large
///    histories, unlike full linearizability checking).
///
/// Panics on any violation.
pub fn mpmc_stress<Q: ConcurrentQueue>(
    queue: &Q,
    producers: usize,
    consumers: usize,
    per_producer: u64,
) {
    mpmc_stress_relaxed(queue, producers, consumers, per_producer, 0)
}

/// [`mpmc_stress`] generalized to relaxed queues (e.g. a sharded d-choice
/// front-end): exactly-once delivery stays mandatory, but within each
/// consumer's stream an item of producer `p` may overtake at most
/// `relaxation` of `p`'s earlier items. `relaxation == 0` is exactly the
/// strict FIFO check; pass the queue's rank-error bound for relaxed queues.
///
/// Panics on any violation.
pub fn mpmc_stress_relaxed<Q: ConcurrentQueue>(
    queue: &Q,
    producers: usize,
    consumers: usize,
    per_producer: u64,
    relaxation: u64,
) {
    assert!(producers > 0 && consumers > 0);
    let total = producers as u64 * per_producer;
    let dequeued = AtomicU64::new(0);
    let barrier = Barrier::new(producers + consumers);

    let barrier = &barrier;
    let dequeued = &dequeued;
    let all: Vec<Vec<u64>> = std::thread::scope(|s| {
        let mut consumer_handles = Vec::new();
        for p in 0..producers {
            s.spawn(move || {
                barrier.wait();
                for seq in 0..per_producer {
                    queue.enqueue(encode(p, seq));
                }
            });
        }
        for _ in 0..consumers {
            consumer_handles.push(s.spawn(move || {
                barrier.wait();
                let mut got = Vec::new();
                while dequeued.load(Ordering::Relaxed) < total {
                    match queue.dequeue() {
                        Some(v) => {
                            dequeued.fetch_add(1, Ordering::Relaxed);
                            got.push(v);
                        }
                        None => std::thread::yield_now(),
                    }
                }
                got
            }));
        }
        consumer_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    // 1. Exactly-once delivery.
    let mut seen: Vec<u64> = all.iter().flatten().copied().collect();
    assert_eq!(seen.len() as u64, total, "lost or duplicated items");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, total, "duplicated items");

    // 2. Per-producer order within each consumer's local stream, up to the
    // allowed relaxation. (The global interleaving across consumers is not
    // ordered, but any single consumer must observe each producer's items
    // in order — a consequence of queue linearizability — loosened here so
    // an item may overtake at most `relaxation` earlier same-producer
    // items.)
    for stream in &all {
        let mut max_seen: std::collections::HashMap<usize, u64> = Default::default();
        for &v in stream {
            let (p, seq) = decode(v);
            if let Some(&prev) = max_seen.get(&p) {
                // `>=` not `>`: distinct items of one producer never share a
                // seq (exactly-once is checked above), so the strict case
                // (relaxation 0) still demands monotonic order.
                assert!(
                    seq.saturating_add(relaxation) >= prev,
                    "consumer observed producer {p} out of order beyond the \
                     relaxation bound {relaxation}: {seq} after {prev}"
                );
            }
            let slot = max_seen.entry(p).or_insert(0);
            *slot = (*slot).max(seq);
        }
    }

    // Queue must now be empty.
    assert_eq!(queue.dequeue(), None, "queue should be drained");
}

/// Multi-producer multi-consumer stress test over the *batch* API.
///
/// Like [`mpmc_stress`], but producers move items with
/// [`enqueue_batch`](ConcurrentQueue::enqueue_batch) in chunks of
/// `batch` and consumers with
/// [`dequeue_batch`](ConcurrentQueue::dequeue_batch). Checks the same
/// properties — exactly-once delivery and per-producer order within each
/// consumer stream — which batch semantics must preserve (a batch is a
/// sequence of individual operations; see the trait docs).
///
/// Panics on any violation.
pub fn mpmc_batch_stress<Q: ConcurrentQueue>(
    queue: &Q,
    producers: usize,
    consumers: usize,
    per_producer: u64,
    batch: usize,
) {
    mpmc_batch_stress_relaxed(queue, producers, consumers, per_producer, batch, 0)
}

/// [`mpmc_batch_stress`] generalized to relaxed queues, with the same
/// `relaxation` parameter as [`mpmc_stress_relaxed`]: within each
/// consumer's stream an item may overtake at most `relaxation` earlier
/// items of the same producer. `relaxation == 0` is the strict check.
///
/// Panics on any violation.
pub fn mpmc_batch_stress_relaxed<Q: ConcurrentQueue>(
    queue: &Q,
    producers: usize,
    consumers: usize,
    per_producer: u64,
    batch: usize,
    relaxation: u64,
) {
    assert!(producers > 0 && consumers > 0 && batch > 0);
    let total = producers as u64 * per_producer;
    let dequeued = AtomicU64::new(0);
    let barrier = Barrier::new(producers + consumers);

    let barrier = &barrier;
    let dequeued = &dequeued;
    let all: Vec<Vec<u64>> = std::thread::scope(|s| {
        let mut consumer_handles = Vec::new();
        for p in 0..producers {
            s.spawn(move || {
                barrier.wait();
                let mut seq = 0u64;
                while seq < per_producer {
                    let n = (batch as u64).min(per_producer - seq);
                    let vals: Vec<u64> = (seq..seq + n).map(|i| encode(p, i)).collect();
                    queue.enqueue_batch(&vals);
                    seq += n;
                }
            });
        }
        for _ in 0..consumers {
            consumer_handles.push(s.spawn(move || {
                barrier.wait();
                let mut got = Vec::new();
                while dequeued.load(Ordering::Relaxed) < total {
                    let taken = queue.dequeue_batch(&mut got, batch);
                    if taken > 0 {
                        dequeued.fetch_add(taken as u64, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            }));
        }
        consumer_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    // 1. Exactly-once delivery.
    let mut seen: Vec<u64> = all.iter().flatten().copied().collect();
    assert_eq!(seen.len() as u64, total, "lost or duplicated items");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, total, "duplicated items");

    // 2. Per-producer order within each consumer's local stream, up to the
    // allowed relaxation.
    for stream in &all {
        let mut max_seen: std::collections::HashMap<usize, u64> = Default::default();
        for &v in stream {
            let (p, seq) = decode(v);
            if let Some(&prev) = max_seen.get(&p) {
                // `>=` not `>`: see mpmc_stress_relaxed.
                assert!(
                    seq.saturating_add(relaxation) >= prev,
                    "consumer observed producer {p} out of order beyond the \
                     relaxation bound {relaxation}: {seq} after {prev}"
                );
            }
            let slot = max_seen.entry(p).or_insert(0);
            *slot = (*slot).max(seq);
        }
    }

    let mut rest = Vec::new();
    assert_eq!(
        queue.dequeue_batch(&mut rest, 1),
        0,
        "queue should be drained"
    );
}

/// Sequential model check mixing scalar and batch operations against a
/// `VecDeque` model: batch enqueues must append in slice order, batch
/// dequeues must pop in FIFO order and report shortfalls only when the
/// model is also empty.
///
/// `seed` may be overridden with the `LCRQ_TEST_SEED` env var (see
/// [`lcrq_util::rng::test_seed`]); failures print the effective seed.
pub fn batch_model_check<Q: ConcurrentQueue>(queue: &Q, seed: u64) {
    let seed = lcrq_util::rng::test_seed(seed);
    let mut rng = lcrq_util::XorShift64Star::new(seed);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next_val = 0u64;
    for step in 0..3_000 {
        match rng.next_below(4) {
            0 => {
                queue.enqueue(next_val);
                model.push_back(next_val);
                next_val += 1;
            }
            1 => {
                let n = rng.next_below(40) as usize;
                let vals: Vec<u64> = (next_val..next_val + n as u64).collect();
                queue.enqueue_batch(&vals);
                model.extend(&vals);
                next_val += n as u64;
            }
            2 => {
                assert_eq!(
                    queue.dequeue(),
                    model.pop_front(),
                    "divergence from model at step {step} \
                     (reproduce with LCRQ_TEST_SEED={seed})"
                );
            }
            _ => {
                let max = rng.next_below(40) as usize;
                let mut out = Vec::new();
                let taken = queue.dequeue_batch(&mut out, max);
                assert_eq!(taken, out.len(), "step {step}: taken != out.len()");
                assert!(taken <= max, "step {step}: over-delivered");
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(
                        Some(*v),
                        model.pop_front(),
                        "divergence from model at step {step}, batch item {i} \
                         (reproduce with LCRQ_TEST_SEED={seed})"
                    );
                }
                if taken < max {
                    assert!(
                        model.is_empty(),
                        "step {step}: short batch but model holds items \
                         (reproduce with LCRQ_TEST_SEED={seed})"
                    );
                }
            }
        }
    }
    while let Some(expect) = model.pop_front() {
        assert_eq!(queue.dequeue(), Some(expect));
    }
    assert_eq!(queue.dequeue(), None);
}

/// Runs a single-threaded randomized operation sequence against the queue
/// and a `VecDeque` model, asserting identical observable behaviour.
///
/// `seed` may be overridden with the `LCRQ_TEST_SEED` env var (see
/// [`lcrq_util::rng::test_seed`]); failures print the effective seed.
pub fn model_check<Q: ConcurrentQueue>(queue: &Q, seed: u64) {
    let seed = lcrq_util::rng::test_seed(seed);
    let mut rng = lcrq_util::XorShift64Star::new(seed);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next_val = 0u64;
    for step in 0..10_000 {
        // Bias toward enqueues early, dequeues late, to sweep queue sizes.
        let enq_bias = if step < 5_000 { 60 } else { 40 };
        if rng.chance(enq_bias, 100) {
            queue.enqueue(next_val);
            model.push_back(next_val);
            next_val += 1;
        } else {
            assert_eq!(
                queue.dequeue(),
                model.pop_front(),
                "divergence from model at step {step} \
                 (reproduce with LCRQ_TEST_SEED={seed})"
            );
        }
    }
    while let Some(expect) = model.pop_front() {
        assert_eq!(queue.dequeue(), Some(expect));
    }
    assert_eq!(queue.dequeue(), None);
}

/// Sequential randomized check for *relaxed* queues against a `Vec` model:
/// every dequeued value must be one of the oldest `window + 1` pending
/// elements (rank error ≤ `window`), `None` is only legal when the model
/// is empty, and nothing may be lost, duplicated, or invented.
/// `window == 0` is strict sequential FIFO.
///
/// `seed` may be overridden with the `LCRQ_TEST_SEED` env var (see
/// [`lcrq_util::rng::test_seed`]); failures print the effective seed.
pub fn relaxed_model_check<Q: ConcurrentQueue>(queue: &Q, seed: u64, window: usize) {
    let seed = lcrq_util::rng::test_seed(seed);
    let mut rng = lcrq_util::XorShift64Star::new(seed);
    let mut model: Vec<u64> = Vec::new();
    let mut next_val = 0u64;
    let take = |model: &mut Vec<u64>, got: Option<u64>, step: usize| match got {
        Some(v) => {
            let pos = model.iter().position(|&m| m == v).unwrap_or_else(|| {
                panic!(
                    "step {step}: dequeued {v} which is not pending \
                     (reproduce with LCRQ_TEST_SEED={seed})"
                )
            });
            assert!(
                pos <= window,
                "step {step}: dequeued {v} at rank {pos} > window {window} \
                 (reproduce with LCRQ_TEST_SEED={seed})"
            );
            model.remove(pos);
        }
        None => assert!(
            model.is_empty(),
            "step {step}: reported empty with {} pending \
             (reproduce with LCRQ_TEST_SEED={seed})",
            model.len()
        ),
    };
    for step in 0..10_000 {
        let enq_bias = if step < 5_000 { 60 } else { 40 };
        if rng.chance(enq_bias, 100) {
            queue.enqueue(next_val);
            model.push(next_val);
            next_val += 1;
        } else {
            take(&mut model, queue.dequeue(), step);
        }
    }
    while !model.is_empty() {
        take(&mut model, queue.dequeue(), usize::MAX);
    }
    assert_eq!(queue.dequeue(), None);
}

/// Drains a queue, returning everything left in it, in order.
pub fn drain<Q: ConcurrentQueue>(queue: &Q) -> Vec<u64> {
    let mut out = Vec::new();
    while let Some(v) = queue.dequeue() {
        out.push(v);
    }
    out
}

/// Runs `threads` workers that each perform `pairs` enqueue/dequeue pairs —
/// the paper's benchmark workload shape — and asserts the queue is drained
/// at the end (every enqueue is matched by a successful dequeue eventually).
pub fn pairs_smoke<Q: ConcurrentQueue>(queue: &Q, threads: usize, pairs: u64) {
    let barrier = Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                barrier.wait();
                let mut missed = 0u64;
                for i in 0..pairs {
                    queue.enqueue(encode(t, i));
                    if queue.dequeue().is_none() {
                        missed += 1;
                    }
                }
                // Make up for empty dequeues so the queue drains.
                while missed > 0 {
                    if queue.dequeue().is_some() {
                        missed -= 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    assert_eq!(queue.dequeue(), None, "queue should be drained");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for p in [0usize, 1, 7, 100] {
            for s in [0u64, 1, 1 << 20, (1 << 40) - 1] {
                assert_eq!(decode(encode(p, s)), (p, s));
            }
        }
    }

    /// A deliberately broken queue that drops every 1000th item; the stress
    /// harness must catch it.
    struct LossyQueue {
        inner: std::sync::Mutex<VecDeque<u64>>,
        counter: AtomicU64,
    }
    impl ConcurrentQueue for LossyQueue {
        fn enqueue(&self, value: u64) {
            if self.counter.fetch_add(1, Ordering::Relaxed) % 1000 == 999 {
                return; // drop it
            }
            self.inner.lock().unwrap().push_back(value);
        }
        fn dequeue(&self) -> Option<u64> {
            self.inner.lock().unwrap().pop_front()
        }
        fn name(&self) -> &'static str {
            "lossy"
        }
        fn is_nonblocking(&self) -> bool {
            false
        }
    }

    #[test]
    fn stress_harness_detects_lost_items() {
        let q = LossyQueue {
            inner: Default::default(),
            counter: AtomicU64::new(0),
        };
        // The harness loops until `total` items are dequeued; with loss it
        // would hang, so test via the model checker instead, which fails fast.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model_check(&q, 42);
        }));
        assert!(result.is_err(), "harness must detect the lossy queue");
    }

    /// A LIFO "queue" — per-producer order checking must reject it.
    struct StackQueue {
        inner: std::sync::Mutex<Vec<u64>>,
    }
    impl ConcurrentQueue for StackQueue {
        fn enqueue(&self, value: u64) {
            self.inner.lock().unwrap().push(value);
        }
        fn dequeue(&self) -> Option<u64> {
            self.inner.lock().unwrap().pop()
        }
        fn name(&self) -> &'static str {
            "stack"
        }
        fn is_nonblocking(&self) -> bool {
            false
        }
    }

    #[test]
    fn stress_harness_detects_lifo_order() {
        let q = StackQueue {
            inner: Default::default(),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mpmc_stress(&q, 1, 1, 2_000);
        }));
        assert!(result.is_err(), "harness must reject LIFO order");
    }

    #[test]
    fn model_check_accepts_a_correct_queue() {
        struct GoodQueue(std::sync::Mutex<VecDeque<u64>>);
        impl ConcurrentQueue for GoodQueue {
            fn enqueue(&self, v: u64) {
                self.0.lock().unwrap().push_back(v);
            }
            fn dequeue(&self) -> Option<u64> {
                self.0.lock().unwrap().pop_front()
            }
            fn name(&self) -> &'static str {
                "good"
            }
            fn is_nonblocking(&self) -> bool {
                false
            }
        }
        let q = GoodQueue(Default::default());
        model_check(&q, 7);
        mpmc_stress(&q, 2, 2, 2_000);
    }

    #[test]
    fn batch_harnesses_accept_a_correct_queue() {
        struct GoodQueue(std::sync::Mutex<VecDeque<u64>>);
        impl ConcurrentQueue for GoodQueue {
            fn enqueue(&self, v: u64) {
                self.0.lock().unwrap().push_back(v);
            }
            fn dequeue(&self) -> Option<u64> {
                self.0.lock().unwrap().pop_front()
            }
            fn name(&self) -> &'static str {
                "good"
            }
            fn is_nonblocking(&self) -> bool {
                false
            }
        }
        let q = GoodQueue(Default::default());
        batch_model_check(&q, 11);
        mpmc_batch_stress(&q, 2, 2, 2_000, 16);
    }

    /// A 1-relaxed queue: alternates between dequeuing the second-oldest
    /// (when two or more are pending) and the oldest, so the head element is
    /// overtaken at most once before it leaves — rank error and per-element
    /// lateness both exactly 1. (A queue that *always* took the second-oldest
    /// would starve the head indefinitely: bounded rank error per dequeue,
    /// unbounded lateness — the relaxed stress harness must reject that.)
    struct AltSkewQueue(std::sync::Mutex<(VecDeque<u64>, bool)>);
    impl ConcurrentQueue for AltSkewQueue {
        fn enqueue(&self, value: u64) {
            self.0.lock().unwrap().0.push_back(value);
        }
        fn dequeue(&self) -> Option<u64> {
            let mut g = self.0.lock().unwrap();
            let (q, skew) = &mut *g;
            let got = if *skew && q.len() >= 2 {
                q.remove(1)
            } else {
                q.pop_front()
            };
            if got.is_some() {
                *skew = !*skew;
            }
            got
        }
        fn name(&self) -> &'static str {
            "alt-skew"
        }
        fn is_nonblocking(&self) -> bool {
            false
        }
    }

    fn alt_skew() -> AltSkewQueue {
        AltSkewQueue(std::sync::Mutex::new((VecDeque::new(), true)))
    }

    #[test]
    fn relaxed_harnesses_accept_within_bound() {
        relaxed_model_check(&alt_skew(), 21, 1);
        mpmc_stress_relaxed(&alt_skew(), 2, 2, 2_000, 1);
        mpmc_batch_stress_relaxed(&alt_skew(), 2, 2, 2_000, 8, 1);
    }

    #[test]
    fn relaxed_harnesses_reject_beyond_bound() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            relaxed_model_check(&alt_skew(), 22, 0);
        }));
        assert!(result.is_err(), "rank-1 queue must fail a window-0 check");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mpmc_stress_relaxed(&alt_skew(), 1, 1, 2_000, 0);
        }));
        assert!(
            result.is_err(),
            "rank-1 queue must fail a strict stress run"
        );
    }

    #[test]
    fn relaxed_model_check_rejects_invented_values() {
        struct InventQueue;
        impl ConcurrentQueue for InventQueue {
            fn enqueue(&self, _: u64) {}
            fn dequeue(&self) -> Option<u64> {
                Some(0xDEAD)
            }
            fn name(&self) -> &'static str {
                "invent"
            }
            fn is_nonblocking(&self) -> bool {
                true
            }
        }
        let result = std::panic::catch_unwind(|| {
            relaxed_model_check(&InventQueue, 23, 1_000_000);
        });
        assert!(result.is_err(), "must reject values never enqueued");
    }

    #[test]
    fn batch_stress_detects_lifo_order() {
        let q = StackQueue {
            inner: Default::default(),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mpmc_batch_stress(&q, 1, 1, 2_000, 8);
        }));
        assert!(result.is_err(), "batch harness must reject LIFO order");
    }
}
