//! The Baskets queue of Hoffman, Shalev & Shavit (OPODIS 2007), another
//! related-work MS descendant from the paper's §2 ([15]).
//!
//! Idea: when several enqueuers contend on the same tail, their operations
//! are concurrent, so their relative order is *free*. A loser of the
//! `tail.next` CAS does not retry at the new tail — it inserts itself into
//! the "basket" at the same position (prepending to `tail.next`), turning
//! the MS queue's retry storm into useful insertions. Dequeue logically
//! deletes by *marking* the `next` pointer (LSB tag) and physically
//! advances `head` in batches once a deleted chain grows past
//! [`MAX_HOPS`] — amortizing the head CAS just like the basket amortizes
//! the tail CAS.
//!
//! The paper's verdict still holds, though: every operation ends in a CAS
//! that can fail, so under contention it wastes work where LCRQ's F&A
//! cannot — this implementation exists to demonstrate exactly that.
//!
//! Reclamation: hazard pointers. Marked (logically deleted) nodes are only
//! *retired* by the `free_chain` that swings `head` past them, so a walker
//! that re-validates `head` after publishing its hazard can never touch a
//! freed node (same liveness argument as the optimistic queue's
//! `fix_list`).

use core::sync::atomic::{AtomicUsize, Ordering};

use lcrq_hazard::Domain;
use lcrq_util::metrics::{self, Event};
use lcrq_util::CachePadded;

/// Physically advance `head` once this many logically deleted nodes have
/// accumulated (the original paper's batching constant).
const MAX_HOPS: usize = 3;

const MARK: usize = 1;

#[inline]
fn ptr_of(word: usize) -> *mut Node {
    (word & !MARK) as *mut Node
}

#[inline]
fn is_marked(word: usize) -> bool {
    word & MARK != 0
}

#[inline]
fn pack(ptr: *mut Node, marked: bool) -> usize {
    ptr as usize | usize::from(marked)
}

struct Node {
    value: u64,
    /// Packed (successor pointer | deleted mark).
    next: AtomicUsize,
}

impl Node {
    fn alloc(value: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            value,
            next: AtomicUsize::new(0),
        }))
    }
}

const HP_HEAD: usize = 0;
const HP_TAIL: usize = 1;
const HP_ITER: usize = 2;
const HP_NEXT: usize = 3;

/// The baskets lock-free FIFO queue.
pub struct BasketsQueue {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    domain: Domain,
}

// SAFETY: all shared mutation is via atomics; reclamation via hazard ptrs.
unsafe impl Send for BasketsQueue {}
unsafe impl Sync for BasketsQueue {}

/// Counted CAS on a packed pointer word.
#[inline]
fn cas_word(a: &AtomicUsize, old: usize, new: usize) -> bool {
    metrics::inc(Event::CasAttempt);
    if a.compare_exchange(old, new, Ordering::SeqCst, Ordering::Acquire)
        .is_ok()
    {
        true
    } else {
        metrics::inc(Event::CasFailure);
        false
    }
}

impl BasketsQueue {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = Node::alloc(0);
        Self {
            head: CachePadded::new(AtomicUsize::new(dummy as usize)),
            tail: CachePadded::new(AtomicUsize::new(dummy as usize)),
            domain: Domain::new(),
        }
    }

    /// Protects the node currently stored in the packed word `src` in
    /// hazard `slot`, returning the validated word.
    fn protect_word(&self, slot: usize, src: &AtomicUsize) -> usize {
        let mut word = src.load(Ordering::Acquire);
        loop {
            self.domain.protect_raw(slot, ptr_of(word) as *mut ());
            let again = src.load(Ordering::SeqCst);
            if again == word {
                return word;
            }
            word = again;
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: u64) {
        let node = Node::alloc(value);
        loop {
            let tail_word = self.protect_word(HP_TAIL, &self.tail);
            let tail = ptr_of(tail_word);
            // SAFETY: tail is hazard-protected.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if ptr_of(next).is_null() && !is_marked(next) {
                // SAFETY: node unpublished.
                unsafe { (*node).next.store(0, Ordering::Relaxed) };
                lcrq_util::adversary::preempt_point(); // read→CAS window
                                                       // SAFETY: tail protected.
                if cas_word(unsafe { &(*tail).next }, 0, pack(node, false)) {
                    let _ = cas_word(&self.tail, tail_word, pack(node, false));
                    self.domain.clear(HP_TAIL);
                    return;
                }
                // CAS failed: the basket! Everyone who lost this race is
                // concurrent — prepend into tail.next until the window
                // closes (tail moved or chain got marked).
                loop {
                    if self.tail.load(Ordering::SeqCst) != tail_word {
                        break; // window closed: retry from the new tail
                    }
                    // SAFETY: tail still protected (self.tail unchanged).
                    let next = unsafe { (*tail).next.load(Ordering::Acquire) };
                    if is_marked(next) {
                        break; // a dequeuer got here; retry from scratch
                    }
                    // SAFETY: node unpublished.
                    unsafe { (*node).next.store(next, Ordering::Relaxed) };
                    // SAFETY: tail protected.
                    if cas_word(unsafe { &(*tail).next }, next, pack(node, false)) {
                        self.domain.clear(HP_TAIL);
                        return;
                    }
                }
            } else if !ptr_of(next).is_null() {
                // Tail lags; help advance it to its successor.
                let _ = cas_word(&self.tail, tail_word, pack(ptr_of(next), false));
            }
        }
    }

    /// Removes the oldest value, or `None` if empty.
    ///
    /// A mark on `X.next` means *`X`'s successor is logically deleted* (the
    /// original paper's convention): the dequeuer that deleted it won the
    /// `CAS(X.next, (succ, 0), (succ, 1))`.
    pub fn dequeue(&self) -> Option<u64> {
        'restart: loop {
            let head_word = self.protect_word(HP_HEAD, &self.head);
            let head = ptr_of(head_word);
            let tail_word = self.protect_word(HP_TAIL, &self.tail);
            let tail = ptr_of(tail_word);
            // SAFETY: head protected.
            let mut next = unsafe { (*head).next.load(Ordering::Acquire) };
            if self.head.load(Ordering::SeqCst) != head_word {
                continue;
            }
            if head == tail && ptr_of(next).is_null() {
                self.clear_all();
                return None;
            }
            // Walk past the logically deleted prefix (marked links).
            let mut iter = head; // protected by HP_HEAD
            let mut hops = 0usize;
            while is_marked(next) && iter != tail {
                // Advance: protect the successor, then re-validate head —
                // deleted nodes are only retired by a free_chain that moves
                // head, so "head unchanged" proves the successor is live.
                let succ = ptr_of(next);
                debug_assert!(!succ.is_null(), "a marked link has a successor");
                let slot = if hops.is_multiple_of(2) {
                    HP_ITER
                } else {
                    HP_NEXT
                };
                self.domain.protect_raw(slot, succ as *mut ());
                if self.head.load(Ordering::SeqCst) != head_word {
                    continue 'restart;
                }
                iter = succ;
                // SAFETY: iter protected + head-validated above.
                next = unsafe { (*iter).next.load(Ordering::Acquire) };
                hops += 1;
            }
            let candidate = ptr_of(next);
            if candidate.is_null() {
                // The deleted prefix runs out with no live successor: the
                // queue is empty. Physically reclaim the prefix first.
                if iter != head {
                    self.free_chain(head_word, iter);
                }
                self.clear_all();
                return None;
            }
            if iter == tail {
                if is_marked(next) {
                    // The deleted prefix continues past the lagging tail
                    // pointer; help tail forward and retry.
                    let _ = cas_word(&self.tail, tail_word, pack(candidate, false));
                    continue;
                }
                // Live successor beyond tail: an enqueue is half done; help.
                let _ = cas_word(&self.tail, tail_word, pack(candidate, false));
                continue;
            }
            // `candidate` is the oldest live node: read its value, then
            // logically delete it by marking the link that points at it.
            let slot = if hops.is_multiple_of(2) {
                HP_ITER
            } else {
                HP_NEXT
            };
            self.domain.protect_raw(slot, candidate as *mut ());
            if self.head.load(Ordering::SeqCst) != head_word {
                continue 'restart;
            }
            // SAFETY: candidate protected + head-validated.
            let value = unsafe { (*candidate).value };
            lcrq_util::adversary::preempt_point(); // read→CAS window
                                                   // SAFETY: iter protected throughout the walk.
            if cas_word(
                unsafe { &(*iter).next },
                pack(candidate, false),
                pack(candidate, true),
            ) {
                if hops >= MAX_HOPS {
                    // Batch-advance: `candidate` (just deleted) becomes the
                    // new dummy; everything before it is retired.
                    self.free_chain(head_word, candidate);
                }
                self.clear_all();
                return Some(value);
            }
        }
    }

    /// Swings `head` from `head_word` to `new_head` and retires every node
    /// in between (exclusive of `new_head`). No-op if the CAS loses.
    fn free_chain(&self, head_word: usize, new_head: *mut Node) {
        if !cas_word(&self.head, head_word, pack(new_head, false)) {
            return;
        }
        let mut cur = ptr_of(head_word);
        while cur != new_head {
            // SAFETY: the whole span became unreachable when our CAS
            // succeeded; we read `next` before retiring `cur` (retire may
            // trigger an immediate scan+free).
            let next = unsafe { ptr_of((*cur).next.load(Ordering::Acquire)) };
            // SAFETY: unreachable, retired exactly once (by the CAS winner).
            unsafe { self.domain.retire(cur) };
            cur = next;
        }
    }

    fn clear_all(&self) {
        for slot in [HP_HEAD, HP_TAIL, HP_ITER, HP_NEXT] {
            self.domain.clear(slot);
        }
    }
}

impl Default for BasketsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for BasketsQueue {
    fn drop(&mut self) {
        // Free the reachable chain from head (dummy + live + trailing
        // marked nodes); already-retired nodes belong to the domain.
        let mut cur = ptr_of(*self.head.get_mut());
        while !cur.is_null() {
            // SAFETY: exclusive access in drop.
            let node = unsafe { Box::from_raw(cur) };
            cur = ptr_of(node.next.load(Ordering::Relaxed));
        }
    }
}

impl crate::ConcurrentQueue for BasketsQueue {
    fn enqueue(&self, value: u64) {
        BasketsQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        BasketsQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "baskets"
    }
    fn is_nonblocking(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn empty_queue_returns_none() {
        let q = BasketsQueue::new();
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = BasketsQueue::new();
        for i in 0..500 {
            q.enqueue(i);
        }
        for i in 0..500 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn logical_deletion_then_refill() {
        let q = BasketsQueue::new();
        for round in 0..200u64 {
            // Few items (< MAX_HOPS) so dequeues leave marked chains behind.
            q.enqueue(round);
            q.enqueue(round + 1_000);
            assert_eq!(q.dequeue(), Some(round));
            assert_eq!(q.dequeue(), Some(round + 1_000));
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    fn marked_chain_batching_reclaims() {
        // Enough traffic that free_chain runs many times.
        let q = BasketsQueue::new();
        for i in 0..10_000u64 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_stress() {
        let q = BasketsQueue::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn spsc_stress() {
        let q = BasketsQueue::new();
        testing::mpmc_stress(&q, 1, 1, 20_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&BasketsQueue::new(), 0xBA);
    }

    #[test]
    fn stress_under_adversarial_preemption_exercises_baskets() {
        // Preemption inside the read→CAS windows produces the tail-CAS
        // failures that send enqueuers down the basket-insertion path.
        lcrq_util::adversary::set_preempt_ppm(5_000);
        let q = BasketsQueue::new();
        testing::mpmc_stress(&q, 3, 3, 2_000);
        lcrq_util::adversary::set_preempt_ppm(0);
    }

    #[test]
    fn drop_with_items_and_marked_prefix_is_clean() {
        let q = BasketsQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for _ in 0..10 {
            let _ = q.dequeue(); // leaves marked nodes (< MAX_HOPS batches)
        }
        drop(q);
    }
}
