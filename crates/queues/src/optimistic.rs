//! The optimistic FIFO queue of Ladan-Mozes & Shavit (DISC 2004), one of
//! the MS-queue descendants the paper's related work cites as "still
//! suffering from the CAS retry problem" (§2, [17]).
//!
//! Idea: the MS queue needs **two** CASes per enqueue (link `next`, swing
//! `tail`); the optimistic queue needs **one** (swing `tail`), because the
//! list is singly linked *backwards* — each new node points at the previous
//! tail via `next` — and the forward `prev` pointers dequeuers need are
//! written *optimistically* after the CAS, without synchronization. A
//! dequeuer that finds a missing/stale `prev` chain repairs it by walking
//! the immutable `next` chain from the tail (`fix_list`).
//!
//! Memory reclamation uses hazard pointers. The subtle part is `fix_list`,
//! which dereferences (and writes `prev` into) interior nodes:
//!
//! * `next` pointers are immutable once a node is published, so the walk
//!   itself never chases a mutating pointer;
//! * every node carries a `seq` number (`tail.seq + 1` at enqueue), and a
//!   node is only ever retired when `head` moves past it — so *all retired
//!   nodes have `seq <= head.seq`*;
//! * the walk therefore protects each step's node, then re-validates that
//!   `head` has not moved: if `head` is unchanged, every node with
//!   `seq > head.seq` is still live, and each walked node's seq is known
//!   without dereferencing it (`cur.seq - 1`). If `head` moved, the walk
//!   aborts before touching the node.

use core::sync::atomic::{AtomicPtr, Ordering};

use lcrq_atomic::ops::ptr::cas_ptr;
use lcrq_hazard::Domain;
use lcrq_util::CachePadded;

struct Node {
    value: u64,
    /// Position in the queue's lifetime order; immutable after publish.
    seq: u64,
    /// Toward *older* nodes (the previous tail); immutable after publish.
    next: AtomicPtr<Node>,
    /// Toward *newer* nodes; written optimistically, repaired by fix_list.
    prev: AtomicPtr<Node>,
}

const HP_HEAD: usize = 0;
const HP_TAIL: usize = 1;
const HP_FIRST: usize = 2;
const HP_WALK: usize = 3;

/// The Ladan-Mozes–Shavit optimistic lock-free FIFO queue.
pub struct OptimisticQueue {
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    domain: Domain,
}

// SAFETY: all shared mutation is via atomics; reclamation via hazard ptrs.
unsafe impl Send for OptimisticQueue {}
unsafe impl Sync for OptimisticQueue {}

impl OptimisticQueue {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(Node {
            value: 0,
            seq: 0,
            next: AtomicPtr::new(core::ptr::null_mut()),
            prev: AtomicPtr::new(core::ptr::null_mut()),
        }));
        Self {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            domain: Domain::new(),
        }
    }

    /// Appends `value` with a single CAS on `tail`.
    pub fn enqueue(&self, value: u64) {
        let node = Box::into_raw(Box::new(Node {
            value,
            seq: 0,
            next: AtomicPtr::new(core::ptr::null_mut()),
            prev: AtomicPtr::new(core::ptr::null_mut()),
        }));
        loop {
            let tail = self.domain.protect(HP_TAIL, &self.tail);
            // SAFETY: tail is hazard-protected (validated by protect()).
            let tail_seq = unsafe { (*tail).seq };
            // SAFETY: node is unpublished; these writes are pre-publication.
            unsafe {
                (*node).next.store(tail, Ordering::Relaxed);
                (*node).seq = tail_seq + 1;
            }
            lcrq_util::adversary::preempt_point(); // inside the read→CAS window
            if cas_ptr(&self.tail, tail, node).is_ok() {
                // Optimistic prev link; a missing link is repaired by
                // fix_list. SAFETY: tail is still hazard-protected.
                unsafe { (*tail).prev.store(node, Ordering::Release) };
                self.domain.clear(HP_TAIL);
                return;
            }
        }
    }

    /// Removes the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let head = self.domain.protect(HP_HEAD, &self.head);
            let tail = self.domain.protect(HP_TAIL, &self.tail);
            if head == tail {
                // Unlike the MS queue, tail never lags (it is CASed
                // directly), so head == tail means linearizably empty.
                self.domain.clear(HP_HEAD);
                self.domain.clear(HP_TAIL);
                return None;
            }
            // SAFETY: head is hazard-protected.
            let head_seq = unsafe { (*head).seq };
            let first = unsafe { (*head).prev.load(Ordering::Acquire) };
            // Protect the candidate, then re-validate via head: if head is
            // unchanged, nothing with seq > head_seq has been retired, and
            // `first` (seq head_seq + 1, when the chain is intact) is live.
            self.domain.protect_raw(HP_FIRST, first as *mut ());
            if self.head.load(Ordering::SeqCst) != head {
                continue;
            }
            // SAFETY: `first` may be null or stale; check before any use.
            let chain_ok = !first.is_null() && unsafe { (*first).seq } == head_seq + 1;
            if !chain_ok {
                self.fix_list(head, head_seq, tail);
                continue;
            }
            lcrq_util::adversary::preempt_point(); // inside the read→CAS window
                                                   // SAFETY: first is protected + validated above.
            let value = unsafe { (*first).value };
            if cas_ptr(&self.head, head, first).is_ok() {
                self.domain.clear(HP_HEAD);
                self.domain.clear(HP_TAIL);
                self.domain.clear(HP_FIRST);
                // SAFETY: old dummy is unreachable from the queue; hazard
                // retirement defers the free.
                unsafe { self.domain.retire(head) };
                return Some(value);
            }
        }
    }

    /// Repairs the `prev` chain between `tail` and `head` by walking the
    /// immutable `next` chain. Aborts (safely) as soon as `head` moves.
    fn fix_list(&self, head: *mut Node, head_seq: u64, tail: *mut Node) {
        let mut cur = tail; // protected by HP_TAIL
                            // SAFETY: tail is hazard-protected.
        let mut cur_seq = unsafe { (*cur).seq };
        while cur_seq > head_seq + 1 {
            // SAFETY: cur is protected (HP_TAIL initially, HP_WALK after);
            // next pointers are immutable after publish.
            let nxt = unsafe { (*cur).next.load(Ordering::Acquire) };
            debug_assert!(!nxt.is_null(), "interior next chain is complete");
            // nxt.seq == cur_seq - 1 *by construction* — known without
            // dereferencing. Publish the hazard, then validate liveness:
            // retired nodes all have seq <= current head.seq, so if head is
            // still `head` (seq head_seq < nxt.seq), nxt is live.
            self.domain.protect_raw(HP_FIRST, nxt as *mut ());
            if self.head.load(Ordering::SeqCst) != head {
                return; // a dequeue advanced head; its fix or ours is moot
            }
            // SAFETY: nxt is protected + proven live; writing prev on a
            // live node is safe even if it is dequeued concurrently.
            unsafe { (*nxt).prev.store(cur, Ordering::Release) };
            // Move the walk protection into HP_WALK so HP_FIRST is free for
            // the next step's candidate.
            self.domain.protect_raw(HP_WALK, nxt as *mut ());
            cur = nxt;
            cur_seq -= 1;
        }
        self.domain.clear(HP_WALK);
    }
}

impl Default for OptimisticQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for OptimisticQueue {
    fn drop(&mut self) {
        // The next chain from tail runs through *retired* nodes too (they
        // are never unlinked): free only the live span [tail ..= head]; the
        // older, retired nodes belong to the hazard domain.
        let head = *self.head.get_mut();
        let mut cur = *self.tail.get_mut();
        loop {
            // SAFETY: exclusive access in drop; `cur` is live (between tail
            // and head inclusive).
            let node = unsafe { Box::from_raw(cur) };
            if cur == head {
                break;
            }
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

impl crate::ConcurrentQueue for OptimisticQueue {
    fn enqueue(&self, value: u64) {
        OptimisticQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        OptimisticQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "optimistic"
    }
    fn is_nonblocking(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn empty_queue_returns_none() {
        let q = OptimisticQueue::new();
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = OptimisticQueue::new();
        for i in 0..500 {
            q.enqueue(i);
        }
        for i in 0..500 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn interleaved_enq_deq() {
        let q = OptimisticQueue::new();
        for round in 0..300 {
            assert_eq!(q.dequeue(), None);
            q.enqueue(round);
            q.enqueue(round + 1000);
            assert_eq!(q.dequeue(), Some(round));
            assert_eq!(q.dequeue(), Some(round + 1000));
        }
    }

    #[test]
    fn single_cas_per_uncontended_enqueue() {
        use lcrq_util::metrics::{self, Event};
        let q = OptimisticQueue::new();
        q.enqueue(0); // warm the dummy path
        metrics::flush();
        let before = metrics::snapshot();
        for i in 0..100 {
            q.enqueue(i);
        }
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        assert_eq!(
            d.get(Event::CasAttempt),
            100,
            "the optimistic queue's selling point: one CAS per enqueue"
        );
        assert_eq!(d.get(Event::CasFailure), 0);
    }

    #[test]
    fn mpmc_stress() {
        let q = OptimisticQueue::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn spsc_stress() {
        let q = OptimisticQueue::new();
        testing::mpmc_stress(&q, 1, 1, 20_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&OptimisticQueue::new(), 0x0C);
    }

    #[test]
    fn stress_under_adversarial_preemption_exercises_fix_list() {
        // Preemption between the tail CAS and the prev store leaves broken
        // prev chains that dequeuers must repair via fix_list.
        lcrq_util::adversary::set_preempt_ppm(5_000);
        let q = OptimisticQueue::new();
        testing::mpmc_stress(&q, 3, 3, 2_000);
        lcrq_util::adversary::set_preempt_ppm(0);
    }

    #[test]
    fn drop_with_items_is_clean() {
        let q = OptimisticQueue::new();
        for i in 0..1_000 {
            q.enqueue(i);
        }
    }
}
