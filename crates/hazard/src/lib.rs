//! Hazard-pointer safe memory reclamation (Michael, IEEE TPDS 2004).
//!
//! The LCRQ paper reclaims retired CRQs with hazard pointers (§4.2, "Memory
//! reclamation"): before dereferencing the queue's `head`/`tail` CRQ pointer
//! an operation publishes it in a thread-private hazard slot, issues a
//! memory fence, and re-reads the source pointer to validate. A retired
//! object is freed only when no published hazard slot contains it.
//!
//! This crate implements the scheme from scratch:
//!
//! * a [`Domain`] owns a lock-free Treiber list of per-thread records, each
//!   holding [`SLOTS_PER_THREAD`] hazard slots;
//! * threads acquire a record lazily on first use and release it (for reuse
//!   by future threads) when they exit;
//! * retired objects accumulate in a thread-local list and are reclaimed in
//!   batched *scans* once the list exceeds a threshold proportional to the
//!   number of live hazard slots — giving the amortized O(1) bound of the
//!   original paper;
//! * objects retired by exiting threads move to a domain *orphan* list that
//!   subsequent scans (or the final teardown) drain.
//!
//! Domain internals are reference-counted between the [`Domain`] handle and
//! every thread that used it, so there is no lifetime contract to violate:
//! dropping a `Domain` while worker threads are still parked is safe, and
//! all remaining retired objects are freed when the last user goes away.
//!
//! The MS-queue baseline and the LCRQ itself both reclaim through this
//! module, so baseline-vs-LCRQ comparisons pay the identical reclamation
//! cost, as in the paper's evaluation.

#![warn(missing_docs)]

use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use lcrq_util::metrics::{self, Event};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// Hazard slots per thread record. LCRQ needs one (the CRQ about to be
/// accessed); the MS queue needs two (a node and its successor); four leaves
/// headroom for composed structures.
pub const SLOTS_PER_THREAD: usize = 4;

struct Record {
    next: AtomicPtr<Record>,
    active: AtomicBool,
    slots: [AtomicPtr<()>; SLOTS_PER_THREAD],
}

impl Record {
    fn new() -> Self {
        Self {
            next: AtomicPtr::new(core::ptr::null_mut()),
            active: AtomicBool::new(true),
            slots: [const { AtomicPtr::new(core::ptr::null_mut()) }; SLOTS_PER_THREAD],
        }
    }
}

struct Retired {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// SAFETY: retired objects are `Send` by the `retire` bound; the raw pointer
// is owned exclusively by the retired list until dropped.
unsafe impl Send for Retired {}

struct Inner {
    head: AtomicPtr<Record>,
    /// Number of records ever allocated (monotone; records are reused).
    num_records: AtomicUsize,
    orphans: Mutex<Vec<Retired>>,
    id: u64,
}

// SAFETY: all shared state is atomics or a mutex.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // Only reachable when no thread entry and no Domain handle remain,
        // so every retired object is unreachable and every record is ours.
        let orphans = core::mem::take(&mut *self.orphans.lock().unwrap_or_else(|e| e.into_inner()));
        for r in orphans {
            // SAFETY: see above.
            unsafe { (r.drop_fn)(r.ptr) };
        }
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: we own the record list exclusively here.
            let rec = unsafe { Box::from_raw(cur) };
            cur = rec.next.load(Ordering::Relaxed);
        }
    }
}

/// A reclamation domain. Objects retired in a domain are freed only when no
/// hazard slot *of that domain* protects them.
///
/// Most users want [`Domain::global`]. A dedicated domain is useful in tests
/// so reclamation accounting is not shared with unrelated threads.
#[derive(Clone)]
pub struct Domain {
    inner: Arc<Inner>,
}

static DOMAIN_IDS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// One entry per domain this thread has touched.
    static THREAD_STATE: RefCell<Vec<ThreadEntry>> = const { RefCell::new(Vec::new()) };
}

struct ThreadEntry {
    inner: Arc<Inner>,
    record: *const Record,
    retired: Vec<Retired>,
}

impl Drop for ThreadEntry {
    fn drop(&mut self) {
        // SAFETY: `record` points into `inner`'s record list, which lives as
        // long as the Arc we hold.
        unsafe {
            let rec = &*self.record;
            for s in &rec.slots {
                s.store(core::ptr::null_mut(), Ordering::Release);
            }
            rec.active.store(false, Ordering::Release);
        }
        if !self.retired.is_empty() {
            self.inner
                .orphans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .append(&mut self.retired);
        }
    }
}

fn global_domain() -> &'static Domain {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<Domain> = OnceLock::new();
    GLOBAL.get_or_init(Domain::new)
}

impl Domain {
    /// Creates a fresh, empty domain.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                head: AtomicPtr::new(core::ptr::null_mut()),
                num_records: AtomicUsize::new(0),
                orphans: Mutex::new(Vec::new()),
                id: DOMAIN_IDS.fetch_add(1, Ordering::Relaxed) as u64,
            }),
        }
    }

    /// The process-wide default domain.
    pub fn global() -> &'static Domain {
        global_domain()
    }

    /// Reclamation batch threshold: scan when a thread has retired more than
    /// `2 * live slots + 16` objects.
    fn threshold(&self) -> usize {
        2 * self.inner.num_records.load(Ordering::Relaxed) * SLOTS_PER_THREAD + 16
    }

    fn acquire_record(inner: &Inner) -> *const Record {
        // Try to reuse an inactive record.
        let mut cur = inner.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records are never freed while `inner` is alive.
            let rec = unsafe { &*cur };
            if !rec.active.load(Ordering::Relaxed)
                && rec
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return cur;
            }
            cur = rec.next.load(Ordering::Acquire);
        }
        // Allocate and push a new record.
        let rec = Box::into_raw(Box::new(Record::new()));
        inner.num_records.fetch_add(1, Ordering::Relaxed);
        loop {
            let head = inner.head.load(Ordering::Acquire);
            // SAFETY: rec is uniquely owned until the successful CAS below.
            unsafe { (*rec).next.store(head, Ordering::Relaxed) };
            if inner
                .head
                .compare_exchange(head, rec, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return rec;
            }
        }
    }

    /// Runs `f` with this thread's entry for this domain, creating it on
    /// first use. Entries for domains whose every other user is gone are
    /// opportunistically cleaned up.
    fn with_entry<R>(&self, f: impl FnOnce(&mut ThreadEntry) -> R) -> R {
        THREAD_STATE.with(|state| {
            let mut state = state.borrow_mut();
            if let Some(pos) = state.iter().position(|e| e.inner.id == self.inner.id) {
                return f(&mut state[pos]);
            }
            // Purge entries whose domain has no other users: their retired
            // objects are unreachable, and dropping the entry (then the Arc)
            // frees everything.
            state.retain(|e| Arc::strong_count(&e.inner) > 1);
            state.push(ThreadEntry {
                inner: Arc::clone(&self.inner),
                record: Self::acquire_record(&self.inner),
                retired: Vec::new(),
            });
            let last = state.last_mut().unwrap();
            f(last)
        })
    }

    fn my_record(&self) -> &Record {
        let ptr = self.with_entry(|e| e.record);
        // SAFETY: records live as long as `inner`, which we hold.
        unsafe { &*ptr }
    }

    /// Publishes `ptr` in hazard `slot` of the calling thread, with
    /// sequentially consistent ordering so a subsequent validation re-read
    /// cannot be reordered before the publication.
    pub fn protect_raw(&self, slot: usize, ptr: *mut ()) {
        self.my_record().slots[slot].store(ptr, Ordering::SeqCst);
    }

    /// Protects the pointer currently stored in `src`: publish, fence,
    /// re-read, retry until stable. Returns the protected pointer, which is
    /// safe to dereference until [`clear`](Self::clear) (or the next
    /// `protect` on the same slot), provided objects are only freed via
    /// [`retire`](Self::retire) on this domain.
    pub fn protect<T>(&self, slot: usize, src: &AtomicPtr<T>) -> *mut T {
        let hazard = &self.my_record().slots[slot];
        let mut ptr = src.load(Ordering::Acquire);
        loop {
            hazard.store(ptr as *mut (), Ordering::SeqCst);
            // Fail point inside the publish→revalidate window. A `Stall`
            // here parks the thread *holding a published hazard* — the
            // adversary that inflates retired lists, which scans must
            // tolerate within the 2·records·slots+16 threshold.
            let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::HazardProtect);
            let again = src.load(Ordering::SeqCst);
            if again == ptr {
                return ptr;
            }
            ptr = again;
        }
    }

    /// Clears hazard `slot` of the calling thread.
    pub fn clear(&self, slot: usize) {
        self.my_record().slots[slot].store(core::ptr::null_mut(), Ordering::Release);
    }

    /// Retires a `Box`-allocated object: it will be dropped (via
    /// `Box::from_raw`) once no hazard slot protects it.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by `Box::into_raw`, must not be retired
    /// twice, and no new references to it may be created after this call
    /// (existing hazard-protected references remain valid).
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        unsafe fn drop_box<T>(p: *mut ()) {
            // SAFETY: `p` was created by Box::into_raw::<T> per retire's contract.
            unsafe { drop(Box::from_raw(p as *mut T)) };
        }
        // SAFETY: forwarded from retire's contract; drop_box reclaims the
        // allocation exactly once.
        unsafe { self.retire_with(ptr as *mut (), drop_box::<T>) }
    }

    /// Retires `ptr` with a custom reclaimer: `reclaim` runs exactly once,
    /// after no hazard slot protects `ptr` anymore. This generalizes
    /// [`retire`](Self::retire) (whose reclaimer is `Box::from_raw` + drop)
    /// to non-freeing dispositions such as scrubbing an object into a
    /// recycling pool.
    ///
    /// `reclaim` may run on any thread that happens to [`scan`](Self::scan)
    /// (including a thread dropping its last handle to the domain), so the
    /// pointee must be `Send`. Re-entrant `retire`/`retire_with` calls from
    /// inside `reclaim` are permitted: scans snapshot the retired list
    /// before invoking reclaimers.
    ///
    /// # Safety
    ///
    /// Same contract as [`retire`](Self::retire): `ptr` must not be retired
    /// twice and no new references may be created after this call. `reclaim`
    /// must assume full ownership of `ptr`.
    pub unsafe fn retire_with(&self, ptr: *mut (), reclaim: unsafe fn(*mut ())) {
        let threshold = self.threshold();
        let scan_now = self.with_entry(|e| {
            e.retired.push(Retired {
                ptr,
                drop_fn: reclaim,
            });
            e.retired.len() >= threshold
        });
        if scan_now {
            self.scan();
        }
    }

    /// Snapshot of every currently protected pointer, sorted.
    fn collect_hazards(&self) -> Vec<*mut ()> {
        let mut hazards = Vec::new();
        let mut cur = self.inner.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records are never freed while `inner` is alive.
            let rec = unsafe { &*cur };
            for s in &rec.slots {
                let p = s.load(Ordering::SeqCst);
                if !p.is_null() {
                    hazards.push(p);
                }
            }
            cur = rec.next.load(Ordering::Acquire);
        }
        hazards.sort_unstable();
        hazards
    }

    /// Attempts to reclaim retired objects (the calling thread's list plus
    /// any orphans). Returns the number of objects freed.
    pub fn scan(&self) -> usize {
        // Fail point before the hazard collection: a yield/stall here races
        // the snapshot against concurrent protect/retire traffic.
        let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::HazardScan);
        metrics::inc(Event::HazardScan);
        // Take ownership of this thread's retired list and the orphans.
        let mut candidates = self.with_entry(|e| core::mem::take(&mut e.retired));
        {
            let mut orphans = self.inner.orphans.lock().unwrap_or_else(|e| e.into_inner());
            candidates.append(&mut orphans);
        }
        if candidates.is_empty() {
            return 0;
        }
        let hazards = self.collect_hazards();
        let mut freed = 0;
        let mut kept = Vec::new();
        for r in candidates {
            if hazards.binary_search(&r.ptr).is_ok() {
                kept.push(r);
            } else {
                // SAFETY: no hazard slot protects r.ptr and retire()'s
                // contract guarantees no new references can appear.
                unsafe { (r.drop_fn)(r.ptr) };
                freed += 1;
            }
        }
        self.with_entry(|e| e.retired.append(&mut kept));
        freed
    }

    /// Repeatedly scans until nothing remains retired or no progress is
    /// made. Returns the number of objects freed. Useful in tests and at
    /// shutdown.
    pub fn eager_reclaim(&self) -> usize {
        let mut total = 0;
        loop {
            let freed = self.scan();
            total += freed;
            let remaining = self.with_entry(|e| e.retired.len());
            if freed == 0 || remaining == 0 {
                return total;
            }
        }
    }

    /// Number of objects the calling thread has retired in this domain that
    /// are not yet reclaimed (excludes other threads' lists and orphans).
    pub fn retired_count(&self) -> usize {
        self.with_entry(|e| e.retired.len())
    }

    /// Number of thread records ever created in this domain (records are
    /// reused, so this is the peak number of simultaneous user threads).
    pub fn record_count(&self) -> usize {
        self.inner.num_records.load(Ordering::Relaxed)
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Domain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Domain")
            .field("id", &self.inner.id)
            .field("records", &self.record_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A payload that counts drops, to prove objects are freed exactly once.
    struct Counted {
        drops: Arc<AtomicUsize>,
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counted(drops: &Arc<AtomicUsize>) -> *mut Counted {
        Box::into_raw(Box::new(Counted {
            drops: Arc::clone(drops),
        }))
    }

    #[test]
    fn unprotected_object_is_reclaimed_by_scan() {
        let d = Domain::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let p = counted(&drops);
        unsafe { d.retire(p) };
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(d.scan(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn protected_object_survives_scan_until_cleared() {
        let d = Domain::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let p = counted(&drops);
        let src = AtomicPtr::new(p);
        let got = d.protect(0, &src);
        assert_eq!(got, p);
        unsafe { d.retire(p) };
        assert_eq!(d.scan(), 0, "protected object must not be freed");
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        d.clear(0);
        assert_eq!(d.scan(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retire_with_runs_custom_reclaimer_once_protection_drops() {
        static RECLAIMED: AtomicUsize = AtomicUsize::new(0);
        unsafe fn stash(p: *mut ()) {
            RECLAIMED.fetch_add(1, Ordering::SeqCst);
            // SAFETY: p came from Box::into_raw::<u64> below.
            unsafe { drop(Box::from_raw(p as *mut u64)) };
        }
        let d = Domain::new();
        let p = Box::into_raw(Box::new(7u64));
        let src = AtomicPtr::new(p);
        d.protect(0, &src);
        unsafe { d.retire_with(p as *mut (), stash) };
        assert_eq!(d.scan(), 0, "protected object must not be reclaimed");
        assert_eq!(RECLAIMED.load(Ordering::SeqCst), 0);
        d.clear(0);
        assert_eq!(d.scan(), 1);
        assert_eq!(RECLAIMED.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn protect_revalidates_on_concurrent_change() {
        let d = Domain::new();
        let a = Box::into_raw(Box::new(1u64));
        let b = Box::into_raw(Box::new(2u64));
        let src = AtomicPtr::new(a);
        let got = d.protect(0, &src);
        assert_eq!(got, a);
        src.store(b, Ordering::SeqCst);
        let got2 = d.protect(0, &src);
        assert_eq!(got2, b);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn each_slot_is_independent() {
        let d = Domain::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let p0 = counted(&drops);
        let p1 = counted(&drops);
        d.protect_raw(0, p0 as *mut ());
        d.protect_raw(1, p1 as *mut ());
        unsafe {
            d.retire(p0);
            d.retire(p1);
        }
        assert_eq!(d.scan(), 0);
        d.clear(0);
        assert_eq!(d.scan(), 1, "only the unprotected object is freed");
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        d.clear(1);
        assert_eq!(d.scan(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn threshold_triggers_automatic_scan() {
        let d = Domain::new();
        let drops = Arc::new(AtomicUsize::new(0));
        // Register this thread (1 record) then exceed the threshold.
        d.protect_raw(0, core::ptr::null_mut());
        let threshold = d.threshold();
        for _ in 0..threshold + 4 {
            unsafe { d.retire(counted(&drops)) };
        }
        assert!(
            drops.load(Ordering::SeqCst) >= threshold,
            "automatic scan should have reclaimed the batch"
        );
    }

    #[test]
    fn exiting_thread_orphans_are_reclaimed() {
        let d = Domain::new();
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d2 = d.clone();
            let drops2 = Arc::clone(&drops);
            std::thread::spawn(move || {
                unsafe { d2.retire(counted(&drops2)) };
            })
            .join()
            .unwrap();
        }
        // The worker exited without scanning; its retired object moved to
        // the orphan list and must be reclaimable from here.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(d.scan(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn records_are_reused_across_threads() {
        let d = Domain::new();
        for _ in 0..8 {
            let d2 = d.clone();
            std::thread::spawn(move || {
                d2.protect_raw(0, core::ptr::null_mut());
            })
            .join()
            .unwrap();
        }
        // Sequential threads release their record before the next acquires:
        // the domain should not have ballooned to 8 records.
        assert_eq!(d.record_count(), 1);
    }

    #[test]
    fn concurrent_threads_get_distinct_records() {
        let d = Domain::new();
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let d = d.clone();
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    d.protect_raw(0, (i + 1) as *mut ());
                    b.wait(); // all four hold a record simultaneously
                    d.clear(0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.record_count(), 4);
    }

    #[test]
    fn dropping_domain_with_orphans_frees_them() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d = Domain::new();
            let d2 = d.clone();
            let drops2 = Arc::clone(&drops);
            std::thread::spawn(move || unsafe { d2.retire(counted(&drops2)) })
                .join()
                .unwrap();
            // Orphan exists; now drop the only handle.
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "Inner::drop must free orphans"
        );
    }

    #[test]
    fn dropping_domain_while_this_thread_has_retired_objects_is_safe() {
        // This thread's TLS entry keeps the domain internals alive after the
        // handle is dropped; the retired object is freed when the entry is
        // purged (on next domain use) or at thread exit. Either way: no
        // use-after-free, no double-free — asserted by running under the
        // test harness with more tests following on this thread.
        let drops = Arc::new(AtomicUsize::new(0));
        let d = Domain::new();
        unsafe { d.retire(counted(&drops)) };
        drop(d);
        // Touch a new domain to trigger the purge of stale entries.
        let d2 = Domain::new();
        d2.protect_raw(0, core::ptr::null_mut());
        d2.clear(0);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stress_retire_under_protection_no_use_after_free() {
        // Readers chase a shared pointer under hazard protection and read the
        // payload; a writer keeps swapping in fresh boxes and retiring old
        // ones. Payload integrity (two equal halves) proves no UAF.
        const ITERS: u64 = 2_000;
        let d = Domain::new();
        #[repr(C)]
        struct Payload(u64, u64);
        let src = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(Payload(0, 0)))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let src = Arc::clone(&src);
                let stop = Arc::clone(&stop);
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut checks = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let p = d.protect(0, &src);
                        // SAFETY: protected by hazard slot 0.
                        let v = unsafe { (*p).0 ^ (*p).1 };
                        assert_eq!(v, 0, "torn/freed payload observed");
                        checks += 1;
                        d.clear(0);
                    }
                    checks
                })
            })
            .collect();
        for i in 1..=ITERS {
            let new = Box::into_raw(Box::new(Payload(i, i)));
            let old = src.swap(new, Ordering::SeqCst);
            unsafe { d.retire(old) };
            if i % 64 == 0 {
                // Give readers scheduler time on single-core hosts.
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total_checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        // On a multi-core host readers will have validated many payloads; on
        // a single-core host the yields above still let them run some.
        // The assertion that matters — no torn/freed payload — is inside the
        // reader loop.
        let _ = total_checks;
        d.eager_reclaim();
        assert_eq!(d.retired_count(), 0);
        // Free the final payload still installed in src.
        unsafe { drop(Box::from_raw(src.load(Ordering::SeqCst))) };
    }

    #[test]
    fn global_domain_is_usable() {
        let d = Domain::global();
        let drops = Arc::new(AtomicUsize::new(0));
        let p = counted(&drops);
        unsafe { d.retire(p) };
        d.eager_reclaim();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scan_counts_hazard_scan_event() {
        use lcrq_util::metrics::{self, Event};
        metrics::flush();
        let before = metrics::snapshot();
        let d = Domain::new();
        d.scan();
        metrics::flush();
        let delta = metrics::snapshot().delta_since(&before);
        assert!(delta.get(Event::HazardScan) >= 1);
    }
}
