//! Counted single-word atomic operations (SWAP, T&S, CAS).
//!
//! Thin wrappers over `std::sync::atomic` that record software events so the
//! harness can reproduce the per-operation atomic-instruction counts of
//! Tables 2 and 3. All RMWs use `SeqCst`, which on x86 compiles to the same
//! lock-prefixed instruction as any weaker RMW ordering.

use core::sync::atomic::{AtomicU64, Ordering};
use lcrq_util::metrics::{self, Event};

/// Atomic swap (`XCHG`): stores `v` and returns the previous value.
#[inline]
pub fn swap(a: &AtomicU64, v: u64) -> u64 {
    metrics::inc(Event::Swap);
    a.swap(v, Ordering::SeqCst)
}

/// Test-and-set of bit `bit` (`LOCK BTS`): sets the bit, returning whether it
/// was already set. The CRQ uses this to close a queue (Figure 3d line 99).
#[inline]
pub fn tas_bit(a: &AtomicU64, bit: u32) -> bool {
    metrics::inc(Event::Tas);
    let mask = 1u64 << bit;
    a.fetch_or(mask, Ordering::SeqCst) & mask != 0
}

/// Atomic fetch-OR (`LOCK OR`-family RMW): ORs `mask` into `*a`, returning
/// the previous value. The SCQ dequeue transition uses this to consume an
/// entry (setting the index field to ⊥) with a single unconditional RMW —
/// counted in the T&S family, like [`tas_bit`].
#[inline]
pub fn or_bits(a: &AtomicU64, mask: u64) -> u64 {
    // Fail point before the RMW: the fetch-OR itself is unconditional, so
    // `Fail` has no spurious-failure reading here (yield/stall/panic widen
    // the consume window instead; SCQ's dequeue window arms `ScqDequeue`
    // for a retryable spurious consume failure).
    let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::OrBits);
    metrics::inc(Event::Tas);
    a.fetch_or(mask, Ordering::SeqCst)
}

/// Counted single-word CAS: returns `Ok(())` or the observed value.
#[inline]
pub fn cas(a: &AtomicU64, old: u64, new: u64) -> Result<(), u64> {
    metrics::inc(Event::CasAttempt);
    match a.compare_exchange(old, new, Ordering::SeqCst, Ordering::Acquire) {
        Ok(_) => Ok(()),
        Err(cur) => {
            metrics::inc(Event::CasFailure);
            Err(cur)
        }
    }
}

/// Counted pointer-sized CAS over a `AtomicPtr`-shaped `AtomicU64` is not
/// provided; list queues use [`cas_ptr`] on `AtomicPtr` directly.
pub mod ptr {
    use core::sync::atomic::{AtomicPtr, Ordering};
    use lcrq_util::metrics::{self, Event};

    /// Counted CAS on an `AtomicPtr`.
    #[inline]
    pub fn cas_ptr<T>(a: &AtomicPtr<T>, old: *mut T, new: *mut T) -> Result<(), *mut T> {
        metrics::inc(Event::CasAttempt);
        match a.compare_exchange(old, new, Ordering::SeqCst, Ordering::Acquire) {
            Ok(_) => Ok(()),
            Err(cur) => {
                metrics::inc(Event::CasFailure);
                Err(cur)
            }
        }
    }

    /// Counted SWAP on an `AtomicPtr`.
    #[inline]
    pub fn swap_ptr<T>(a: &AtomicPtr<T>, new: *mut T) -> *mut T {
        metrics::inc(Event::Swap);
        a.swap(new, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicPtr;

    #[test]
    fn swap_returns_previous() {
        let a = AtomicU64::new(3);
        assert_eq!(swap(&a, 9), 3);
        assert_eq!(a.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn tas_bit_sets_and_reports() {
        let a = AtomicU64::new(0);
        assert!(!tas_bit(&a, 63));
        assert!(tas_bit(&a, 63));
        assert_eq!(a.load(Ordering::SeqCst), 1 << 63);
        // Other bits untouched.
        assert!(!tas_bit(&a, 0));
        assert_eq!(a.load(Ordering::SeqCst), (1 << 63) | 1);
    }

    #[test]
    fn cas_success_and_failure() {
        let a = AtomicU64::new(5);
        assert_eq!(cas(&a, 5, 6), Ok(()));
        assert_eq!(cas(&a, 5, 7), Err(6));
        assert_eq!(a.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn ptr_cas_and_swap() {
        let mut x = 1;
        let mut y = 2;
        let a = AtomicPtr::new(&mut x as *mut i32);
        assert!(ptr::cas_ptr(&a, &mut x, &mut y).is_ok());
        assert_eq!(ptr::cas_ptr(&a, &mut x, &mut y), Err(&mut y as *mut i32));
        assert_eq!(ptr::swap_ptr(&a, core::ptr::null_mut()), &mut y as *mut i32);
    }

    #[test]
    fn events_recorded() {
        use lcrq_util::metrics::{self, Event};
        metrics::flush();
        let before = metrics::snapshot();
        let a = AtomicU64::new(0);
        swap(&a, 1);
        tas_bit(&a, 2);
        let _ = cas(&a, 0, 1); // fails: a == 1|4
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        assert_eq!(d.get(Event::Swap), 1);
        assert_eq!(d.get(Event::Tas), 1);
        assert_eq!(d.get(Event::CasAttempt), 1);
        assert_eq!(d.get(Event::CasFailure), 1);
    }
}
