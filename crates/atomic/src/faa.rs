//! Fetch-and-add policies: hardware `LOCK XADD` vs a CAS loop.
//!
//! The paper's central experiment (Figure 1) and the LCRQ-CAS variant hinge
//! on this distinction: hardware F&A always succeeds, so a contended counter
//! costs one cache-line transfer per increment; a CAS loop additionally
//! wastes the work of every failed attempt, and the failure rate grows with
//! concurrency. [`FaaPolicy`] abstracts the choice so a single generic queue
//! implementation yields both LCRQ and LCRQ-CAS.

use core::sync::atomic::{AtomicU64, Ordering};
use lcrq_util::metrics::{self, Event};

/// How to perform a 64-bit fetch-and-add.
///
/// Implementations are zero-sized marker types used as generic parameters;
/// see [`HardwareFaa`] and [`CasLoopFaa`].
pub trait FaaPolicy: Send + Sync + 'static {
    /// Atomically adds `v` to `*a`, returning the previous value
    /// (sequentially consistent, like all lock-prefixed x86 RMWs).
    fn fetch_add(a: &AtomicU64, v: u64) -> u64;

    /// Atomically adds `k` to `*a` as one *multi-slot reservation*,
    /// returning the previous value: the caller owns indices
    /// `prev..prev + k`. Semantically identical to [`fetch_add`]
    /// (x86 `XADD` takes an arbitrary addend), but kept as a separate
    /// entry point so the batched queue paths remain visible to the
    /// ablation: each policy pays its reservation the same way it pays a
    /// scalar F&A — one `LOCK XADD` for hardware, one CAS loop for the
    /// emulation — so batching amortizes *both* variants identically and
    /// the LCRQ vs LCRQ-CAS comparison still isolates the primitive.
    ///
    /// [`fetch_add`]: FaaPolicy::fetch_add
    #[inline]
    fn fetch_add_k(a: &AtomicU64, k: u64) -> u64 {
        Self::fetch_add(a, k)
    }

    /// Human-readable policy name for harness output.
    fn name() -> &'static str;
}

/// Hardware fetch-and-add (`LOCK XADD`): always succeeds in one instruction.
#[derive(Debug, Default, Clone, Copy)]
pub struct HardwareFaa;

impl FaaPolicy for HardwareFaa {
    #[inline]
    fn fetch_add(a: &AtomicU64, v: u64) -> u64 {
        // Fail point before the XADD: hardware F&A cannot spuriously fail
        // (`Fail` is ignored), but a stall/yield here models a thread
        // crashed right at its index reservation.
        let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::Faa);
        metrics::inc(Event::Faa);
        a.fetch_add(v, Ordering::SeqCst)
    }

    fn name() -> &'static str {
        "faa"
    }
}

/// Fetch-and-add emulated with a CAS loop, the construction the paper warns
/// against: under contention most attempts fail and their work is wasted.
#[derive(Debug, Default, Clone, Copy)]
pub struct CasLoopFaa;

impl FaaPolicy for CasLoopFaa {
    #[inline]
    fn fetch_add(a: &AtomicU64, v: u64) -> u64 {
        let mut cur = a.load(Ordering::Acquire);
        loop {
            // The read→CAS window that hardware F&A does not have: a
            // preemption landing here wastes the whole attempt (see
            // lcrq_util::adversary; disabled by default).
            lcrq_util::adversary::preempt_point();
            if lcrq_util::fault::inject(lcrq_util::fault::Site::Faa) {
                // Injected spurious CAS failure: waste this attempt exactly
                // as a contending increment would.
                metrics::inc(Event::CasAttempt);
                metrics::inc(Event::CasFailure);
                cur = a.load(Ordering::Acquire);
                continue;
            }
            metrics::inc(Event::CasAttempt);
            match a.compare_exchange(
                cur,
                cur.wrapping_add(v),
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(prev) => return prev,
                Err(observed) => {
                    metrics::inc(Event::CasFailure);
                    cur = observed;
                }
            }
        }
    }

    fn name() -> &'static str {
        "cas-loop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, MutexGuard};

    // The metrics aggregate is process-wide: serialize the tests that
    // bracket it with flush + snapshot so they don't inflate each other.
    static METRICS_LOCK: Mutex<()> = Mutex::new(());
    fn metrics_guard() -> MutexGuard<'static, ()> {
        METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn hammer<P: FaaPolicy>() -> u64 {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..25_000 {
                        P::fetch_add(&c, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        counter.load(Ordering::SeqCst)
    }

    #[test]
    fn hardware_faa_is_exact_under_contention() {
        assert_eq!(hammer::<HardwareFaa>(), 100_000);
    }

    #[test]
    fn cas_loop_faa_is_exact_under_contention() {
        assert_eq!(hammer::<CasLoopFaa>(), 100_000);
    }

    #[test]
    fn both_policies_return_previous_value() {
        let a = AtomicU64::new(10);
        assert_eq!(HardwareFaa::fetch_add(&a, 5), 10);
        assert_eq!(CasLoopFaa::fetch_add(&a, 5), 15);
        assert_eq!(a.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn fetch_add_zero_is_a_linearized_read() {
        // The CRQ's fixState uses F&A(x, 0) as a flushing read (Figure 3c).
        let a = AtomicU64::new(42);
        assert_eq!(HardwareFaa::fetch_add(&a, 0), 42);
        assert_eq!(CasLoopFaa::fetch_add(&a, 0), 42);
        assert_eq!(a.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn wrapping_add_semantics() {
        let a = AtomicU64::new(u64::MAX);
        assert_eq!(CasLoopFaa::fetch_add(&a, 1), u64::MAX);
        assert_eq!(a.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn policies_record_their_events() {
        use lcrq_util::metrics::{self, Event};
        let _g = metrics_guard();
        metrics::flush();
        let before = metrics::snapshot();
        let a = AtomicU64::new(0);
        HardwareFaa::fetch_add(&a, 1);
        CasLoopFaa::fetch_add(&a, 1); // uncontended: 1 attempt, 0 failures
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        assert_eq!(d.get(Event::Faa), 1);
        assert_eq!(d.get(Event::CasAttempt), 1);
        assert_eq!(d.get(Event::CasFailure), 0);
    }

    #[test]
    fn names_differ() {
        assert_ne!(HardwareFaa::name(), CasLoopFaa::name());
    }

    #[test]
    fn fetch_add_k_reserves_a_contiguous_range() {
        let a = AtomicU64::new(100);
        assert_eq!(HardwareFaa::fetch_add_k(&a, 16), 100);
        assert_eq!(CasLoopFaa::fetch_add_k(&a, 8), 116);
        assert_eq!(a.load(Ordering::SeqCst), 124);
    }

    #[test]
    fn fetch_add_k_costs_one_primitive_per_reservation() {
        use lcrq_util::metrics::{self, Event};
        let _g = metrics_guard();
        metrics::flush();
        let before = metrics::snapshot();
        let a = AtomicU64::new(0);
        HardwareFaa::fetch_add_k(&a, 16);
        CasLoopFaa::fetch_add_k(&a, 16); // uncontended: 1 attempt
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        assert_eq!(d.get(Event::Faa), 1, "one XADD regardless of k");
        assert_eq!(d.get(Event::CasAttempt), 1, "one CAS regardless of k");
    }

    #[test]
    fn fetch_add_k_exact_under_contention() {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut ranges = Vec::with_capacity(10_000);
                    for _ in 0..10_000 {
                        ranges.push(CasLoopFaa::fetch_add_k(&c, 3));
                    }
                    ranges
                })
            })
            .collect();
        let mut starts: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Reservations are disjoint, stride-3 ranges covering [0, 120000).
        starts.sort_unstable();
        assert_eq!(starts.len(), 40_000);
        for (i, s) in starts.iter().enumerate() {
            assert_eq!(*s, 3 * i as u64, "ranges must tile without overlap");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 120_000);
    }
}
