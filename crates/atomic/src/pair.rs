//! A 16-byte-aligned pair of `u64` words supporting double-width CAS.
//!
//! This is the paper's `CAS2(a, <o0,o1>, <n0,n1>)` primitive (§3), i.e.
//! x86 `LOCK CMPXCHG16B`. A CRQ ring node is one `AtomicPair`: the first
//! word packs `(safe, idx)` and the second holds the value (Figure 3a).
//!
//! Rust's standard library has no stable 128-bit atomic, so on x86-64 we
//! issue `lock cmpxchg16b` through inline assembly. A portable spinlock-
//! striped fallback is compiled on every platform (and unit-tested on this
//! one) so the library still builds elsewhere. Which path a build actually
//! uses is reported by [`cas2_backend`]: native on x86-64, the fallback
//! everywhere else **and** on x86-64 under the `force-fallback` feature,
//! under Miri (which cannot execute inline asm), and under `--cfg loom`
//! (so the model checker sees instrumented per-word accesses).

use core::cell::UnsafeCell;
use lcrq_util::metrics::{self, Event};
use lcrq_util::sync::{AtomicU64, Ordering};

/// A pair of `u64` words on which [`compare_exchange`](AtomicPair::compare_exchange)
/// is atomic across both words.
///
/// Individual words can be loaded atomically (and independently) with
/// [`load_first`](AtomicPair::load_first) / [`load_second`](AtomicPair::load_second);
/// this matches the CRQ's access pattern, which reads `val` and
/// `<safe, idx>` as two separate 64-bit reads (Figure 3b line 37-38) and
/// relies on CAS2 failure to detect torn observations.
///
/// ```
/// use lcrq_atomic::AtomicPair;
/// let p = AtomicPair::new(1, 2);
/// assert_eq!(p.compare_exchange((1, 2), (3, 4)), Ok(()));
/// assert_eq!(p.compare_exchange((1, 2), (9, 9)), Err((3, 4)));
/// assert_eq!(p.load(), (3, 4));
/// ```
#[repr(C, align(16))]
pub struct AtomicPair {
    words: UnsafeCell<[u64; 2]>,
}

// SAFETY: all access goes through atomic instructions (or the fallback lock).
unsafe impl Send for AtomicPair {}
unsafe impl Sync for AtomicPair {}

impl AtomicPair {
    /// Creates a pair initialized to `(first, second)`.
    pub const fn new(first: u64, second: u64) -> Self {
        Self {
            words: UnsafeCell::new([first, second]),
        }
    }

    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        // SAFETY: each half of the 16-byte cell is a valid, aligned AtomicU64
        // and every mutation of it is performed with atomic instructions.
        unsafe { &*(self.words.get() as *const u64 as *const AtomicU64).add(i) }
    }

    /// Atomically loads the first word (acquire).
    #[inline]
    pub fn load_first(&self) -> u64 {
        self.word(0).load(Ordering::Acquire)
    }

    /// Atomically loads the second word (acquire).
    #[inline]
    pub fn load_second(&self) -> u64 {
        self.word(1).load(Ordering::Acquire)
    }

    /// Atomically loads both words as one 128-bit quantity.
    ///
    /// Implemented with a `CAS2(p, x, x)` probe, so it is exactly as strong
    /// as the paper's model allows. Primarily for tests and assertions; the
    /// queue algorithms use per-word loads.
    #[inline]
    pub fn load(&self) -> (u64, u64) {
        // A cmpxchg16b with equal old/new never changes memory but always
        // returns the current contents.
        match self.compare_exchange_internal((0, 0), (0, 0), false) {
            Ok(()) => (0, 0),
            Err(cur) => cur,
        }
    }

    /// Double-width compare-and-swap with sequentially consistent ordering
    /// (the instruction is lock-prefixed; x86 gives total order).
    ///
    /// On success returns `Ok(())`; on failure returns the observed value.
    /// Records [`Event::Cas2Attempt`] / [`Event::Cas2Failure`].
    #[inline]
    pub fn compare_exchange(&self, old: (u64, u64), new: (u64, u64)) -> Result<(), (u64, u64)> {
        if lcrq_util::fault::inject(lcrq_util::fault::Site::Cas2) {
            // Injected spurious CAS2 failure: report the current contents
            // without attempting the exchange. Callers must already cope
            // with losing the real race (re-read and retry), so a spurious
            // loss exercises the same path without weakening the protocol.
            metrics::inc(Event::Cas2Attempt);
            metrics::inc(Event::Cas2Failure);
            return Err(self.load());
        }
        self.compare_exchange_internal(old, new, true)
    }

    #[inline]
    fn compare_exchange_internal(
        &self,
        old: (u64, u64),
        new: (u64, u64),
        count: bool,
    ) -> Result<(), (u64, u64)> {
        if count {
            metrics::inc(Event::Cas2Attempt);
        }
        let r = {
            #[cfg(all(
                target_arch = "x86_64",
                not(any(loom, miri, feature = "force-fallback"))
            ))]
            {
                native::cmpxchg16b(self.words.get(), old, new)
            }
            #[cfg(not(all(
                target_arch = "x86_64",
                not(any(loom, miri, feature = "force-fallback"))
            )))]
            {
                fallback::cmpxchg16b(self.words.get(), old, new)
            }
        };
        if count && r.is_err() {
            metrics::inc(Event::Cas2Failure);
        }
        r
    }

    /// Non-atomic store through exclusive access (initialization).
    pub fn store_mut(&mut self, first: u64, second: u64) {
        *self.words.get_mut() = [first, second];
    }

    /// Atomically replaces the pair regardless of its current value, via an
    /// (uncounted) CAS2 loop. Intended for logically-exclusive
    /// re-initialization — e.g. scrubbing a retired ring node for reuse —
    /// where it converges in one iteration; under contention it is a
    /// last-writer-wins store.
    pub fn store(&self, first: u64, second: u64) {
        let mut cur = self.load();
        while let Err(seen) = self.compare_exchange_internal(cur, (first, second), false) {
            cur = seen;
        }
    }
}

impl core::fmt::Debug for AtomicPair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (a, b) = self.load();
        f.debug_tuple("AtomicPair").field(&a).field(&b).finish()
    }
}

/// Which CAS2 implementation this build routes
/// [`AtomicPair::compare_exchange`] through. Benches and arena artifacts
/// record this so a measurement is never silently attributed to the wrong
/// path (e.g. a `force-fallback` run mistaken for native numbers).
pub fn cas2_backend() -> &'static str {
    if cfg!(loom) {
        "seqlock-fallback (loom model)"
    } else if cfg!(miri) {
        "seqlock-fallback (miri)"
    } else if cfg!(all(target_arch = "x86_64", feature = "force-fallback")) {
        "seqlock-fallback (force-fallback on x86_64)"
    } else if cfg!(target_arch = "x86_64") {
        "native cmpxchg16b"
    } else {
        "seqlock-fallback (portable)"
    }
}

/// Native x86-64 path: `lock cmpxchg16b` via inline assembly. Compiled out
/// (not just unused) under Miri / loom / `force-fallback`, matching the
/// routing in `compare_exchange_internal`.
#[cfg(all(
    target_arch = "x86_64",
    not(any(loom, miri, feature = "force-fallback"))
))]
mod native {
    /// Atomically compares the 16 bytes at `ptr` with `old` and, if equal,
    /// replaces them with `new`. Returns `Ok(())` or the observed value.
    ///
    /// `ptr` must be 16-byte aligned and valid for concurrent atomic access.
    #[inline]
    pub fn cmpxchg16b(
        ptr: *mut [u64; 2],
        old: (u64, u64),
        new: (u64, u64),
    ) -> Result<(), (u64, u64)> {
        // `lock cmpxchg16b` #GP-faults on a misaligned operand; every
        // `AtomicPair` is `repr(align(16))`, but a cell reached through a
        // bad cast or FFI would not be. Cheap to check, fatal to miss.
        debug_assert_eq!(
            ptr as usize % 16,
            0,
            "cmpxchg16b operand must be 16-byte aligned"
        );
        let (old_lo, old_hi) = old;
        let (new_lo, new_hi) = new;
        let res_lo: u64;
        let res_hi: u64;
        let ok: u8;
        // SAFETY: `ptr` comes from a 16-byte-aligned `AtomicPair`.
        // CMPXCHG16B compares RDX:RAX with the memory operand and, if equal,
        // stores RCX:RBX. LLVM reserves RBX, so we stash the low new word via
        // a scratch register around the instruction.
        unsafe {
            core::arch::asm!(
                "xchg rbx, {new_lo}",
                "lock cmpxchg16b [{ptr}]",
                "sete {ok}",
                "mov rbx, {new_lo}",
                ptr = in(reg) ptr,
                new_lo = inout(reg) new_lo => _,
                ok = out(reg_byte) ok,
                inout("rax") old_lo => res_lo,
                inout("rdx") old_hi => res_hi,
                in("rcx") new_hi,
                options(nostack),
            );
        }
        if ok != 0 {
            Ok(())
        } else {
            Err((res_lo, res_hi))
        }
    }
}

/// Portable fallback: an address-striped spinlock table serializing CAS2
/// *writers*; readers ([`AtomicPair::load_first`]/[`load_second`]) stay
/// lock-free per-word atomic loads. A reader racing a CAS2 can observe the
/// pair half-updated — exactly the CRQ's access model, which reads `val`
/// and `<safe, idx>` as two independent 64-bit loads and relies on CAS2
/// failure to reject torn observations. Compiled everywhere; used off
/// x86-64 and under Miri / loom / `force-fallback`.
#[allow(dead_code)]
mod fallback {
    use lcrq_util::sync::{AtomicBool, AtomicU64, Ordering};

    // One stripe under loom: lock choice must not depend on heap addresses,
    // which vary across executions and would derail schedule replay.
    const STRIPES: usize = if cfg!(loom) { 1 } else { 64 };
    static LOCKS: [AtomicBool; STRIPES] = [const { AtomicBool::new(false) }; STRIPES];

    fn stripe(addr: usize) -> &'static AtomicBool {
        // 16-byte cells: drop the low 4 bits, then stripe.
        #[allow(clippy::modulo_one)] // STRIPES == 1 under the loom cfg
        let idx = (addr >> 4) % STRIPES;
        &LOCKS[idx]
    }

    struct Guard(&'static AtomicBool);
    impl Drop for Guard {
        fn drop(&mut self) {
            self.0.store(false, Ordering::Release);
        }
    }

    fn lock(addr: usize) -> Guard {
        let l = stripe(addr);
        #[cfg(loom)]
        lcrq_util::model::acquire_flag(l);
        #[cfg(not(loom))]
        while l
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            core::hint::spin_loop();
        }
        Guard(l)
    }

    /// Views the 16-byte cell as its two word atomics.
    ///
    /// # Safety
    /// `ptr` must point to a live, 8-byte-aligned `[u64; 2]` whose words
    /// are only ever mutated through atomic operations.
    unsafe fn words<'a>(ptr: *mut [u64; 2]) -> (&'a AtomicU64, &'a AtomicU64) {
        let base = ptr as *const AtomicU64;
        (&*base, &*base.add(1))
    }

    /// Lock-based emulation of x86 `lock cmpxchg16b`.
    ///
    /// All cell access is per-word atomic. An earlier version read and
    /// wrote the cell with `read_volatile`/`write_volatile` under the
    /// stripe lock — a data race against the *unlocked* `Acquire` word
    /// loads in `load_first`/`load_second` (volatile is not atomic).
    /// Miri reports it as "Data race detected between (1) non-atomic
    /// write and (2) atomic load"; x86's TSO happened to tolerate it,
    /// aarch64 would not. Keep every access to the cell atomic.
    pub fn cmpxchg16b(
        ptr: *mut [u64; 2],
        old: (u64, u64),
        new: (u64, u64),
    ) -> Result<(), (u64, u64)> {
        let _g = lock(ptr as usize);
        // SAFETY: `ptr` comes from a live cell (`AtomicPair` or a test's
        // exclusive array) mutated only under this stripe lock, and read
        // elsewhere only with atomic loads.
        let (w0, w1) = unsafe { words(ptr) };
        // The stripe lock serializes writers, so this read-compare-write
        // is atomic with respect to other CAS2s; Relaxed loads suffice
        // under the lock's Acquire.
        let cur = (w0.load(Ordering::Relaxed), w1.load(Ordering::Relaxed));
        if cur == old {
            w0.store(new.0, Ordering::Release);
            w1.store(new.1, Ordering::Release);
            Ok(())
        } else {
            Err(cur)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_and_load_words() {
        let p = AtomicPair::new(7, 9);
        assert_eq!(p.load_first(), 7);
        assert_eq!(p.load_second(), 9);
        assert_eq!(p.load(), (7, 9));
    }

    #[test]
    fn successful_cas2_updates_both_words() {
        let p = AtomicPair::new(1, 2);
        assert_eq!(p.compare_exchange((1, 2), (10, 20)), Ok(()));
        assert_eq!(p.load(), (10, 20));
    }

    #[test]
    fn failed_cas2_returns_current_and_leaves_memory() {
        let p = AtomicPair::new(1, 2);
        assert_eq!(p.compare_exchange((1, 3), (10, 20)), Err((1, 2)));
        assert_eq!(p.compare_exchange((0, 2), (10, 20)), Err((1, 2)));
        assert_eq!(p.load(), (1, 2));
    }

    #[test]
    fn cas2_distinguishes_each_word() {
        // Must compare both words, not just one.
        let p = AtomicPair::new(5, 5);
        assert!(p.compare_exchange((5, 6), (0, 0)).is_err());
        assert!(p.compare_exchange((6, 5), (0, 0)).is_err());
        assert!(p.compare_exchange((5, 5), (0, 0)).is_ok());
    }

    #[test]
    fn store_mut_reinitializes() {
        let mut p = AtomicPair::new(0, 0);
        p.store_mut(3, 4);
        assert_eq!(p.load(), (3, 4));
    }

    #[test]
    fn shared_store_replaces_any_value_and_is_uncounted() {
        use lcrq_util::metrics::{self, Event};
        let p = AtomicPair::new(1, 2);
        let before = metrics::local_snapshot();
        p.store(8, 9);
        assert_eq!(p.load(), (8, 9));
        let d = metrics::local_snapshot().delta_since(&before);
        assert_eq!(d.get(Event::Cas2Attempt), 0, "store must not skew counters");
    }

    #[test]
    fn alignment_is_16_bytes() {
        assert_eq!(core::mem::align_of::<AtomicPair>(), 16);
        assert_eq!(core::mem::size_of::<AtomicPair>(), 16);
        let v: Vec<AtomicPair> = (0..8).map(|i| AtomicPair::new(i, i)).collect();
        for p in &v {
            assert_eq!(p as *const _ as usize % 16, 0);
        }
        // Boxed, stack, and struct-embedded cells must all satisfy the
        // native path's debug assertion (`lock cmpxchg16b` faults on a
        // misaligned operand).
        let boxed = Box::new(AtomicPair::new(0, 0));
        assert_eq!(&*boxed as *const _ as usize % 16, 0);
        struct Embeds {
            _pad: u8,
            p: AtomicPair,
        }
        let e = Embeds {
            _pad: 1,
            p: AtomicPair::new(0, 0),
        };
        assert_eq!(&e.p as *const _ as usize % 16, 0);
        assert!(e.p.compare_exchange((0, 0), (1, 1)).is_ok());
    }

    #[test]
    fn backend_report_matches_build_configuration() {
        let b = cas2_backend();
        if cfg!(all(
            target_arch = "x86_64",
            not(any(miri, feature = "force-fallback"))
        )) {
            assert_eq!(b, "native cmpxchg16b");
        } else {
            assert!(b.starts_with("seqlock-fallback"), "unexpected backend {b}");
        }
    }

    #[test]
    fn fallback_cas2_vs_atomic_word_reads_is_race_free() {
        // Regression witness for the fallback data race (see the comment on
        // fallback::cmpxchg16b): under Miri the old volatile-write body
        // fails here with "Data race detected between (1) non-atomic write
        // and (2) atomic load". Readers use the same per-word Acquire loads
        // as load_first/load_second while a writer runs fallback CAS2s.
        let p = Arc::new(AtomicPair::new(0, 0));
        let iters: u64 = if cfg!(miri) { 200 } else { 20_000 };
        let w = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                let mut cur = (0u64, 0u64);
                for _ in 0..iters {
                    let next = if cur.0 == 0 {
                        (u64::MAX, u64::MAX)
                    } else {
                        (0, 0)
                    };
                    // SAFETY: the fallback serializes writers internally and
                    // readers only use atomic loads — the property under test.
                    assert_eq!(
                        super::fallback::cmpxchg16b(p.words.get(), cur, next),
                        Ok(())
                    );
                    cur = next;
                }
            })
        };
        for _ in 0..iters {
            let a = p.load_first();
            let b = p.load_second();
            assert!(a == 0 || a == u64::MAX, "impossible word value {a}");
            assert!(b == 0 || b == u64::MAX, "impossible word value {b}");
        }
        w.join().unwrap();
    }

    #[test]
    fn counts_attempts_and_failures() {
        use lcrq_util::metrics::{self, Event};
        let p = AtomicPair::new(0, 0);
        let before = {
            metrics::flush();
            metrics::snapshot()
        };
        let _ = p.compare_exchange((0, 0), (1, 1)); // success
        let _ = p.compare_exchange((0, 0), (1, 1)); // failure
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        assert_eq!(d.get(Event::Cas2Attempt), 2);
        assert_eq!(d.get(Event::Cas2Failure), 1);
    }

    #[test]
    fn concurrent_increments_via_cas2_lose_nothing() {
        // 4 threads, each performs 10_000 successful CAS2 increments of both
        // halves; the total must be exact — the whole point of double-width CAS.
        let p = Arc::new(AtomicPair::new(0, 0));
        let threads = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        loop {
                            let cur = p.load();
                            if p.compare_exchange(cur, (cur.0 + 1, cur.1 + 2)).is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.load(), (threads * per, threads * per * 2));
    }

    #[test]
    fn pair_load_is_never_torn() {
        // Writer flips between (A, A) and (B, B); readers must never observe
        // a mixed pair via the 128-bit load.
        let p = Arc::new(AtomicPair::new(0, 0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut cur = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let next = if cur.0 == 0 {
                        (u64::MAX, u64::MAX)
                    } else {
                        (0, 0)
                    };
                    assert_eq!(p.compare_exchange(cur, next), Ok(()));
                    cur = next;
                }
            })
        };
        for _ in 0..50_000 {
            let (a, b) = p.load();
            assert_eq!(a, b, "torn 128-bit read");
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn fallback_agrees_with_semantics() {
        // Exercise the portable fallback directly (it is compiled on x86 too).
        let mut cell = [1u64, 2u64];
        let ptr = &mut cell as *mut [u64; 2];
        assert_eq!(super::fallback::cmpxchg16b(ptr, (1, 2), (3, 4)), Ok(()));
        assert_eq!(cell, [3, 4]);
        assert_eq!(
            super::fallback::cmpxchg16b(ptr, (1, 2), (9, 9)),
            Err((3, 4))
        );
        assert_eq!(cell, [3, 4]);
    }

    #[test]
    fn fallback_concurrent_counter_is_exact() {
        struct SendPtr(*mut [u64; 2]);
        unsafe impl Send for SendPtr {}
        let cell = Box::leak(Box::new([0u64, 0u64])) as *mut [u64; 2];
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = SendPtr(cell);
                std::thread::spawn(move || {
                    let p = p;
                    for _ in 0..5_000 {
                        loop {
                            // SAFETY: all accesses in this test go through the
                            // fallback's stripe lock.
                            let cur = match super::fallback::cmpxchg16b(p.0, (0, 0), (0, 0)) {
                                Ok(()) => (0, 0),
                                Err(c) => c,
                            };
                            if super::fallback::cmpxchg16b(p.0, cur, (cur.0 + 1, cur.1 + 1)).is_ok()
                            {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all writers joined.
        let v = unsafe { *cell };
        assert_eq!(v, [20_000, 20_000]);
        // SAFETY: cell came from Box::leak above and has no other owners.
        unsafe { drop(Box::from_raw(cell)) };
    }
}
