//! Atomic primitives used by the LCRQ reproduction.
//!
//! The paper (§3) relies on five x86 read-modify-write instructions:
//!
//! | paper name | x86 instruction  | here |
//! |------------|------------------|------|
//! | `F&A`      | `LOCK XADD`      | [`ops::faa`] with [`HardwareFaa`] |
//! | `SWAP`     | `XCHG`           | [`ops::swap`] |
//! | `T&S`      | `LOCK BTS`       | [`ops::tas_bit`] |
//! | `CAS`      | `LOCK CMPXCHG`   | [`ops::cas`] |
//! | `CAS2`     | `LOCK CMPXCHG16B`| [`AtomicPair::compare_exchange`] |
//!
//! All of these *always succeed* except CAS/CAS2, which is the paper's core
//! observation: spreading threads with F&A avoids the wasted work of CAS
//! retry loops. The [`FaaPolicy`] trait lets the same queue code run with
//! hardware F&A (LCRQ) or a CAS-loop emulation (LCRQ-CAS, used in the
//! paper's Figure 1 and throughput studies to isolate the effect).
//!
//! Every operation records a software event ([`lcrq_util::metrics`]) so the
//! harness can regenerate the "atomic operations" rows of Tables 2 and 3.

#![warn(missing_docs)]

pub mod faa;
pub mod ops;
pub mod pair;

pub use faa::{CasLoopFaa, FaaPolicy, HardwareFaa};
pub use pair::{cas2_backend, AtomicPair};
