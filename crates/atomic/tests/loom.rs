//! Model-checked interleavings of the portable seqlock CAS2 fallback
//! (under `--cfg loom` every `AtomicPair` operation routes through it),
//! run by the ci.sh loom gate:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lcrq-atomic --test loom -q
//! ```
//!
//! These models check the properties the CRQ algorithms lean on: CAS2 is
//! atomic across both words (no lost updates, no torn 128-bit loads), and
//! the lock-free per-word reads of `load_first`/`load_second` observe only
//! values that some CAS2 actually committed.
#![cfg(loom)]

use lcrq_atomic::{cas2_backend, AtomicPair};
use lcrq_util::model::{thread, Builder};
use std::sync::Arc;

#[test]
fn loom_build_routes_through_the_fallback() {
    assert_eq!(cas2_backend(), "seqlock-fallback (loom model)");
}

#[test]
fn concurrent_cas2_increments_lose_nothing() {
    let report = Builder::new().check(|| {
        let p = Arc::new(AtomicPair::new(0, 0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&p);
                thread::spawn(move || loop {
                    let cur = p.load();
                    if p.compare_exchange(cur, (cur.0 + 1, cur.1 + 2)).is_ok() {
                        return;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.load(), (2, 4), "a CAS2 increment was lost");
    });
    assert!(
        report.executions > 1,
        "must explore >1 interleaving: {report:?}"
    );
}

#[test]
fn pair_load_probe_is_never_torn() {
    // The 128-bit load (a CAS2 probe) takes the stripe lock, so it must
    // never observe the writer's two word-stores half-applied.
    let report = Builder::new().check(|| {
        let p = Arc::new(AtomicPair::new(0, 0));
        let p2 = Arc::clone(&p);
        let w = thread::spawn(move || {
            assert_eq!(p2.compare_exchange((0, 0), (u64::MAX, u64::MAX)), Ok(()));
        });
        let (a, b) = p.load();
        assert_eq!(a, b, "torn 128-bit read through the fallback");
        w.join().unwrap();
        assert_eq!(p.load(), (u64::MAX, u64::MAX));
    });
    assert!(report.executions > 1);
}

#[test]
fn per_word_loads_observe_only_committed_values() {
    // load_first/load_second deliberately skip the stripe lock (the CRQ
    // reads val and <safe, idx> as two independent words). Racing a CAS2
    // they may see the pair *mixed across words* — the CRQ's documented
    // access model — but each individual word must be a value some CAS2
    // wrote, never an out-of-thin-air or shredded one.
    let report = Builder::new().check(|| {
        let p = Arc::new(AtomicPair::new(1, 2));
        let p2 = Arc::clone(&p);
        let w = thread::spawn(move || {
            assert_eq!(p2.compare_exchange((1, 2), (3, 4)), Ok(()));
        });
        let a = p.load_first();
        let b = p.load_second();
        assert!(a == 1 || a == 3, "word 0 out of thin air: {a}");
        assert!(b == 2 || b == 4, "word 1 out of thin air: {b}");
        w.join().unwrap();
        assert_eq!(p.load(), (3, 4));
    });
    assert!(report.executions > 1);
}

#[test]
fn racing_cas2_from_the_same_old_value_elects_exactly_one_winner() {
    let report = Builder::new().check(|| {
        let p = Arc::new(AtomicPair::new(0, 0));
        let p2 = Arc::clone(&p);
        let w = thread::spawn(move || p2.compare_exchange((0, 0), (7, 8)));
        let mine = p.compare_exchange((0, 0), (5, 6));
        let theirs = w.join().unwrap();
        match (mine, theirs) {
            // Exactly one CAS2 may win, and the loser must observe the
            // winner's committed pair — never (0,0), never a torn mix.
            (Ok(()), Err(seen)) => {
                assert_eq!(seen, (5, 6), "loser saw a torn/stale pair");
                assert_eq!(p.load(), (5, 6));
            }
            (Err(seen), Ok(())) => {
                assert_eq!(seen, (7, 8), "loser saw a torn/stale pair");
                assert_eq!(p.load(), (7, 8));
            }
            (a, b) => panic!("expected exactly one winner, got {a:?} / {b:?}"),
        }
    });
    assert!(report.executions > 1);
}
