//! A test-and-test-and-set spin lock.
//!
//! Used as H-Synch's global lock (synchronizing per-cluster combiners) and
//! by the two-lock MS queue baseline. Deliberately a *spin* lock — the
//! paper's C baselines spin too, and the oversubscription study (Figure 6b)
//! depends on lock holders being preemptable while waiters burn/yield.

use core::sync::atomic::{AtomicBool, Ordering};
use lcrq_util::metrics::{self, Event};
use lcrq_util::Backoff;

/// A test-and-test-and-set lock with exponential backoff that eventually
/// yields to the OS (so oversubscribed runs make progress at all).
#[derive(Debug, Default)]
pub struct TasLock {
    locked: AtomicBool,
}

/// RAII guard unlocking on drop.
#[must_use = "the lock is released when the guard is dropped"]
#[derive(Debug)]
pub struct TasGuard<'a> {
    lock: &'a TasLock,
}

impl TasLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning (then yielding) until available.
    pub fn lock(&self) -> TasGuard<'_> {
        let backoff = Backoff::new();
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            // Test before the next test-and-set to avoid hammering the line.
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    /// Attempts to acquire without waiting.
    pub fn try_lock(&self) -> Option<TasGuard<'_>> {
        metrics::inc(Event::Tas);
        if self.locked.swap(true, Ordering::Acquire) {
            None
        } else {
            // Most damaging preemption point: lock held, work not yet done.
            lcrq_util::adversary::preempt_point();
            Some(TasGuard { lock: self })
        }
    }

    /// Whether the lock is currently held (racy; for assertions/heuristics).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl Drop for TasGuard<'_> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_cycle() {
        let l = TasLock::new();
        assert!(!l.is_locked());
        {
            let _g = l.lock();
            assert!(l.is_locked());
            assert!(l.try_lock().is_none());
        }
        assert!(!l.is_locked());
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let l = Arc::new(TasLock::new());
        struct RacyCell(std::cell::UnsafeCell<u64>);
        // SAFETY (test): all access is under the lock being tested.
        unsafe impl Send for RacyCell {}
        unsafe impl Sync for RacyCell {}
        let counter = Arc::new(RacyCell(std::cell::UnsafeCell::new(0u64)));
        struct Shared(Arc<RacyCell>);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Shared(Arc::clone(&counter));
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let _g = l.lock();
                        // SAFETY: we hold the lock.
                        unsafe { *c.0 .0.get() += 1 };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *counter.0.get() }, 40_000);
    }
}
