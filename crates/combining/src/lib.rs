//! Combining universal constructions, the paper's main competitors (§2, §5).
//!
//! A *combining* construction turns any sequential object into a linearizable
//! concurrent one: threads announce operations, and a single *combiner*
//! thread applies a batch of announced operations serially. This trades
//! parallelism for synchronization: the object itself is touched by one
//! thread at a time, so its cache lines never bounce, but all work is
//! serialized and waiting threads burn time.
//!
//! Three constructions are implemented, matching the paper's evaluation:
//!
//! * [`CcSynch`] — Fatourou & Kallimanis (PPoPP 2012). Threads add
//!   themselves to a request list with SWAP; the thread at the head combines.
//!   Blocking (a preempted combiner stalls everyone) but starvation-free with
//!   a bounded help limit.
//! * [`HSynch`] — the hierarchical (NUMA-aware) version: one CC-Synch
//!   request list per cluster plus a global lock; each cluster's combiner
//!   acquires the lock and serves its cluster's batch.
//! * [`FlatCombining`] — Hendler, Incze, Shavit & Tzafrir (SPAA 2010). A
//!   global try-lock plus a publication list; the lock winner scans the list
//!   and serves everyone's pending requests.
//!
//! All three implement operations against a user-supplied [`SeqObject`]. The
//! baseline queues in `lcrq-queues` instantiate them exactly as the paper
//! describes (CC-Queue = two CC-Synch instances on the two-lock queue's head
//! and tail; H-Queue likewise with H-Synch; FC queue = flat combining over a
//! linked list of arrays).

#![warn(missing_docs)]

pub mod ccsynch;
pub mod flat;
pub mod hsynch;
mod list;
pub mod lock;
pub mod seq;
pub mod sim;
mod tls;

pub use ccsynch::CcSynch;
pub use flat::FlatCombining;
pub use hsynch::HSynch;
pub use lock::TasLock;
pub use seq::SeqObject;
pub use sim::Sim;

/// Default bound on how many requests one combiner serves before handing the
/// role over (keeps individual combining rounds — and thus any one thread's
/// unpaid servitude — bounded, as in the CC-Synch paper).
pub const DEFAULT_HELP_LIMIT: usize = 512;
