//! CC-Synch (Fatourou & Kallimanis, PPoPP 2012).
//!
//! A blocking combining construction with constant synchronization cost:
//! each operation performs exactly one SWAP to join the request list, then
//! either spins until a combiner serves it or becomes the combiner itself.
//! The CC-Queue baseline (paper §5) uses two instances — one for the queue's
//! head lock and one for its tail lock — so enqueue and dequeue batches run
//! in parallel with each other.

use core::cell::UnsafeCell;

use crate::list::{Announced, RequestList};
use crate::seq::SeqObject;
use crate::DEFAULT_HELP_LIMIT;

/// A linearizable concurrent version of the sequential object `S`, built
/// with the CC-Synch combining construction.
///
/// ```
/// use lcrq_combining::{CcSynch, seq::SeqCounter};
/// let counter = CcSynch::new(SeqCounter::default());
/// assert_eq!(counter.apply(5), 0); // previous value
/// assert_eq!(counter.apply(1), 5);
/// ```
pub struct CcSynch<S: SeqObject> {
    list: RequestList<S>,
    state: UnsafeCell<S>,
    help_limit: usize,
}

// SAFETY: `state` is only touched by the unique combiner (guaranteed by the
// request-list protocol); ops/results cross threads via the list's
// release/acquire edges.
unsafe impl<S: SeqObject + Send> Send for CcSynch<S> {}
unsafe impl<S: SeqObject + Send> Sync for CcSynch<S> {}

impl<S: SeqObject> CcSynch<S> {
    /// Wraps `state` with the default help limit.
    pub fn new(state: S) -> Self {
        Self::with_help_limit(state, DEFAULT_HELP_LIMIT)
    }

    /// Wraps `state`; a combiner serves at most `help_limit` requests per
    /// round (minimum 1) before handing the role over.
    pub fn with_help_limit(state: S, help_limit: usize) -> Self {
        Self {
            list: RequestList::new(),
            state: UnsafeCell::new(state),
            help_limit: help_limit.max(1),
        }
    }

    /// Applies `op` to the object, linearizably; blocks while the current
    /// combiner (possibly this thread) works.
    pub fn apply(&self, op: S::Op) -> S::Ret {
        match self.list.announce(op) {
            Announced::Done(ret) => ret,
            Announced::Combine(start) => {
                // SAFETY: we hold the combiner role, which grants exclusive
                // access to `state` by the CC-Synch protocol.
                unsafe {
                    self.list
                        .combine(start, &mut *self.state.get(), self.help_limit)
                }
            }
        }
    }

    /// Exclusive access to the wrapped state (no concurrency possible).
    pub fn state_mut(&mut self) -> &mut S {
        self.state.get_mut()
    }

    /// Consumes the wrapper, returning the sequential state.
    pub fn into_inner(self) -> S {
        self.state.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{FifoOp, SeqCounter, SeqFifo};
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        let c = CcSynch::new(SeqCounter::default());
        assert_eq!(c.apply(1), 0);
        assert_eq!(c.apply(2), 1);
        assert_eq!(c.apply(3), 3);
        assert_eq!(c.into_inner().apply(0), 6);
    }

    #[test]
    fn no_lost_updates_under_contention() {
        let c = Arc::new(CcSynch::new(SeqCounter::default()));
        let threads = 8;
        let per = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.apply(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let c = Arc::try_unwrap(c).ok().expect("sole owner");
        assert_eq!(c.into_inner().apply(0), threads * per);
    }

    #[test]
    fn previous_values_are_unique_proving_atomicity() {
        // Each apply(1) returns the pre-increment value; if two operations
        // ever interleaved inside the object, two would return the same.
        let c = Arc::new(CcSynch::new(SeqCounter::default()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..2_000).map(|_| c.apply(1)).collect::<Vec<_>>())
            })
            .collect();
        let mut seen: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..8_000).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn fifo_under_combining_keeps_per_producer_order() {
        let q = Arc::new(CcSynch::new(SeqFifo::default()));
        let producers = 4;
        let per = 2_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.apply(FifoOp::Enq((p << 32) | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut last_seen = vec![None::<u64>; producers as usize];
        let mut count = 0;
        while let Some(v) = q.apply(FifoOp::Deq) {
            let (p, i) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
            if let Some(prev) = last_seen[p] {
                assert!(i > prev, "per-producer FIFO order violated");
            }
            last_seen[p] = Some(i);
            count += 1;
        }
        assert_eq!(count, producers * per);
    }

    #[test]
    fn tiny_help_limit_still_completes() {
        let c = Arc::new(CcSynch::with_help_limit(SeqCounter::default(), 1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.apply(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let c = Arc::try_unwrap(c).ok().expect("sole owner");
        assert_eq!(c.into_inner().apply(0), 4_000);
    }

    #[test]
    fn combiner_batches_are_recorded() {
        use lcrq_util::metrics::{self, Event};
        metrics::flush();
        let before = metrics::snapshot();
        let c = CcSynch::new(SeqCounter::default());
        for _ in 0..10 {
            c.apply(1);
        }
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        assert!(d.get(Event::CombinerRound) >= 1);
        assert_eq!(d.get(Event::OpsCombined), 10);
        assert_eq!(d.get(Event::Swap), 10, "one SWAP per operation");
    }

    #[test]
    fn state_mut_gives_direct_access() {
        let mut c = CcSynch::new(SeqCounter::default());
        c.apply(41);
        assert_eq!(c.state_mut().apply(1), 41);
    }

    #[test]
    fn many_instances_do_not_interfere() {
        let a = CcSynch::new(SeqCounter::default());
        let b = CcSynch::new(SeqCounter::default());
        a.apply(10);
        b.apply(20);
        assert_eq!(a.into_inner().apply(0), 10);
        assert_eq!(b.into_inner().apply(0), 20);
    }

    #[test]
    fn drop_after_use_frees_nodes_without_crash() {
        for _ in 0..50 {
            let c = CcSynch::new(SeqCounter::default());
            c.apply(1);
            drop(c);
        }
    }
}
