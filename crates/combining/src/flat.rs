//! Flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA 2010).
//!
//! Threads publish pending operations in per-thread *publication records*
//! linked into a global list. Any thread whose operation is pending tries to
//! acquire a global lock; the winner becomes the combiner, scans the
//! publication list, and applies every pending operation it finds, writing
//! results back into the records. Losers spin until their record's result
//! arrives or the lock frees up.
//!
//! Compared to CC-Synch, flat combining pays *no* atomic operation at all on
//! the fast path of a served thread (just a record write and a spin), which
//! is why the paper's Table 2 shows the FC queue averaging only 0.21 atomic
//! operations per queue operation — but the combiner must rescan the whole
//! publication list each round, and the lock makes it blocking.
//!
//! Simplification vs. the original: records are never aged out of the
//! publication list (the original unlinks records unused for a while). With
//! bounded thread counts this only adds a predictable constant to each scan.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicPtr, AtomicU8, Ordering};
use std::sync::Mutex;

use crate::seq::SeqObject;
use crate::tls;
use lcrq_atomic::ops::ptr::cas_ptr;
use lcrq_util::metrics::{self, Event};
use lcrq_util::Backoff;

use crate::lock::TasLock;

const EMPTY: u8 = 0;
const PENDING: u8 = 1;
const DONE: u8 = 2;

struct FcRecord<S: SeqObject> {
    status: AtomicU8,
    op: UnsafeCell<Option<S::Op>>,
    ret: UnsafeCell<Option<S::Ret>>,
    next: AtomicPtr<FcRecord<S>>,
}

impl<S: SeqObject> FcRecord<S> {
    fn new() -> Self {
        Self {
            status: AtomicU8::new(EMPTY),
            op: UnsafeCell::new(None),
            ret: UnsafeCell::new(None),
            next: AtomicPtr::new(core::ptr::null_mut()),
        }
    }
}

/// A linearizable concurrent version of `S` built with flat combining.
///
/// ```
/// use lcrq_combining::{FlatCombining, seq::SeqCounter};
/// let counter = FlatCombining::new(SeqCounter::default());
/// assert_eq!(counter.apply(7), 0);
/// assert_eq!(counter.apply(1), 7);
/// ```
pub struct FlatCombining<S: SeqObject> {
    lock: TasLock,
    pub_head: AtomicPtr<FcRecord<S>>,
    state: UnsafeCell<S>,
    registry: Mutex<Vec<*mut FcRecord<S>>>,
    id: u64,
}

// SAFETY: `state` is only touched under `lock`; op/ret fields cross threads
// via the record status release/acquire edges.
unsafe impl<S: SeqObject + Send> Send for FlatCombining<S> {}
unsafe impl<S: SeqObject + Send> Sync for FlatCombining<S> {}

impl<S: SeqObject> FlatCombining<S> {
    /// Wraps `state`.
    pub fn new(state: S) -> Self {
        Self {
            lock: TasLock::new(),
            pub_head: AtomicPtr::new(core::ptr::null_mut()),
            state: UnsafeCell::new(state),
            registry: Mutex::new(Vec::new()),
            id: tls::new_instance_id(),
        }
    }

    /// This thread's publication record, linked into the list on first use.
    fn my_record(&self) -> *mut FcRecord<S> {
        tls::get_or_insert(self.id, || {
            let rec = Box::into_raw(Box::new(FcRecord::new()));
            self.registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(rec);
            // Link into the publication list (push-front, retried CAS).
            loop {
                let head = self.pub_head.load(Ordering::Acquire);
                // SAFETY: rec is unpublished until the CAS succeeds.
                unsafe { (*rec).next.store(head, Ordering::Relaxed) };
                if cas_ptr(&self.pub_head, head, rec).is_ok() {
                    break;
                }
            }
            rec as *mut ()
        }) as *mut FcRecord<S>
    }

    /// Applies `op` linearizably; blocks while a combiner works.
    pub fn apply(&self, op: S::Op) -> S::Ret {
        let rec = self.my_record();
        // SAFETY: our own record; status is EMPTY so no combiner reads it.
        unsafe {
            *(*rec).op.get() = Some(op);
            (*rec).status.store(PENDING, Ordering::Release);
        }
        let backoff = Backoff::new();
        loop {
            // SAFETY: record is registry-owned for the instance lifetime.
            if unsafe { (*rec).status.load(Ordering::Acquire) } == DONE {
                // SAFETY: DONE (acquire) happens-after the combiner's writes.
                let ret = unsafe { (*(*rec).ret.get()).take() };
                unsafe { (*rec).status.store(EMPTY, Ordering::Relaxed) };
                return ret.expect("combiner stored a result");
            }
            if let Some(guard) = self.lock.try_lock() {
                // We are the combiner; our own record is in the list, so one
                // scan completes our operation too.
                self.combine();
                drop(guard);
                debug_assert_eq!(unsafe { (*rec).status.load(Ordering::Relaxed) }, DONE);
            } else {
                backoff.snooze();
            }
        }
    }

    /// One combining pass: serve every pending record. Caller holds `lock`.
    fn combine(&self) {
        metrics::inc(Event::CombinerRound);
        // SAFETY below: holding the lock gives exclusive access to `state`;
        // PENDING (acquire) publishes the owner's op write.
        let state = unsafe { &mut *self.state.get() };
        let mut cur = self.pub_head.load(Ordering::Acquire);
        while !cur.is_null() {
            let rec = unsafe { &*cur };
            if rec.status.load(Ordering::Acquire) == PENDING {
                let op = unsafe { (*rec.op.get()).take() }.expect("pending record has an op");
                let ret = state.apply(op);
                metrics::inc(Event::OpsCombined);
                unsafe { *rec.ret.get() = Some(ret) };
                rec.status.store(DONE, Ordering::Release);
            }
            cur = rec.next.load(Ordering::Acquire);
        }
    }

    /// Exclusive access to the wrapped state (no concurrency possible).
    pub fn state_mut(&mut self) -> &mut S {
        self.state.get_mut()
    }

    /// Consumes the wrapper, returning the sequential state.
    pub fn into_inner(self) -> S {
        // Free the records ourselves, move the state out, and skip Drop so
        // the state is not dropped a second time.
        let registry =
            core::mem::take(&mut *self.registry.lock().unwrap_or_else(|e| e.into_inner()));
        for p in registry {
            // SAFETY: exclusive access by ownership; records are registry-owned.
            unsafe { drop(Box::from_raw(p)) };
        }
        // SAFETY: exclusive access by ownership; `forget` prevents a second
        // drop of the state (and of the now-empty registry).
        let state = unsafe { core::ptr::read(self.state.get()) };
        core::mem::forget(self);
        state
    }
}

impl<S: SeqObject> Drop for FlatCombining<S> {
    fn drop(&mut self) {
        let registry =
            core::mem::take(&mut *self.registry.lock().unwrap_or_else(|e| e.into_inner()));
        for p in registry {
            // SAFETY: exclusive access in drop; records are registry-owned.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{FifoOp, SeqCounter, SeqFifo};
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        let c = FlatCombining::new(SeqCounter::default());
        assert_eq!(c.apply(1), 0);
        assert_eq!(c.apply(10), 1);
        assert_eq!(c.apply(0), 11);
    }

    #[test]
    fn no_lost_updates_under_contention() {
        let c = Arc::new(FlatCombining::new(SeqCounter::default()));
        let threads = 8;
        let per = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.apply(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.apply(0), threads * per);
    }

    #[test]
    fn previous_values_are_unique() {
        let c = Arc::new(FlatCombining::new(SeqCounter::default()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..2_000).map(|_| c.apply(1)).collect::<Vec<_>>())
            })
            .collect();
        let mut seen: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8_000).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_behaviour_preserved() {
        let q = FlatCombining::new(SeqFifo::default());
        q.apply(FifoOp::Enq(1));
        q.apply(FifoOp::Enq(2));
        assert_eq!(q.apply(FifoOp::Deq), Some(1));
        assert_eq!(q.apply(FifoOp::Deq), Some(2));
        assert_eq!(q.apply(FifoOp::Deq), None);
    }

    #[test]
    fn fast_path_uses_no_atomics_when_served() {
        // A thread whose op is served by another combiner performs zero
        // RMW instructions — verify at least that a solo run performs only
        // the try-lock T&S per op (plus the one-time record link CAS).
        use lcrq_util::metrics::{self, Event};
        let c = FlatCombining::new(SeqCounter::default());
        c.apply(1); // force record creation + first combine
        metrics::flush();
        let before = metrics::snapshot();
        for _ in 0..10 {
            c.apply(1);
        }
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        assert_eq!(d.get(Event::Tas), 10, "one try-lock per solo op");
        assert_eq!(d.get(Event::CasAttempt), 0);
        assert_eq!(d.get(Event::Faa), 0);
    }

    #[test]
    fn into_inner_returns_final_state() {
        let c = FlatCombining::new(SeqCounter::default());
        c.apply(5);
        c.apply(6);
        let mut s = c.into_inner();
        assert_eq!(s.apply(0), 11);
    }

    #[test]
    fn reuse_after_combining_rounds() {
        let c = FlatCombining::new(SeqCounter::default());
        for i in 0..100 {
            assert_eq!(c.apply(1), i);
        }
    }

    #[test]
    fn drop_with_records_is_clean() {
        for _ in 0..50 {
            let c = FlatCombining::new(SeqCounter::default());
            c.apply(1);
        }
    }
}
