//! H-Synch (Fatourou & Kallimanis, PPoPP 2012): hierarchical combining.
//!
//! One CC-Synch request list per *cluster* (processor socket on the paper's
//! machine; simulated clusters here — see DESIGN.md P1) plus one global
//! lock. A thread announces on its own cluster's list; the thread promoted
//! to that cluster's combiner acquires the global lock and serves a batch of
//! its cluster's requests. Batching per cluster keeps the object's cache
//! lines on one socket for the duration of a batch, amortizing the expensive
//! cross-socket transfer — the same locality effect LCRQ+H gets without
//! locks.
//!
//! Threads declare their cluster with
//! [`lcrq_util::topology::set_current_cluster`]; undeclared threads use
//! cluster 0.

use core::cell::UnsafeCell;

use crate::list::{Announced, RequestList};
use crate::lock::TasLock;
use crate::seq::SeqObject;
use crate::DEFAULT_HELP_LIMIT;
use lcrq_util::topology::current_cluster;

/// A linearizable concurrent version of `S` built with hierarchical
/// (per-cluster) combining.
pub struct HSynch<S: SeqObject> {
    lists: Vec<RequestList<S>>,
    lock: TasLock,
    state: UnsafeCell<S>,
    help_limit: usize,
}

// SAFETY: `state` is only touched under `lock`; ops/results cross threads
// via the request lists' release/acquire edges.
unsafe impl<S: SeqObject + Send> Send for HSynch<S> {}
unsafe impl<S: SeqObject + Send> Sync for HSynch<S> {}

impl<S: SeqObject> HSynch<S> {
    /// Wraps `state` for `num_clusters` clusters with the default help limit.
    pub fn new(state: S, num_clusters: usize) -> Self {
        Self::with_help_limit(state, num_clusters, DEFAULT_HELP_LIMIT)
    }

    /// Wraps `state`; each cluster combiner serves at most `help_limit`
    /// requests per global-lock acquisition.
    pub fn with_help_limit(state: S, num_clusters: usize, help_limit: usize) -> Self {
        let num_clusters = num_clusters.max(1);
        Self {
            lists: (0..num_clusters).map(|_| RequestList::new()).collect(),
            lock: TasLock::new(),
            state: UnsafeCell::new(state),
            help_limit: help_limit.max(1),
        }
    }

    /// Number of clusters this instance was built for.
    pub fn num_clusters(&self) -> usize {
        self.lists.len()
    }

    /// Applies `op` linearizably. The calling thread's cluster is read from
    /// [`current_cluster`] (modulo the configured cluster count).
    pub fn apply(&self, op: S::Op) -> S::Ret {
        let cluster = current_cluster() % self.lists.len();
        match self.lists[cluster].announce(op) {
            Announced::Done(ret) => ret,
            Announced::Combine(start) => {
                let guard = self.lock.lock();
                // SAFETY: we are this cluster's combiner and hold the global
                // lock, so access to `state` is exclusive.
                let ret = unsafe {
                    self.lists[cluster].combine(start, &mut *self.state.get(), self.help_limit)
                };
                drop(guard);
                ret
            }
        }
    }

    /// Exclusive access to the wrapped state (no concurrency possible).
    pub fn state_mut(&mut self) -> &mut S {
        self.state.get_mut()
    }

    /// Consumes the wrapper, returning the sequential state.
    pub fn into_inner(self) -> S {
        self.state.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqCounter;
    use lcrq_util::topology::set_current_cluster;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        let c = HSynch::new(SeqCounter::default(), 4);
        assert_eq!(c.apply(2), 0);
        assert_eq!(c.apply(3), 2);
        assert_eq!(c.into_inner().apply(0), 5);
    }

    #[test]
    fn zero_clusters_clamped() {
        let c = HSynch::new(SeqCounter::default(), 0);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.apply(1), 0);
    }

    #[test]
    fn no_lost_updates_across_clusters() {
        let c = Arc::new(HSynch::new(SeqCounter::default(), 4));
        let threads = 8usize;
        let per = 4_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    set_current_cluster(t % 4);
                    for _ in 0..per {
                        c.apply(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let c = Arc::try_unwrap(c).ok().expect("sole owner");
        assert_eq!(c.into_inner().apply(0), threads as u64 * per);
    }

    #[test]
    fn previous_values_unique_across_clusters() {
        let c = Arc::new(HSynch::new(SeqCounter::default(), 2));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    set_current_cluster(t % 2);
                    (0..2_000).map(|_| c.apply(1)).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut seen: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8_000).collect::<Vec<_>>());
    }

    #[test]
    fn threads_beyond_cluster_count_wrap() {
        let c = HSynch::new(SeqCounter::default(), 2);
        set_current_cluster(7); // maps to list 7 % 2 = 1
        assert_eq!(c.apply(1), 0);
        set_current_cluster(0);
    }

    #[test]
    fn single_cluster_degenerates_to_ccsynch_behaviour() {
        let c = Arc::new(HSynch::new(SeqCounter::default(), 1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.apply(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let c = Arc::try_unwrap(c).ok().expect("sole owner");
        assert_eq!(c.into_inner().apply(0), 4_000);
    }
}
