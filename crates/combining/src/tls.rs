//! Thread-local pointer cache keyed by instance id.
//!
//! Combining constructions recycle one "spare" list node per (thread,
//! instance) pair. Instance ids are process-unique and never reused, so a
//! stale entry for a dropped instance is never dereferenced — lookups by a
//! live instance's id cannot alias it. The cache is bounded: least-recently
//! inserted entries are evicted first (they are only a cache; eviction just
//! costs the instance one fresh allocation).

use core::sync::atomic::{AtomicU64, Ordering};
use std::cell::RefCell;

const MAX_ENTRIES: usize = 64;

thread_local! {
    static CACHE: RefCell<Vec<(u64, *mut ())>> = const { RefCell::new(Vec::new()) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique instance id.
pub(crate) fn new_instance_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Returns the cached pointer for `instance`, or caches `init()`.
pub(crate) fn get_or_insert(instance: u64, init: impl FnOnce() -> *mut ()) -> *mut () {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some(&(_, p)) = c.iter().find(|(id, _)| *id == instance) {
            return p;
        }
        let p = init();
        if c.len() >= MAX_ENTRIES {
            c.remove(0);
        }
        c.push((instance, p));
        p
    })
}

/// Replaces the cached pointer for `instance` (which must already exist).
pub(crate) fn replace(instance: u64, ptr: *mut ()) {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some(entry) = c.iter_mut().find(|(id, _)| *id == instance) {
            entry.1 = ptr;
        } else {
            if c.len() >= MAX_ENTRIES {
                c.remove(0);
            }
            c.push((instance, ptr));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = new_instance_id();
        let b = new_instance_id();
        assert_ne!(a, b);
    }

    #[test]
    fn cache_round_trip() {
        let id = new_instance_id();
        let p1 = get_or_insert(id, || 0x10 as *mut ());
        assert_eq!(p1, 0x10 as *mut ());
        let p2 = get_or_insert(id, || 0x20 as *mut ());
        assert_eq!(p2, 0x10 as *mut (), "init must not rerun");
        replace(id, 0x30 as *mut ());
        let p3 = get_or_insert(id, || 0x40 as *mut ());
        assert_eq!(p3, 0x30 as *mut ());
    }

    #[test]
    fn eviction_keeps_cache_bounded() {
        let victim = new_instance_id();
        get_or_insert(victim, std::ptr::dangling_mut::<()>);
        for _ in 0..MAX_ENTRIES + 4 {
            let id = new_instance_id();
            get_or_insert(id, || 0x2 as *mut ());
        }
        // victim should have been evicted; init runs again.
        let p = get_or_insert(victim, || 0x99 as *mut ());
        assert_eq!(p, 0x99 as *mut ());
    }

    #[test]
    fn cache_is_thread_local() {
        let id = new_instance_id();
        get_or_insert(id, || 0xAA as *mut ());
        let from_other = std::thread::spawn(move || get_or_insert(id, || 0xBB as *mut ()) as usize)
            .join()
            .unwrap();
        assert_eq!(from_other, 0xBB);
        assert_eq!(get_or_insert(id, || 0xCC as *mut ()), 0xAA as *mut ());
    }
}
