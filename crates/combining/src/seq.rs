//! The sequential-object interface that combining constructions lift into
//! linearizable concurrent objects.

/// A sequential state machine: the "specification object" a universal
/// construction makes concurrent (Herlihy, 1991).
///
/// `apply` is only ever invoked by one thread at a time (the combiner), so
/// implementations need no internal synchronization.
pub trait SeqObject {
    /// Operation descriptor (e.g. `Enq(x)` / `Deq`).
    type Op: Send;
    /// Operation result.
    type Ret: Send;

    /// Applies one operation, mutating the state and producing its result.
    fn apply(&mut self, op: Self::Op) -> Self::Ret;
}

/// A trivial sequential counter, used by tests of every construction: the
/// final count proves no operation was lost or applied twice, and returned
/// previous-values prove each application was atomic.
#[derive(Debug, Default, Clone)]
pub struct SeqCounter {
    value: u64,
}

impl SeqObject for SeqCounter {
    type Op = u64;
    type Ret = u64;

    fn apply(&mut self, add: u64) -> u64 {
        let prev = self.value;
        self.value += add;
        prev
    }
}

/// A sequential FIFO queue over `u64`, for construction tests.
#[derive(Debug, Default, Clone)]
pub struct SeqFifo {
    items: std::collections::VecDeque<u64>,
}

/// Operation for [`SeqFifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoOp {
    /// Append a value.
    Enq(u64),
    /// Remove the oldest value.
    Deq,
}

impl SeqObject for SeqFifo {
    type Op = FifoOp;
    type Ret = Option<u64>;

    fn apply(&mut self, op: FifoOp) -> Option<u64> {
        match op {
            FifoOp::Enq(v) => {
                self.items.push_back(v);
                None
            }
            FifoOp::Deq => self.items.pop_front(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_returns_previous() {
        let mut c = SeqCounter::default();
        assert_eq!(c.apply(5), 0);
        assert_eq!(c.apply(3), 5);
        assert_eq!(c.apply(0), 8);
    }

    #[test]
    fn fifo_is_fifo() {
        let mut q = SeqFifo::default();
        assert_eq!(q.apply(FifoOp::Deq), None);
        q.apply(FifoOp::Enq(1));
        q.apply(FifoOp::Enq(2));
        assert_eq!(q.apply(FifoOp::Deq), Some(1));
        assert_eq!(q.apply(FifoOp::Deq), Some(2));
        assert_eq!(q.apply(FifoOp::Deq), None);
    }
}
