//! The SWAP-based request list shared by CC-Synch and H-Synch.
//!
//! Threads append themselves to a singly linked list with an atomic SWAP on
//! the tail — an always-succeeding instruction, which is why Fatourou &
//! Kallimanis's constructions have constant synchronization cost per
//! operation regardless of contention. The thread whose node reaches the
//! head of the list becomes the *combiner* and serves up to `h` queued
//! requests before handing the role to the next waiting thread.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicPtr, AtomicU8, Ordering};
use lcrq_atomic::ops::ptr::swap_ptr;
use lcrq_util::metrics::{self, Event};
use lcrq_util::Backoff;
use std::sync::Mutex;

use crate::seq::SeqObject;
use crate::tls;

/// Node status: owner spins while `WAITING`; the combiner moves it to `DONE`
/// (request applied, result available) or `COMBINER` (role hand-off).
const WAITING: u8 = 0;
const COMBINER: u8 = 1;
const DONE: u8 = 2;

pub(crate) struct Node<S: SeqObject> {
    status: AtomicU8,
    next: AtomicPtr<Node<S>>,
    op: UnsafeCell<Option<S::Op>>,
    ret: UnsafeCell<Option<S::Ret>>,
}

impl<S: SeqObject> Node<S> {
    fn new(status: u8) -> Self {
        Self {
            status: AtomicU8::new(status),
            next: AtomicPtr::new(core::ptr::null_mut()),
            op: UnsafeCell::new(None),
            ret: UnsafeCell::new(None),
        }
    }
}

/// Outcome of announcing a request.
pub(crate) enum Announced<S: SeqObject> {
    /// Another combiner applied our request; here is the result.
    Done(S::Ret),
    /// We are the combiner; serve the list starting from our own node.
    Combine(*mut Node<S>),
}

/// A request list instance. `S`'s state lives with the caller (CC-Synch owns
/// it directly; H-Synch shares one state among several lists).
pub(crate) struct RequestList<S: SeqObject> {
    tail: AtomicPtr<Node<S>>,
    /// Every node ever allocated for this list, freed on drop.
    registry: Mutex<Vec<*mut Node<S>>>,
    id: u64,
}

// SAFETY: nodes are shared across threads but all cross-thread access is
// mediated by the status/next atomics with acquire/release pairs.
unsafe impl<S: SeqObject> Send for RequestList<S> {}
unsafe impl<S: SeqObject> Sync for RequestList<S> {}

impl<S: SeqObject> RequestList<S> {
    pub(crate) fn new() -> Self {
        let list = Self {
            tail: AtomicPtr::new(core::ptr::null_mut()),
            registry: Mutex::new(Vec::new()),
            id: tls::new_instance_id(),
        };
        // Initial dummy: whoever swaps it out becomes the first combiner.
        let dummy = list.alloc(COMBINER);
        list.tail.store(dummy, Ordering::Release);
        list
    }

    fn alloc(&self, status: u8) -> *mut Node<S> {
        let p = Box::into_raw(Box::new(Node::new(status)));
        self.registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(p);
        p
    }

    /// This thread's spare node for this list (allocated on first use).
    fn spare(&self) -> *mut Node<S> {
        tls::get_or_insert(self.id, || self.alloc(WAITING) as *mut ()) as *mut Node<S>
    }

    /// Announces `op` and waits until it is either applied (`Done`) or this
    /// thread is promoted to combiner (`Combine`).
    pub(crate) fn announce(&self, op: S::Op) -> Announced<S> {
        let next_node = self.spare();
        // SAFETY: the spare node is owned by this thread until the SWAP
        // publishes it; afterwards only status/next are touched by others.
        unsafe {
            (*next_node)
                .next
                .store(core::ptr::null_mut(), Ordering::Relaxed);
            (*next_node).status.store(WAITING, Ordering::Relaxed);
        }
        let cur_node = swap_ptr(&self.tail, next_node);
        // Most damaging preemption point: we hold the list position every
        // later arrival depends on, but have not yet published our request.
        lcrq_util::adversary::preempt_point();
        // SAFETY: cur_node was the tail; by protocol its previous owner will
        // never touch op/ret/next again — they are ours to write until the
        // release-store of `next` publishes them to the combiner.
        unsafe {
            *(*cur_node).op.get() = Some(op);
            (*cur_node).next.store(next_node, Ordering::Release);
        }
        // cur_node becomes this thread's spare for the next call.
        tls::replace(self.id, cur_node as *mut ());

        let backoff = Backoff::new();
        loop {
            // SAFETY: cur_node stays valid (registry-owned) for list lifetime.
            let status = unsafe { (*cur_node).status.load(Ordering::Acquire) };
            match status {
                WAITING => backoff.snooze(),
                DONE => {
                    // SAFETY: DONE (acquire) happens-after the combiner's
                    // write of ret.
                    let ret = unsafe { (*(*cur_node).ret.get()).take() };
                    return Announced::Done(ret.expect("combiner stored a result"));
                }
                _ => return Announced::Combine(cur_node),
            }
        }
    }

    /// Serves requests starting at `start` (inclusive), applying at most `h`
    /// of them to `state`, then hands the combiner role onward. Returns the
    /// result of `start`'s own request.
    ///
    /// # Safety
    ///
    /// The caller must hold the combiner role for this list (obtained via
    /// [`Announced::Combine`]) and must have exclusive access to `state`
    /// among combiners (CC-Synch: implied; H-Synch: global lock).
    pub(crate) unsafe fn combine(&self, start: *mut Node<S>, state: &mut S, h: usize) -> S::Ret {
        metrics::inc(Event::CombinerRound);
        let h = h.max(1); // the combiner always serves at least itself
        let mut my_ret: Option<S::Ret> = None;
        let mut cur = start;
        let mut served = 0usize;
        loop {
            // SAFETY: combiner exclusively walks the published prefix.
            let next = unsafe { (*cur).next.load(Ordering::Acquire) };
            if next.is_null() || served >= h {
                break;
            }
            served += 1;
            // SAFETY: next != null (acquire) publishes the owner's op write.
            let op = unsafe { (*(*cur).op.get()).take() }.expect("announced node has an op");
            let ret = state.apply(op);
            metrics::inc(Event::OpsCombined);
            if cur == start {
                my_ret = Some(ret);
                // Our own node: no need to publish DONE to ourselves, but we
                // must not hand the combiner role to it either; just move on.
                unsafe { (*cur).status.store(DONE, Ordering::Relaxed) };
            } else {
                // SAFETY: write ret before releasing DONE.
                unsafe {
                    *(*cur).ret.get() = Some(ret);
                    (*cur).status.store(DONE, Ordering::Release);
                }
            }
            cur = next;
        }
        // Hand off: `cur` is either the current tail dummy (its future owner
        // combines immediately on arrival) or the first unserved node (its
        // owner is promoted now).
        unsafe { (*cur).status.store(COMBINER, Ordering::Release) };
        my_ret.expect("combiner serves at least its own request")
    }
}

impl<S: SeqObject> Drop for RequestList<S> {
    fn drop(&mut self) {
        let registry =
            core::mem::take(&mut *self.registry.lock().unwrap_or_else(|e| e.into_inner()));
        for p in registry {
            // SAFETY: exclusive access in drop; every node is registry-owned.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}
