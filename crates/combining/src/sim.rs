//! P-Sim — Fatourou & Kallimanis's *wait-free* universal construction
//! (SPAA 2011), the engine behind SimQueue (paper §2, related work).
//!
//! Unlike CC-Synch (blocking) and flat combining (blocking), Sim is
//! wait-free: every operation completes within a bounded number of its own
//! steps regardless of scheduling. The trick is announce-and-toggle:
//!
//! 1. a thread publishes its request in its announce slot, then flips its
//!    bit in a shared *toggles* word with an atomic XOR — an
//!    always-succeeding RMW, playing the same role F&A plays in LCRQ;
//! 2. it then runs at most **two** rounds of: snapshot the current state
//!    record, clone the object locally, apply every request whose toggle
//!    bit differs from the record's applied-set, and CAS the new record in;
//! 3. if both its CASes fail, each failure was caused by another thread's
//!    successful CAS that *started from a record published after this
//!    thread's XOR* — so the second winner must have read the toggles after
//!    the XOR and already applied the request. The result is waiting in the
//!    current record.
//!
//! The cost is copying the whole object state on every round (the authors'
//! specialized SimQueue avoids full copies; this generic form keeps them,
//! which is faithful to P-Sim and fine for the near-empty queues of the
//! paper's workloads). State records *and* announce cells are reclaimed
//! with this repository's hazard pointers: a combiner may dereference
//! another thread's announce while the owner is already publishing its next
//! request, so announces are retired, never freed in place.
//!
//! Capacity: at most [`MAX_SIM_THREADS`] distinct threads may ever use one
//! instance (one toggle bit each); exceeding that panics.

use core::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use lcrq_hazard::Domain;
use lcrq_util::metrics::{self, Event};

use crate::seq::SeqObject;

/// Maximum distinct threads per [`Sim`] instance (one toggle bit each).
pub const MAX_SIM_THREADS: usize = 64;

/// Hazard slot for the current state record.
const HP_RECORD: usize = 0;
/// Hazard slot for the announce cell being read by a combiner.
const HP_ANNOUNCE: usize = 1;

struct Record<S: SeqObject> {
    state: S,
    /// Toggle snapshot this record has applied.
    applied: u64,
    /// Latest return value per thread slot.
    rets: Vec<Option<S::Ret>>,
}

/// A wait-free linearizable version of the sequential object `S`
/// (`S: Clone` because every combining round copies the state).
pub struct Sim<S: SeqObject + Clone + Send>
where
    S::Op: Clone + Send,
    S::Ret: Clone + Send,
{
    current: AtomicPtr<Record<S>>,
    toggles: AtomicU64,
    announce: Vec<AtomicPtr<S::Op>>,
    next_slot: AtomicUsize,
    domain: Domain,
    /// Process-unique instance id, keying the thread-local slot cache.
    id: u64,
}

// SAFETY: records and announces are immutable once published and reclaimed
// via hazard pointers; slots are assigned uniquely per thread.
unsafe impl<S: SeqObject + Clone + Send> Send for Sim<S>
where
    S::Op: Clone + Send,
    S::Ret: Clone + Send,
{
}
unsafe impl<S: SeqObject + Clone + Send> Sync for Sim<S>
where
    S::Op: Clone + Send,
    S::Ret: Clone + Send,
{
}

thread_local! {
    /// (instance id, slot) cache; instance ids are never reused.
    static MY_SLOTS: std::cell::RefCell<Vec<(u64, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

static SIM_IDS: AtomicU64 = AtomicU64::new(1);

impl<S: SeqObject + Clone + Send> Sim<S>
where
    S::Op: Clone + Send,
    S::Ret: Clone + Send,
{
    /// Wraps `state`.
    pub fn new(state: S) -> Self {
        let record = Box::into_raw(Box::new(Record {
            state,
            applied: 0,
            rets: vec![None; MAX_SIM_THREADS],
        }));
        Self {
            current: AtomicPtr::new(record),
            toggles: AtomicU64::new(0),
            announce: (0..MAX_SIM_THREADS)
                .map(|_| AtomicPtr::new(core::ptr::null_mut()))
                .collect(),
            next_slot: AtomicUsize::new(0),
            domain: Domain::new(),
            id: SIM_IDS.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn my_slot(&self) -> usize {
        let id = self.id;
        MY_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some(&(_, s)) = slots.iter().find(|(inst, _)| *inst == id) {
                return s;
            }
            let s = self.next_slot.fetch_add(1, Ordering::Relaxed);
            assert!(
                s < MAX_SIM_THREADS,
                "Sim instance used by more than {MAX_SIM_THREADS} threads"
            );
            slots.push((id, s));
            s
        })
    }

    /// Applies `op`, wait-free: at most two combining rounds of own steps.
    pub fn apply(&self, op: S::Op) -> S::Ret {
        let slot = self.my_slot();
        // Publish the request, then flip our toggle. The old announce may
        // still be read by a stale combiner: retire it, never free inline.
        let op_ptr = Box::into_raw(Box::new(op));
        let old_announce = self.announce[slot].swap(op_ptr, Ordering::SeqCst);
        if !old_announce.is_null() {
            // SAFETY: unreachable from the slot; hazards defer the free.
            unsafe { self.domain.retire(old_announce) };
        }
        metrics::inc(Event::Faa); // the XOR plays F&A's always-succeeds role
        let new_toggles = self.toggles.fetch_xor(1 << slot, Ordering::SeqCst) ^ (1 << slot);
        let my_bit = new_toggles & (1 << slot);

        for _round in 0..2 {
            let cur = self.domain.protect(HP_RECORD, &self.current);
            // SAFETY: hazard-protected; records are immutable after publish.
            let cur_ref = unsafe { &*cur };
            if cur_ref.applied & (1 << slot) == my_bit {
                break; // our op is already applied
            }
            // Clone state and apply every pending request. Reading toggles
            // *after* protecting the record is what makes the two-round
            // wait-freedom argument go through.
            let mut state = cur_ref.state.clone();
            let mut rets = cur_ref.rets.clone();
            let toggles = self.toggles.load(Ordering::SeqCst);
            let pending = toggles ^ cur_ref.applied;
            metrics::inc(Event::CombinerRound);
            for (j, ret) in rets.iter_mut().enumerate() {
                if pending & (1 << j) == 0 {
                    continue;
                }
                // Protect the announce cell: its owner may retire it at any
                // moment by publishing a newer request.
                let req = self.domain.protect(HP_ANNOUNCE, &self.announce[j]);
                debug_assert!(
                    !req.is_null(),
                    "a pending toggle implies a published announce"
                );
                // SAFETY: hazard-protected; announces are immutable.
                let op = unsafe { (*req).clone() };
                self.domain.clear(HP_ANNOUNCE);
                // Note: `op` may already be j's *next* request if j was
                // served concurrently — but then the current record moved
                // past `cur` and our CAS below must fail, so the speculative
                // application is never published.
                *ret = Some(state.apply(op));
                metrics::inc(Event::OpsCombined);
            }
            let new = Box::into_raw(Box::new(Record {
                state,
                applied: toggles,
                rets,
            }));
            metrics::inc(Event::CasAttempt);
            match self
                .current
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    // SAFETY: `cur` is unreachable from `current` now.
                    unsafe { self.domain.retire(cur) };
                    break;
                }
                Err(_) => {
                    metrics::inc(Event::CasFailure);
                    // SAFETY: `new` was never published.
                    unsafe { drop(Box::from_raw(new)) };
                }
            }
        }
        // Our result is in the (now-)current record; by the wait-freedom
        // argument the applied bit matches after at most two rounds.
        let ret = loop {
            let cur = self.domain.protect(HP_RECORD, &self.current);
            // SAFETY: hazard-protected.
            let cur_ref = unsafe { &*cur };
            if cur_ref.applied & (1 << slot) == my_bit {
                break cur_ref.rets[slot].clone().expect("applied op has a result");
            }
            core::hint::spin_loop();
        };
        self.domain.clear(HP_RECORD);
        ret
    }
}

impl<S: SeqObject + Clone + Send> Drop for Sim<S>
where
    S::Op: Clone + Send,
    S::Ret: Clone + Send,
{
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; retired records/announces are
        // freed when `domain` drops.
        unsafe {
            drop(Box::from_raw(*self.current.get_mut()));
            for a in &self.announce {
                let p = a.load(Ordering::Relaxed);
                if !p.is_null() {
                    drop(Box::from_raw(p));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{FifoOp, SeqCounter, SeqFifo};
    use std::sync::Arc;

    #[test]
    fn sequential_counter_semantics() {
        let c = Sim::new(SeqCounter::default());
        assert_eq!(c.apply(5), 0);
        assert_eq!(c.apply(3), 5);
        assert_eq!(c.apply(0), 8);
    }

    #[test]
    fn sequential_fifo_semantics() {
        let q = Sim::new(SeqFifo::default());
        assert_eq!(q.apply(FifoOp::Deq), None);
        q.apply(FifoOp::Enq(1));
        q.apply(FifoOp::Enq(2));
        assert_eq!(q.apply(FifoOp::Deq), Some(1));
        assert_eq!(q.apply(FifoOp::Deq), Some(2));
        assert_eq!(q.apply(FifoOp::Deq), None);
    }

    #[test]
    fn no_lost_updates_under_contention() {
        let c = Arc::new(Sim::new(SeqCounter::default()));
        let threads = 6;
        let per = 3_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.apply(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.apply(0), threads * per);
    }

    #[test]
    fn previous_values_are_unique() {
        let c = Arc::new(Sim::new(SeqCounter::default()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..1_500).map(|_| c.apply(1)).collect::<Vec<_>>())
            })
            .collect();
        let mut seen: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..6_000).collect::<Vec<_>>());
    }

    #[test]
    fn instances_do_not_interfere() {
        let a = Sim::new(SeqCounter::default());
        let b = Sim::new(SeqCounter::default());
        a.apply(10);
        b.apply(20);
        assert_eq!(a.apply(0), 10);
        assert_eq!(b.apply(0), 20);
    }

    #[test]
    fn reuse_by_sequential_threads_stays_within_slot_budget() {
        let c = Arc::new(Sim::new(SeqCounter::default()));
        for _ in 0..16 {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.apply(1)).join().unwrap();
        }
        assert_eq!(c.apply(0), 16);
    }

    #[test]
    fn drop_after_use_is_clean() {
        for _ in 0..30 {
            let c = Sim::new(SeqCounter::default());
            c.apply(1);
        }
    }
}
