//! Model-checked interleavings of the `RingPool` versioned Treiber stack,
//! run by the ci.sh loom gate:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lcrq-core --test loom -q
//! ```
//!
//! The property under test is exactly-once hand-off through the pop ABA
//! window: a popper reads `top = (v, A)` and `A.next`, then CASes
//! `(v, A) -> (v+1, next)`. Without the version word, a concurrent
//! pop/re-push of `A` would let that stale CAS succeed and corrupt the
//! stack; the version forces it to fail. These models drive poppers and
//! re-pushers through that window and assert no ring is ever delivered
//! twice or lost. Under `--cfg loom` every `AtomicPair` op goes through
//! the instrumented seqlock fallback and the pool's shard striping is
//! keyed by model thread id, so schedules replay deterministically.
#![cfg(loom)]

use lcrq_core::config::LcrqConfig;
use lcrq_core::crq::Crq;
use lcrq_core::pool::RingPool;
use lcrq_hazard::Domain;
use lcrq_util::model::{thread, Builder};
use std::sync::Arc;

fn ring() -> Box<Crq> {
    Box::new(Crq::new(&LcrqConfig::new().with_ring_order(2)))
}

/// Pops one ring and returns its address (the Box is re-materialized by
/// the caller so rings can be compared across threads).
fn pop_addr(pool: &RingPool, domain: &Domain) -> Option<usize> {
    pool.pop(domain, 0).map(|r| Box::into_raw(r) as usize)
}

/// Reclaims a ring previously leaked by [`pop_addr`].
///
/// # Safety
/// `addr` must come from `pop_addr` and not have been freed already.
unsafe fn free_addr(addr: usize) {
    drop(Box::from_raw(addr as *mut Crq));
}

#[test]
fn two_racing_poppers_get_distinct_rings() {
    let report = Builder {
        max_executions: 2_000,
        ..Builder::new()
    }
    .check(|| {
        // Capacity 3 => 3 shards. The root (model tid 0) pushes three
        // rings: the first parks in shard[0], the rest go to the Treiber
        // stack — which tids 1 and 2 (shards empty) then race to pop.
        let pool = RingPool::new(3);
        let domain = Arc::new(Domain::new());
        for _ in 0..3 {
            assert!(pool.push(ring()).is_ok());
        }
        let (p1, d1) = (Arc::clone(&pool), Arc::clone(&domain));
        let (p2, d2) = (Arc::clone(&pool), Arc::clone(&domain));
        let t1 = thread::spawn(move || pop_addr(&p1, &d1));
        let t2 = thread::spawn(move || pop_addr(&p2, &d2));
        let a = t1.join().unwrap().expect("popper 1 found the stack empty");
        let b = t2.join().unwrap().expect("popper 2 found the stack empty");
        assert_ne!(a, b, "one ring delivered to two poppers");
        assert_eq!(pool.len(), 1, "a ring was lost or double-counted");
        let c = pop_addr(&pool, &domain).expect("third ring");
        assert_ne!(c, a);
        assert_ne!(c, b);
        // SAFETY: each address was popped (hence exclusively owned) and is
        // freed exactly once.
        unsafe {
            free_addr(a);
            free_addr(b);
            free_addr(c);
        }
    });
    assert!(
        report.executions > 1,
        "must explore >1 interleaving: {report:?}"
    );
}

#[test]
fn stale_version_cas_is_defeated_by_pop_repush() {
    let report = Builder {
        max_executions: 2_000,
        ..Builder::new()
    }
    .check(|| {
        // Capacity 4 => 4 shards. The root fills shard[0] and leaves three
        // rings on the stack. Thread 1 pops twice and pushes both back
        // (its first push lands in its empty shard[1], forcing the second
        // back onto the *stack* — re-creating the classic ABA shape where
        // a previously-seen head pointer returns with a bumped version).
        // Thread 2 pops once, concurrently, possibly holding a stale
        // (version, ptr) snapshot across the whole dance.
        let pool = RingPool::new(4);
        let domain = Arc::new(Domain::new());
        for _ in 0..4 {
            assert!(pool.push(ring()).is_ok());
        }
        let (p1, d1) = (Arc::clone(&pool), Arc::clone(&domain));
        let (p2, d2) = (Arc::clone(&pool), Arc::clone(&domain));
        let t1 = thread::spawn(move || {
            let a = p1.pop(&d1, 0).expect("cycler pop 1");
            let b = p1.pop(&d1, 0).expect("cycler pop 2");
            assert!(p1.push(a).is_ok());
            assert!(p1.push(b).is_ok());
        });
        let t2 = thread::spawn(move || pop_addr(&p2, &d2));
        t1.join().unwrap();
        let stolen = t2.join().unwrap().expect("racer pop");
        // The cycler's net effect is zero, so exactly 3 rings remain and
        // none of them may alias the racer's ring (exactly-once).
        assert_eq!(pool.len(), 3, "ABA corrupted the stack length");
        let mut rest = Vec::new();
        while let Some(addr) = pop_addr(&pool, &domain) {
            rest.push(addr);
        }
        assert_eq!(rest.len(), 3, "a ring was lost in the ABA window");
        for &r in &rest {
            assert_ne!(r, stolen, "ring delivered twice through a stale CAS");
        }
        // All survivors distinct among themselves, too.
        let mut sorted = rest.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "duplicate ring in the drained stack");
        // SAFETY: every address was popped exactly once above.
        unsafe {
            free_addr(stolen);
            for r in rest {
                free_addr(r);
            }
        }
    });
    assert!(report.executions > 1);
}
