//! LSCQ — an unbounded MS-style linked list of [`ScqD`] rings, the
//! portable sibling of [`Lcrq`](crate::Lcrq).
//!
//! Structure and protocol mirror the LCRQ (lcrq.rs) exactly: enqueuers
//! work in the tail ring and race to append a fresh ring — pre-seeded with
//! their item — when it tantrums; dequeuers drain the head ring and swing
//! past it when empty, retiring abandoned rings through hazard pointers.
//! Two SCQ-specific twists:
//!
//! * The abandonment double-check (the December-2013 LCRQ erratum) first
//!   **re-arms the ring's threshold counter**: a racing enqueue may have
//!   published its entry but not yet reset the threshold, and an exhausted
//!   counter would otherwise let the double-check report EMPTY without
//!   scanning — losing the item when `head` swings past the ring. With the
//!   ring already closed its tail is frozen, so the forced scan terminates.
//!   (Nikolaev's unbounded SCQ does the same.)
//! * There is no recycling pool: rings are plain heap boxes, freed through
//!   the hazard [`Domain`] once no dequeuer can still hold them.
//!
//! Because SCQ needs only single-word atomics, this is the one unbounded
//! queue in the repo that would run on non-x86 targets unchanged.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use lcrq_atomic::{ops, CasLoopFaa, FaaPolicy, HardwareFaa};
use lcrq_hazard::Domain;
use lcrq_queues::EnqueueError;
use lcrq_util::backoff::Backoff;
use lcrq_util::metrics::{self, Event};
use lcrq_util::CachePadded;

use crate::config::LcrqConfig;
use crate::scq::ScqD;
use crate::BOTTOM;

/// The unbounded SCQ list with hardware fetch-and-add.
pub type Lscq = LscqGeneric<HardwareFaa>;

/// LSCQ-CAS: the identical algorithm with F&A emulated by a CAS loop,
/// mirroring [`LcrqCas`](crate::LcrqCas) for the ablation.
pub type LscqCas = LscqGeneric<CasLoopFaa>;

/// An unbounded, linearizable, nonblocking MPMC FIFO queue of `u64` values
/// (`< BOTTOM`) built from linked [`ScqD`] rings — single-word CAS only.
///
/// ```
/// use lcrq_core::Lscq;
/// let q = Lscq::new();
/// q.enqueue(10);
/// assert_eq!(q.dequeue(), Some(10));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct LscqGeneric<P: FaaPolicy> {
    head: CachePadded<AtomicPtr<ScqD<P>>>,
    tail: CachePadded<AtomicPtr<ScqD<P>>>,
    domain: Domain,
    config: LcrqConfig,
    /// Queue-level shutdown flag; same fence protocol as
    /// [`LcrqGeneric::close`](crate::LcrqGeneric::close).
    closed: AtomicBool,
}

/// Hazard slot used for the ring an operation is about to access.
const HP_SLOT: usize = 0;

impl<P: FaaPolicy> LscqGeneric<P> {
    /// Creates an empty queue with the default [`LcrqConfig`].
    pub fn new() -> Self {
        Self::with_config(LcrqConfig::default())
    }

    /// Creates an empty queue with an explicit configuration
    /// (`ring_order` sets the per-ring capacity; the LCRQ-only knobs —
    /// starvation limit, bounded wait, hierarchy, ring pool — are ignored).
    pub fn with_config(config: LcrqConfig) -> Self {
        let first = Box::into_raw(Box::new(ScqD::<P>::new(&config)));
        Self {
            head: CachePadded::new(AtomicPtr::new(first)),
            tail: CachePadded::new(AtomicPtr::new(first)),
            domain: Domain::new(),
            config,
            closed: AtomicBool::new(false),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LcrqConfig {
        &self.config
    }

    /// The queue's hazard-pointer domain (diagnostic: lets tests assert the
    /// calling thread's retired-ring backlog stays within the domain's
    /// reclamation threshold even while other participants are stalled
    /// holding published hazards).
    pub fn hazard_domain(&self) -> &Domain {
        &self.domain
    }

    /// Appends `value` (must be `< BOTTOM`).
    ///
    /// # Panics
    ///
    /// Panics if the queue has been [`close`](Self::close)d; use
    /// [`try_enqueue`](Self::try_enqueue) when shutdown is possible.
    pub fn enqueue(&self, value: u64) {
        if self.try_enqueue(value).is_err() {
            panic!("enqueue on a closed Lscq (use try_enqueue to handle shutdown)");
        }
    }

    /// Appends `value` (must be `< BOTTOM`) unless the queue has been
    /// [`close`](Self::close)d, in which case the value is handed back as
    /// `Err(value)`. Same shutdown fence as
    /// [`LcrqGeneric::try_enqueue`](crate::LcrqGeneric::try_enqueue): the
    /// closed flag is re-checked after a ring tantrum, so no enqueuer can
    /// append a fresh ring to a closed queue.
    pub fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        let mut backoff: Option<Backoff> = None;
        loop {
            match self.try_enqueue_fallible(value) {
                Ok(()) => return Ok(()),
                Err(EnqueueError::Closed(v)) => return Err(v),
                Err(EnqueueError::AllocFailed(_)) => {
                    // Transient (injected) refusal: back off and retry,
                    // preserving the "closed is the only failure" contract.
                    backoff.get_or_insert_with(Backoff::jittered).spin();
                }
            }
        }
    }

    /// Like [`try_enqueue`](Self::try_enqueue), but also surfaces a refused
    /// ring allocation as [`EnqueueError::AllocFailed`] instead of retrying
    /// internally (the refusal exists today only as the `ring-alloc` fail
    /// point — the LSCQ has no recycling pool, so every spill allocates).
    /// The queue stays open after an `AllocFailed`; the value is handed
    /// back unplaced.
    pub fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        assert!(value != BOTTOM, "BOTTOM (u64::MAX) is reserved");
        let mut backoff: Option<Backoff> = None;
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(EnqueueError::Closed(value));
            }
            let ring = self.domain.protect(HP_SLOT, &self.tail);
            // SAFETY: hazard-protected, so it cannot be reclaimed while we
            // use it.
            let ring_ref = unsafe { &*ring };
            // Help a half-finished append: tail must point at the last ring.
            let next = ring_ref.next.load(Ordering::SeqCst);
            if !next.is_null() {
                let _ = ops::ptr::cas_ptr(&self.tail, ring, next);
                continue;
            }
            if ring_ref.enqueue(value).is_ok() {
                self.domain.clear(HP_SLOT);
                return Ok(());
            }
            // Ring closed. Distinguish shutdown close from tantrum close:
            // if the *queue* is closed, fail instead of linking a new ring.
            if self.closed.load(Ordering::SeqCst) {
                self.domain.clear(HP_SLOT);
                return Err(EnqueueError::Closed(value));
            }
            // Fail point in the close-race window: between observing the
            // tantrum and racing to link a replacement ring.
            let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::CloseRace);
            if lcrq_util::fault::inject(lcrq_util::fault::Site::RingAlloc) {
                metrics::inc(Event::AllocDegraded);
                self.domain.clear(HP_SLOT);
                return Err(EnqueueError::AllocFailed(value));
            }
            // Tantrum: race to append a fresh ring seeded with the value.
            let newring = Box::into_raw(Box::new(ScqD::<P>::with_seed(
                &self.config,
                core::slice::from_ref(&value),
            )));
            match ops::ptr::cas_ptr(&ring_ref.next, core::ptr::null_mut(), newring) {
                Ok(()) => {
                    let _ = ops::ptr::cas_ptr(&self.tail, ring, newring);
                    self.domain.clear(HP_SLOT);
                    return Ok(());
                }
                Err(_) => {
                    // Another enqueuer linked first; ours was never
                    // published, so a plain drop suffices.
                    // SAFETY: unpublished and uniquely owned.
                    drop(unsafe { Box::from_raw(newring) });
                    // Lost link race: bounded jittered backoff before the
                    // next round de-synchronizes the contenders.
                    backoff.get_or_insert_with(Backoff::jittered).spin();
                }
            }
        }
    }

    /// Closes the queue for further enqueues: every subsequent
    /// [`try_enqueue`](Self::try_enqueue) fails and [`enqueue`](Self::enqueue)
    /// panics, while dequeues keep draining what was already placed.
    /// Returns `true` on the first call. The flag-then-close-the-chain
    /// protocol (and its no-lost-item argument) is identical to
    /// [`LcrqGeneric::close`](crate::LcrqGeneric::close).
    pub fn close(&self) -> bool {
        if self.closed.swap(true, Ordering::SeqCst) {
            return false;
        }
        loop {
            let ring = self.domain.protect(HP_SLOT, &self.tail);
            // SAFETY: hazard-protected.
            let ring_ref = unsafe { &*ring };
            ring_ref.close();
            let next = ring_ref.next.load(Ordering::SeqCst);
            if next.is_null() {
                self.domain.clear(HP_SLOT);
                return true;
            }
            let _ = ops::ptr::cas_ptr(&self.tail, ring, next);
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Removes the oldest value, or `None` when the queue is empty.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let ring = self.domain.protect(HP_SLOT, &self.head);
            // SAFETY: hazard-protected.
            let ring_ref = unsafe { &*ring };
            if let Some(v) = ring_ref.dequeue() {
                self.domain.clear(HP_SLOT);
                return Some(v);
            }
            let next = ring_ref.next.load(Ordering::SeqCst);
            if next.is_null() {
                self.domain.clear(HP_SLOT);
                return None;
            }
            // Abandonment double-check (the LCRQ erratum), SCQ edition:
            // re-arm the threshold first so the check actually scans — a
            // racing enqueue may have published its entry without yet
            // resetting the counter. The ring is closed (it has a `next`),
            // so its tail is frozen and the scan terminates.
            ring_ref.reset_threshold();
            if let Some(v) = ring_ref.dequeue() {
                self.domain.clear(HP_SLOT);
                return Some(v);
            }
            if ops::ptr::cas_ptr(&self.head, ring, next).is_ok() {
                self.domain.clear(HP_SLOT);
                // SAFETY: `ring` is now unreachable from the queue; hazard
                // retirement defers the free past any straggling readers.
                unsafe { self.domain.retire(ring) };
            } else {
                self.domain.clear(HP_SLOT);
            }
        }
    }

    /// Whether the queue appears empty (racy snapshot; `dequeue` is the
    /// linearizable way to observe emptiness).
    pub fn is_empty_hint(&self) -> bool {
        let ring = self.domain.protect(HP_SLOT, &self.head);
        // SAFETY: hazard-protected.
        let ring_ref = unsafe { &*ring };
        let empty = ring_ref.head_index() >= ring_ref.tail_index()
            && ring_ref.next.load(Ordering::SeqCst).is_null();
        self.domain.clear(HP_SLOT);
        empty
    }

    /// Number of rings currently linked (diagnostic; racy).
    pub fn ring_count(&self) -> usize {
        let mut count = 0;
        let mut cur = self.head.load(Ordering::SeqCst);
        while !cur.is_null() {
            count += 1;
            // SAFETY: only used in quiescent diagnostics/tests.
            cur = unsafe { (*cur).next.load(Ordering::SeqCst) };
        }
        count
    }

    /// Returns an iterator that dequeues until the queue reports empty
    /// (repeated [`dequeue`](Self::dequeue); safe under concurrency).
    pub fn drain(&self) -> Drain<'_, P> {
        Drain { queue: self }
    }
}

impl<P: FaaPolicy> Default for LscqGeneric<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: FaaPolicy> core::fmt::Debug for LscqGeneric<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Lscq")
            .field("faa_policy", &P::name())
            .field("ring_order", &self.config.ring_order)
            .field("rings", &self.ring_count())
            .finish()
    }
}

impl<P: FaaPolicy> FromIterator<u64> for LscqGeneric<P> {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let q = Self::new();
        for v in iter {
            q.enqueue(v);
        }
        q
    }
}

impl<P: FaaPolicy> Extend<u64> for LscqGeneric<P> {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.enqueue(v);
        }
    }
}

/// Draining iterator returned by [`LscqGeneric::drain`].
pub struct Drain<'a, P: FaaPolicy> {
    queue: &'a LscqGeneric<P>,
}

impl<P: FaaPolicy> Iterator for Drain<'_, P> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        self.queue.dequeue()
    }
}

impl<P: FaaPolicy> Drop for LscqGeneric<P> {
    fn drop(&mut self) {
        // Exclusive access: free the whole chain. Rings retired earlier but
        // not yet reclaimed are freed when `domain` drops.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access in drop.
            let ring = unsafe { Box::from_raw(cur) };
            cur = ring.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: the queue transfers plain u64 values; all structure is atomic.
unsafe impl<P: FaaPolicy> Send for LscqGeneric<P> {}
unsafe impl<P: FaaPolicy> Sync for LscqGeneric<P> {}

impl<P: FaaPolicy> lcrq_queues::ConcurrentQueue for LscqGeneric<P> {
    fn enqueue(&self, value: u64) {
        LscqGeneric::enqueue(self, value);
    }
    fn dequeue(&self) -> Option<u64> {
        LscqGeneric::dequeue(self)
    }
    // Batch ops use the trait's scalar-loop defaults: SCQ has no multi-slot
    // reservation path (a k-wide F&A would claim k entries whose cycles the
    // single-word protocol cannot validate as a group).
    fn name(&self) -> &'static str {
        match P::name() {
            "faa" => "lscq",
            _ => "lscq-cas",
        }
    }
    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: FaaPolicy> lcrq_queues::ClosableQueue for LscqGeneric<P> {
    fn close(&self) -> bool {
        LscqGeneric::close(self)
    }
    fn is_closed(&self) -> bool {
        LscqGeneric::is_closed(self)
    }
    fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        LscqGeneric::try_enqueue(self, value)
    }
    // Native override: surfaces a refused ring allocation as
    // `AllocFailed` instead of the default's retry-until-closed.
    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        LscqGeneric::try_enqueue_fallible(self, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrq_queues::testing;

    fn tiny() -> LcrqConfig {
        LcrqConfig::new().with_ring_order(3)
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = Lscq::new();
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty_hint());
    }

    #[test]
    fn fifo_order_sequential() {
        let q = Lscq::with_config(tiny());
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn overflowing_one_ring_spills_into_new_rings_in_order() {
        let q = Lscq::with_config(tiny());
        let total = 4 * q.config().ring_size();
        for i in 0..total {
            q.enqueue(i);
        }
        assert!(q.ring_count() > 1, "tiny rings must have spilled");
        for i in 0..total {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drained_queue_is_reusable() {
        let q = Lscq::with_config(tiny());
        for round in 0..5 {
            for i in 0..50 {
                q.enqueue(round * 100 + i);
            }
            for i in 0..50 {
                assert_eq!(q.dequeue(), Some(round * 100 + i));
            }
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    #[should_panic(expected = "BOTTOM")]
    fn enqueueing_bottom_panics() {
        Lscq::new().enqueue(u64::MAX);
    }

    #[test]
    fn max_value_is_enqueueable() {
        let q = Lscq::new();
        q.enqueue(u64::MAX - 1);
        assert_eq!(q.dequeue(), Some(u64::MAX - 1));
    }

    #[test]
    fn mpmc_stress_default_ring() {
        let q = Lscq::new();
        testing::mpmc_stress(&q, 4, 4, 10_000);
    }

    #[test]
    fn mpmc_stress_tiny_ring_exercises_ring_switching() {
        let q = Lscq::with_config(tiny());
        testing::mpmc_stress(&q, 4, 4, 5_000);
        assert!(q.ring_count() < 100, "drained rings must be retired");
    }

    #[test]
    fn mpmc_stress_cas_variant() {
        let q = LscqCas::new();
        testing::mpmc_stress(&q, 4, 4, 10_000);
    }

    #[test]
    fn mpmc_stress_cas_variant_tiny_ring() {
        let q = LscqCas::with_config(tiny());
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        for seed in [0x15C9, 0x25C9] {
            let q = Lscq::with_config(tiny());
            testing::model_check(&q, seed);
        }
    }

    #[test]
    fn pairs_workload_drains() {
        let q = Lscq::with_config(tiny());
        testing::pairs_smoke(&q, 4, 5_000);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn retired_rings_are_reclaimed() {
        let q = Lscq::with_config(LcrqConfig::new().with_ring_order(2));
        for i in 0..10_000 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(
            q.ring_count() < 64,
            "ring chain kept growing: {}",
            q.ring_count()
        );
    }

    #[test]
    fn names_reflect_variant() {
        use lcrq_queues::ConcurrentQueue;
        assert_eq!(ConcurrentQueue::name(&Lscq::new()), "lscq");
        assert_eq!(ConcurrentQueue::name(&LscqCas::new()), "lscq-cas");
    }

    #[test]
    fn close_fences_enqueues_but_drains_existing_items() {
        let q = Lscq::with_config(tiny());
        for i in 0..20 {
            q.enqueue(i);
        }
        assert!(q.close());
        assert!(!q.close(), "second close reports false");
        assert!(q.is_closed());
        assert_eq!(q.try_enqueue(99), Err(99));
        for i in 0..20 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    #[should_panic(expected = "closed")]
    fn enqueue_after_close_panics() {
        let q = Lscq::new();
        q.close();
        q.enqueue(1);
    }

    #[test]
    fn close_races_with_producers_without_losing_items() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        for round in 0..20 {
            let q = Arc::new(Lscq::with_config(tiny()));
            let accepted = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for t in 0..3u64 {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                handles.push(std::thread::spawn(move || {
                    for i in 0..200u64 {
                        if q.try_enqueue((t << 32) | i).is_ok() {
                            accepted.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }));
            }
            let closer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    if round % 2 == 0 {
                        std::thread::yield_now();
                    }
                    q.close();
                })
            };
            for h in handles {
                h.join().unwrap();
            }
            closer.join().unwrap();
            let drained = q.drain().count() as u64;
            assert_eq!(drained, accepted.load(Ordering::SeqCst));
        }
    }

    #[test]
    fn dequeue_empty_is_never_transient() {
        // An EMPTY observed by one thread with no concurrent dequeuers
        // must mean everything enqueued so far was handed out.
        let q = Lscq::with_config(tiny());
        for i in 0..500 {
            q.enqueue(i);
        }
        let mut seen = 0;
        while q.dequeue().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 500);
        q.enqueue(7);
        assert_eq!(q.dequeue(), Some(7));
    }

    #[test]
    fn drop_with_items_across_rings_is_clean() {
        let q = Lscq::with_config(tiny());
        for i in 0..100 {
            q.enqueue(i);
        }
        drop(q); // must not leak or double-free (ASan job covers this)
    }

    #[test]
    fn closable_trait_object_round_trip() {
        use lcrq_queues::ClosableQueue;
        let q: Box<dyn ClosableQueue> = Box::new(Lscq::new());
        q.try_enqueue(5).unwrap();
        assert_eq!(q.dequeue(), Some(5));
        q.close();
        assert_eq!(q.try_enqueue(6), Err(6));
    }
}
