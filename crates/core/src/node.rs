//! CRQ ring-node representation (Figure 3a).
//!
//! Physically a node is two 64-bit words manipulated with CAS2; logically it
//! is the 3-tuple `(safe: 1 bit, idx: 63 bits, val: 64 bits)`:
//!
//! * word 0 — bit 63 is the *safe* bit, bits 62..0 are the node's *index*;
//! * word 1 — the value, or [`BOTTOM`](crate::BOTTOM) when the node is empty.
//!
//! Node `u` starts as `(1, u, ⊥)`. An index with value `i` refers to ring
//! node `i mod R`; the node's stored index advances by `R` every time the
//! node is vacated, which is what lets operations detect that they have been
//! overtaken.

use lcrq_atomic::AtomicPair;
use lcrq_util::CachePadded;

use crate::BOTTOM;

/// Mask of the 63-bit index portion of word 0.
pub const IDX_MASK: u64 = (1 << 63) - 1;
/// The safe bit (bit 63 of word 0).
pub const SAFE_BIT: u64 = 1 << 63;

/// Packs `(safe, idx)` into word 0. `idx` must fit in 63 bits.
#[inline]
pub const fn pack(safe: bool, idx: u64) -> u64 {
    debug_assert!(idx <= IDX_MASK);
    ((safe as u64) << 63) | (idx & IDX_MASK)
}

/// Unpacks word 0 into `(safe, idx)`.
#[inline]
pub const fn unpack(word: u64) -> (bool, u64) {
    (word & SAFE_BIT != 0, word & IDX_MASK)
}

/// One ring node, padded to a cache line ("padded to cache line size",
/// Figure 3a line 17) so neighbouring slots do not false-share.
pub struct Node {
    pair: CachePadded<AtomicPair>,
}

/// A consistent (or transiently torn — CAS2 failure resolves it) node view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// The safe bit.
    pub safe: bool,
    /// The 63-bit index.
    pub idx: u64,
    /// The value (`BOTTOM` = empty).
    pub val: u64,
    /// Raw word 0 as read, for use as a CAS2 expected value.
    pub word0: u64,
}

impl NodeView {
    /// Whether the node holds no value.
    pub fn is_empty(&self) -> bool {
        self.val == BOTTOM
    }
}

impl Node {
    /// Initializes ring node `u` to `(1, u, ⊥)`.
    pub fn new(u: u64) -> Self {
        Self {
            pair: CachePadded::new(AtomicPair::new(pack(true, u), BOTTOM)),
        }
    }

    /// Reads the node the way the algorithm does: value first, then
    /// `(safe, idx)` as one 64-bit read (Figure 3b lines 37–38). The two
    /// reads may be mutually inconsistent; any transition CAS2 based on a
    /// torn view simply fails.
    #[inline]
    pub fn read(&self) -> NodeView {
        let val = self.pair.load_second();
        let word0 = self.pair.load_first();
        let (safe, idx) = unpack(word0);
        NodeView {
            safe,
            idx,
            val,
            word0,
        }
    }

    /// Attempts the *enqueue transition* `(s, i, ⊥) -> (1, t, arg)`
    /// (Figure 3d line 93). `expected` must come from [`read`](Self::read).
    #[inline]
    pub fn try_enqueue(&self, expected: &NodeView, t: u64, arg: u64) -> bool {
        self.pair
            .compare_exchange((expected.word0, BOTTOM), (pack(true, t), arg))
            .is_ok()
    }

    /// Attempts the *dequeue transition* `(s, h, val) -> (s, h+R, ⊥)`
    /// (Figure 3b line 42), preserving the safe bit.
    #[inline]
    pub fn try_dequeue(&self, expected: &NodeView, ring_size: u64) -> bool {
        self.pair
            .compare_exchange(
                (expected.word0, expected.val),
                (pack(expected.safe, expected.idx + ring_size), BOTTOM),
            )
            .is_ok()
    }

    /// Attempts the *empty transition* `(s, i, ⊥) -> (s, h+R, ⊥)`
    /// (Figure 3b line 48), preserving the safe bit.
    #[inline]
    pub fn try_empty(&self, expected: &NodeView, h: u64, ring_size: u64) -> bool {
        self.pair
            .compare_exchange(
                (expected.word0, BOTTOM),
                (pack(expected.safe, h + ring_size), BOTTOM),
            )
            .is_ok()
    }

    /// Re-initializes the node to `(1, u, ⊥)` for ring reuse.
    ///
    /// The caller must hold *logical* exclusive access to the ring (no
    /// in-flight protocol operation on it — enforced by hazard-pointer
    /// quiescence before a ring enters the recycling pool). The store is
    /// still a real atomic pair replacement, so even a CAS2 issued from a
    /// stale pre-scrub [`NodeView`] fails cleanly rather than tearing.
    #[inline]
    pub fn reset(&self, u: u64) {
        self.pair.store(pack(true, u), BOTTOM);
    }

    /// Attempts the *unsafe transition* `(s, i, val) -> (0, i, val)`
    /// (Figure 3b line 45).
    #[inline]
    pub fn try_mark_unsafe(&self, expected: &NodeView) -> bool {
        self.pair
            .compare_exchange(
                (expected.word0, expected.val),
                (pack(false, expected.idx), expected.val),
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for safe in [false, true] {
            for idx in [0u64, 1, 42, IDX_MASK] {
                assert_eq!(unpack(pack(safe, idx)), (safe, idx));
            }
        }
    }

    #[test]
    fn initial_state_is_safe_empty_with_own_index() {
        let n = Node::new(17);
        let v = n.read();
        assert!(v.safe);
        assert_eq!(v.idx, 17);
        assert!(v.is_empty());
    }

    #[test]
    fn node_is_cache_line_sized() {
        assert!(core::mem::size_of::<Node>() >= 64);
        assert_eq!(core::mem::size_of::<Node>() % 64, 0);
    }

    #[test]
    fn enqueue_then_dequeue_transition() {
        const R: u64 = 8;
        let n = Node::new(3);
        let v = n.read();
        assert!(n.try_enqueue(&v, 3, 99));
        let v = n.read();
        assert!(v.safe);
        assert_eq!(v.idx, 3);
        assert_eq!(v.val, 99);
        assert!(n.try_dequeue(&v, R));
        let v = n.read();
        assert!(v.safe);
        assert_eq!(v.idx, 3 + R);
        assert!(v.is_empty());
    }

    #[test]
    fn empty_transition_advances_index_and_keeps_safe_bit() {
        const R: u64 = 8;
        let n = Node::new(3);
        let v = n.read();
        // deq with h = 3 + R arrives before enq(3+R): empty transition.
        assert!(n.try_empty(&v, 3 + R, R));
        let v = n.read();
        assert!(v.safe);
        assert_eq!(v.idx, 3 + 2 * R);
        assert!(v.is_empty());
    }

    #[test]
    fn unsafe_transition_clears_safe_only() {
        let n = Node::new(1);
        let v = n.read();
        assert!(n.try_enqueue(&v, 1, 55));
        let v = n.read();
        assert!(n.try_mark_unsafe(&v));
        let v = n.read();
        assert!(!v.safe);
        assert_eq!(v.idx, 1);
        assert_eq!(v.val, 55);
        // Dequeue transition preserves the (now clear) safe bit.
        assert!(n.try_dequeue(&v, 8));
        let v = n.read();
        assert!(!v.safe);
        assert_eq!(v.idx, 9);
        assert!(v.is_empty());
    }

    #[test]
    fn reset_rebases_and_stale_prereset_views_fail() {
        const R: u64 = 8;
        let n = Node::new(3);
        let v = n.read();
        assert!(n.try_enqueue(&v, 3, 77));
        let stale = n.read();
        // Scrub onto a fresh epoch whose base exceeds every index the node
        // could previously have carried.
        n.reset(3 + 2 * R);
        let v = n.read();
        assert!(v.safe);
        assert_eq!(v.idx, 3 + 2 * R);
        assert!(v.is_empty());
        // Transitions from pre-reset views must all fail.
        assert!(!n.try_dequeue(&stale, R));
        assert!(!n.try_mark_unsafe(&stale));
        assert!(!n.try_enqueue(&stale, 3, 78));
    }

    #[test]
    fn stale_views_fail_their_transitions() {
        let n = Node::new(0);
        let stale = n.read();
        let fresh = n.read();
        assert!(n.try_enqueue(&fresh, 0, 7));
        // All transitions from the pre-enqueue view must now fail.
        assert!(!n.try_enqueue(&stale, 0, 8));
        assert!(!n.try_empty(&stale, 8, 8));
        // A stale view with the *right* value would still dequeue: the
        // enqueue set word0 to (1, 0), identical to the initial (1, 0), so a
        // pre-enqueue view patched with val 7 matches legitimately. The
        // staleness that must fail is an index change:
        let v = n.read();
        assert!(n.try_dequeue(&v, 8)); // idx now 8
        let old = n.read();
        assert!(n.try_empty(&old, 8, 8)); // idx now 16
        assert!(!n.try_empty(&old, 16, 8), "stale idx must fail");
    }
}
