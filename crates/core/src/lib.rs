//! LCRQ — the linked concurrent ring queue of Morrison & Afek,
//! *Fast Concurrent Queues for x86 Processors* (PPoPP 2013).
//!
//! LCRQ is a linearizable, op-wise nonblocking MPMC FIFO queue. Its design
//! insight: the scalability collapse of CAS-based queues comes from *work
//! wasted on CAS failures*, not from the raw cost of a contended location.
//! x86's fetch-and-add always succeeds, so LCRQ uses contended F&A objects
//! to spread threads across the slots of a ring, where they complete in
//! parallel with (almost always uncontended) double-width CAS.
//!
//! # Architecture
//!
//! * [`crq::Crq`] — a bounded *concurrent ring queue* with **tantrum queue**
//!   semantics: an enqueue may refuse and permanently close the ring. In the
//!   common case an operation touches only one of head/tail — half the
//!   synchronization of prior array queues.
//! * [`Lcrq`] — a Michael–Scott linked list of CRQs: enqueuers that find the
//!   tail ring closed append a fresh ring; dequeuers drain the head ring and
//!   swing past it when empty. Retired rings are reclaimed with hazard
//!   pointers. This restores unbounded, never-refusing queue semantics and
//!   the op-wise nonblocking property.
//! * [`LcrqCas`] — the same algorithm with every F&A emulated by a CAS loop
//!   (the paper's LCRQ-CAS), isolating the contribution of always-succeeding
//!   F&A. Generic parameter: [`lcrq_atomic::FaaPolicy`].
//! * LCRQ+H — enable [`config::HierarchicalConfig`] to batch operations per
//!   cluster (the paper's hierarchy-aware optimization, §4.1.1).
//! * [`scq::Scq`] / [`scq::ScqD`] / [`Lscq`] — the portable sibling family
//!   (Nikolaev's SCQ, arXiv:1908.04511): cycle-tagged single-word entries,
//!   a threshold counter for livelock-free dequeue, and index indirection
//!   for arbitrary payloads — no double-width CAS anywhere, so this
//!   backend would run on non-x86 targets. [`Lscq`] links SCQ rings with
//!   the same tantrum/CLOSED convention as [`Lcrq`].
//! * [`wcq::Wcq`] — the wait-free sibling (Nikolaev's wCQ,
//!   arXiv:2201.02179): the SCQ cycle arithmetic plus per-ring request
//!   records and help-first scanning, so every operation completes in a
//!   bounded number of its own steps even when peers stall. See the
//!   module docs for the claim-serialized helping protocol.
//! * [`sharded::ShardedQueue`] — a relaxed d-choice front-end: N shards of
//!   any backend behind one facade, balanced by cached length estimates,
//!   with an exact-empty fallback sweep. Trades a bounded amount of
//!   cross-shard FIFO order for throughput.
//! * [`infinite::InfiniteArrayQueue`] — the idealized Figure-2 queue the
//!   CRQ is derived from (SWAP-based, livelock-prone; educational).
//! * [`typed::TypedLcrq`] — a generic `T`-valued facade over the raw `u64`
//!   queue (values are boxed; the queue transfers pointers, as the paper's
//!   workloads do).
//!
//! # Quick start
//!
//! ```
//! use lcrq_core::Lcrq;
//! use lcrq_queues::ConcurrentQueue as _;
//!
//! let q = Lcrq::new();
//! q.enqueue(7);
//! q.enqueue(8);
//! assert_eq!(q.dequeue(), Some(7));
//! assert_eq!(q.dequeue(), Some(8));
//! assert_eq!(q.dequeue(), None);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod crq;
pub mod infinite;
pub mod lcrq;
pub mod lscq;
pub mod node;
pub mod pool;
pub mod scq;
pub mod sharded;
pub mod typed;
pub mod wcq;

pub use config::{HierarchicalConfig, LcrqConfig};
pub use crq::{Crq, CrqClosed};
pub use lcrq::{Lcrq, LcrqCas, LcrqGeneric};
pub use lscq::{Lscq, LscqCas, LscqGeneric};
pub use pool::RingPool;
pub use scq::{Scq, ScqD};
pub use sharded::{rank_error_bound_for, ShardedConfig, ShardedQueue};
pub use typed::{TypedLcrq, TypedLscq, TypedWcq};
pub use wcq::{Wcq, WcqGeneric, WcqRing};

/// The reserved "empty cell" value ⊥. User values must be strictly below it.
pub const BOTTOM: u64 = u64::MAX;

/// Largest enqueueable value (`BOTTOM - 1`).
pub const MAX_VALUE: u64 = u64::MAX - 1;
