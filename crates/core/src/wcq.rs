//! wCQ — a wait-free circular queue layering Nikolaev's helping scheme
//! (arXiv:2201.02179) over the SCQ ring's cycle arithmetic.
//!
//! The SCQ family ([`crate::scq`]) is lock-free: a preempted thread can
//! force peers into unbounded retries (spurious CAS losses, stranded
//! slots). wCQ promotes the progress class to (empirical) wait-freedom
//! with three mechanisms:
//!
//! * **Request records.** Each ring embeds a small array of records. An
//!   operation that exhausts its bounded fast path *announces* itself —
//!   publishes `(phase, seq, arg)` plus an FAA ticket — and from then on
//!   any thread can complete it.
//! * **Help-first scanning.** Every operation first scans for the oldest
//!   pending announced request (by ticket) and contributes a bounded
//!   number of helping steps before running its own fast path, so an
//!   announced operation finishes within O(threads) operations of others
//!   even if its owner never runs again.
//! * **Claim-serialized exactly-once completion.** A record's *claim* word
//!   (an [`AtomicPair`] of `(seq | attempt, position)`) is the single
//!   serialization point for the helped operation. Helpers agree on a
//!   candidate ring position through the claim; placement into the ring is
//!   **two-phase** (a *tentative* entry first, promoted to a firm value
//!   only after the claim is CAS-advanced to its terminal `PLACED` state),
//!   and a helped dequeue *binds* the consumed entry to the record — the
//!   value stays in the slot until the result is delivered — so a helper
//!   stalling at any instruction never loses or duplicates a value.
//!   Terminal claim transitions (`PLACED`, `EMPTY`, `CLOSED`) are mutually
//!   exclusive CASes, which is the linearize-exactly-once argument.
//!
//! Deviation from the paper: Nikolaev keeps wCQ portable with single-word
//! atomics by splitting entries into phase-tagged halves. This repo is an
//! x86 reproduction with `CMPXCHG16B` already load-bearing ([`AtomicPair`],
//! the CRQ), so entries here are double-width `(meta, value)` pairs — the
//! same helping structure with a much shorter placement protocol. The
//! threshold counter, cycle tags, catchup, and the cache-line remap are
//! taken from [`crate::scq`] unchanged.
//!
//! [`Wcq`] is the unbounded queue: an MS-style list of [`WcqRing`]s with
//! tantrum spills, exactly like [`Lscq`](crate::Lscq).

use core::marker::PhantomData;
use core::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, Ordering};

use lcrq_atomic::{ops, AtomicPair, FaaPolicy, HardwareFaa};
use lcrq_hazard::Domain;
use lcrq_queues::EnqueueError;
use lcrq_util::backoff::Backoff;
use lcrq_util::fault::{self, Site};
use lcrq_util::metrics::{self, Event};
use lcrq_util::{adversary, CachePadded};

use crate::config::LcrqConfig;
use crate::crq::CrqClosed;
use crate::BOTTOM;

/// Bit 63 of `tail`: the ring is closed to further enqueues.
const FINALIZED_BIT: u64 = 1 << 63;

/// Request records per ring. Bounds the number of threads that can be in
/// the slow path of one ring simultaneously; overflow threads help peers
/// until a record frees up.
const REC_SLOTS: usize = 64;

/// `rec` field pattern for "no record" (fast-path entries).
const REC_NONE: u64 = 0x7F;

/// Fast-path position attempts before an operation announces itself.
const FAST_ATTEMPTS: usize = 4;

/// Per-position rounds of the fast path's read→CAS2 window.
const FAST_ROUNDS: usize = 4;

/// Helping steps contributed per [`help_request`](WcqRing::help_request)
/// call. Completion does not depend on any single caller finishing: the
/// owner loops, and every other operation contributes this many steps.
const HELP_ROUNDS: usize = 16;

// --- claim word -------------------------------------------------------
// claim = AtomicPair(hi, lo):
//   hi = (seq & SEQ48) << 16 | attempt (16 bits, capped by the tantrum)
//   lo = candidate position, or one of the specials below. Terminal
//   states (PLACED / POS_EMPTY / POS_CLOSED) are reached by exactly one
//   CAS and never left within a seq.

/// No candidate chosen yet.
const POS_NONE: u64 = u64::MAX;
/// Terminal: the ring was finalized before placement (enqueue only).
const POS_CLOSED: u64 = u64::MAX - 1;
/// Terminal: the threshold protocol proved emptiness (dequeue only).
const POS_EMPTY: u64 = u64::MAX - 2;
/// OR-ed onto the position: terminal, the operation took effect *at* that
/// position (entry placed / entry bound).
const PLACED_BIT: u64 = 1 << 62;

const CLAIM_SEQ_MASK: u64 = (1 << 48) - 1;
const ATT_MASK: u64 = 0xFFFF;

#[inline]
fn claim_hi(seq: u64, att: u64) -> u64 {
    ((seq & CLAIM_SEQ_MASK) << 16) | (att & ATT_MASK)
}

#[inline]
fn claim_bump(hi: u64) -> u64 {
    (hi & !ATT_MASK) | ((hi + 1) & ATT_MASK)
}

/// Whether a claim position word is the terminal `PLACED` state at a real
/// ring position (the special sentinels also have bit 62 set).
#[inline]
fn claim_is_placed(cpos: u64) -> bool {
    cpos < POS_EMPTY && cpos & PLACED_BIT != 0
}

// --- record state word ------------------------------------------------
// state = seq << 3 | phase. `seq` strictly increases across uses of the
// slot; every helper CAS on claim/result/state carries it, so a stale
// helper from a previous occupancy structurally fails.

const PH_IDLE: u64 = 0;
/// Owned, fields being initialized; helpers ignore it.
const PH_INIT: u64 = 1;
const PH_ENQ: u64 = 2;
const PH_DEQ: u64 = 3;
const PH_DONE: u64 = 4;
/// Terminal for an enqueue whose ring closed before placement.
const PH_CLOSED: u64 = 5;

#[inline]
fn pack_state(seq: u64, phase: u64) -> u64 {
    (seq << 3) | phase
}

#[inline]
fn state_seq(st: u64) -> u64 {
    st >> 3
}

#[inline]
fn state_phase(st: u64) -> u64 {
    st & 0x7
}

// --- entry meta word --------------------------------------------------
// meta = cycle << 16 | safe << 15 | bound << 14 | tent << 13 | rec << 6.
// value word: BOTTOM = empty. A *firm* entry (val != BOTTOM, no tent/
// bound flag) is a live value. `tent` marks a slow-path placement that is
// not yet claim-validated (invisible to consumers until promoted or
// retracted). `bound` marks a consumed-but-undelivered entry owned by a
// dequeue record; the value stays in the slot until delivered.

const META_CYCLE_SHIFT: u32 = 16;
const SAFE_BIT: u64 = 1 << 15;
const BOUND_BIT: u64 = 1 << 14;
const TENT_BIT: u64 = 1 << 13;
const META_REC_SHIFT: u32 = 6;

#[inline]
fn mpack(cycle: u64, safe: bool, flags: u64, rec: u64) -> u64 {
    (cycle << META_CYCLE_SHIFT) | ((safe as u64) * SAFE_BIT) | flags | (rec << META_REC_SHIFT)
}

#[inline]
fn mcycle(meta: u64) -> u64 {
    meta >> META_CYCLE_SHIFT
}

#[inline]
fn msafe(meta: u64) -> bool {
    meta & SAFE_BIT != 0
}

#[inline]
fn mrec(meta: u64) -> u64 {
    (meta >> META_REC_SHIFT) & 0x7F
}

/// A per-thread(-ish) request record; one slow-path operation at a time.
struct Record {
    /// `seq << 3 | phase`.
    state: AtomicU64,
    /// Global help-order ticket, written before the state is published.
    ticket: AtomicU64,
    /// Enqueue argument.
    arg: AtomicU64,
    /// `((seq << 16) | attempt, position)` — the serialization point.
    claim: AtomicPair,
    /// `(seq << 1 | has_result, value)`; `BOTTOM` value = EMPTY.
    result: AtomicPair,
}

impl Record {
    fn new() -> Self {
        Record {
            state: AtomicU64::new(pack_state(0, PH_IDLE)),
            ticket: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            claim: AtomicPair::new(0, POS_NONE),
            result: AtomicPair::new(0, 0),
        }
    }
}

/// CAS-loop "store" for an [`AtomicPair`] (x86 has no 128-bit atomic
/// store). Only used by a record's owner during `INIT`, when the only
/// competing writers are stale helpers making at most one doomed CAS each.
fn pair_reset(p: &AtomicPair, new: (u64, u64)) {
    loop {
        let cur = p.load();
        if cur == new || p.compare_exchange(cur, new).is_ok() {
            return;
        }
    }
}

/// A bounded wait-free MPMC ring of `u64` values (`< BOTTOM`) — the wCQ.
///
/// Most users want the unbounded [`Wcq`]; the ring is exposed for tests
/// and for symmetry with [`Scq`](crate::Scq). Tantrum semantics like
/// [`Crq`](crate::Crq): a starving enqueue closes the ring.
pub struct WcqRing<P: FaaPolicy = HardwareFaa> {
    head: CachePadded<AtomicU64>,
    /// Bit 63 = finalized; bits 62..0 = the tail position.
    tail: CachePadded<AtomicU64>,
    /// SCQ livelock-freedom counter; negative ⇒ a dequeue may report
    /// EMPTY without touching `head`.
    threshold: CachePadded<AtomicI64>,
    /// `2n` double-width `(meta, value)` entries.
    entries: Box<[AtomicPair]>,
    /// log2 of the entry count.
    array_order: u32,
    /// The helping records.
    records: Box<[CachePadded<Record>]>,
    /// FAA'd at announce: the help-first order.
    help_ticket: CachePadded<AtomicU64>,
    /// Number of announced-but-unreleased requests; zero lets the
    /// help-first scan exit with a single load.
    pending: CachePadded<AtomicU64>,
    /// Enqueue-side tantrum: a slow enqueue whose claim dies this many
    /// times closes the ring (the CRQ `starving()` analogue).
    starvation_limit: u64,
    /// The next ring in a [`Wcq`] list (null while this is the tail).
    pub(crate) next: CachePadded<AtomicPtr<WcqRing<P>>>,
    _marker: PhantomData<P>,
}

impl<P: FaaPolicy> WcqRing<P> {
    /// An empty ring with capacity `config.ring_size()` values
    /// (`2 × ring_size` entries, matching the SCQ's 2n sizing).
    pub fn new(config: &LcrqConfig) -> Self {
        metrics::inc(Event::RingAlloc);
        let order = config.ring_size().trailing_zeros().clamp(1, 30);
        let array_order = order + 1;
        let slots = 1usize << array_order;
        let entries: Box<[AtomicPair]> = (0..slots)
            .map(|_| AtomicPair::new(mpack(0, true, 0, REC_NONE), BOTTOM))
            .collect();
        WcqRing {
            head: CachePadded::new(AtomicU64::new(slots as u64)),
            tail: CachePadded::new(AtomicU64::new(slots as u64)),
            threshold: CachePadded::new(AtomicI64::new(-1)),
            entries,
            array_order,
            records: (0..REC_SLOTS)
                .map(|_| CachePadded::new(Record::new()))
                .collect(),
            help_ticket: CachePadded::new(AtomicU64::new(0)),
            pending: CachePadded::new(AtomicU64::new(0)),
            // Cap below the claim's 16-bit attempt field so it can't wrap.
            starvation_limit: (config.starvation_limit as u64).min(ATT_MASK - 1),
            next: CachePadded::new(AtomicPtr::new(core::ptr::null_mut())),
            _marker: PhantomData,
        }
    }

    /// An empty ring pre-loaded with `seed` (the spill-path handoff).
    pub fn with_seed(config: &LcrqConfig, seed: &[u64]) -> Self {
        let q = Self::new(config);
        for &v in seed {
            let placed = q.enqueue(v);
            debug_assert!(placed.is_ok(), "seeding a fresh ring cannot fail");
            let _ = placed;
        }
        q
    }

    /// Number of values the ring can hold.
    #[inline]
    pub fn capacity(&self) -> u64 {
        (self.entries.len() as u64) / 2
    }

    #[inline]
    fn threshold_max(&self) -> i64 {
        (self.capacity() + self.entries.len() as u64 - 1) as i64
    }

    #[inline]
    fn cycle_of(&self, pos: u64) -> u64 {
        pos >> self.array_order
    }

    /// Position → entry slot with `lfring` cache-line spreading (the
    /// bijection from [`Scq`](crate::Scq)).
    #[inline]
    fn remap(&self, pos: u64) -> usize {
        let slots = self.entries.len() as u64;
        let j = pos & (slots - 1);
        if slots >= 16 {
            (((j & (slots / 8 - 1)) * 8) | (j / (slots / 8))) as usize
        } else {
            j as usize
        }
    }

    /// Inverse of [`remap`](Self::remap): reconstructs the position of the
    /// entry in slot `j` at `cycle` (helpers resolving a tent/bound entry
    /// need the position to compare against the record's claim).
    #[inline]
    fn pos_of(&self, j: usize, cycle: u64) -> u64 {
        let slots = self.entries.len() as u64;
        let j = j as u64;
        let x = if slots >= 16 {
            (j & 7) * (slots / 8) + (j >> 3)
        } else {
            j
        };
        (cycle << self.array_order) | x
    }

    #[inline]
    fn arm_threshold(&self) {
        let max = self.threshold_max();
        if self.threshold.load(Ordering::SeqCst) != max {
            self.threshold.store(max, Ordering::SeqCst);
        }
    }

    /// Re-arms the threshold; see [`Scq::reset_threshold`](crate::Scq::reset_threshold).
    pub fn reset_threshold(&self) {
        self.threshold.store(self.threshold_max(), Ordering::SeqCst);
    }

    /// Closes the ring to further enqueues (idempotent). Returns `true`
    /// if this call closed it.
    pub fn close(&self) -> bool {
        let newly = !ops::tas_bit(&self.tail, 63);
        if newly {
            metrics::inc(Event::CrqClosed);
        }
        newly
    }

    /// Whether the ring has been closed.
    pub fn is_closed(&self) -> bool {
        self.tail.load(Ordering::SeqCst) & FINALIZED_BIT != 0
    }

    /// Head position (diagnostic).
    #[inline]
    pub fn head_index(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Tail position with the finalized bit masked off (diagnostic).
    #[inline]
    pub fn tail_index(&self) -> u64 {
        self.tail.load(Ordering::SeqCst) & !FINALIZED_BIT
    }

    /// Current threshold value (diagnostic).
    pub fn threshold(&self) -> i64 {
        self.threshold.load(Ordering::SeqCst)
    }

    /// Announced-but-unreleased request count (diagnostic).
    pub fn pending_requests(&self) -> u64 {
        self.pending.load(Ordering::SeqCst)
    }

    fn catchup(&self, mut t: u64, h: u64) {
        while ops::cas(&self.tail, t, h).is_err() {
            let head_now = self.head.load(Ordering::SeqCst);
            let t_raw = self.tail.load(Ordering::SeqCst);
            if t_raw & FINALIZED_BIT != 0 {
                break;
            }
            t = t_raw;
            if t >= head_now {
                break;
            }
        }
    }

    // --- help-first scan ------------------------------------------------

    /// Completes (a bounded chunk of) the oldest announced request, if
    /// any. Called at the top of every operation; a single plain load
    /// when nothing is pending.
    fn help_scan(&self) {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut best: Option<(u64, usize, u64)> = None;
        for (i, r) in self.records.iter().enumerate() {
            let st = r.state.load(Ordering::SeqCst);
            let ph = state_phase(st);
            if ph == PH_ENQ || ph == PH_DEQ {
                let t = r.ticket.load(Ordering::SeqCst);
                if best.is_none_or(|(bt, _, _)| t < bt) {
                    best = Some((t, i, state_seq(st)));
                }
            }
        }
        if let Some((_, i, seq)) = best {
            metrics::inc(Event::HelpGranted);
            self.help_request(i, seq);
        }
    }

    /// Contributes up to [`HELP_ROUNDS`] steps toward completing record
    /// `i`'s request at `seq`. Every step is a bounded number of atomics;
    /// each either advances the claim state machine or observes that a
    /// peer already did.
    fn help_request(&self, i: usize, seq: u64) {
        for _ in 0..HELP_ROUNDS {
            let st = self.records[i].state.load(Ordering::SeqCst);
            if state_seq(st) != seq {
                return;
            }
            let settled = match state_phase(st) {
                PH_ENQ => self.help_enqueue_step(i, seq),
                PH_DEQ => self.help_dequeue_step(i, seq),
                _ => true,
            };
            if settled {
                return;
            }
        }
    }

    /// One helping step for an announced enqueue. Returns `true` when the
    /// request reached (or is observed in) a terminal phase.
    fn help_enqueue_step(&self, i: usize, seq: u64) -> bool {
        metrics::inc(Event::NodeVisit);
        // `Fail` = one lost helping race: re-read everything.
        if fault::inject(Site::WcqHelp) {
            return false;
        }
        let r = &self.records[i];
        let chi = r.claim.load_first();
        let cpos = r.claim.load_second();
        if chi >> 16 != seq & CLAIM_SEQ_MASK {
            // Torn read or stale record view; retry from the state check.
            return false;
        }
        if cpos == POS_CLOSED {
            if ops::cas(
                &r.state,
                pack_state(seq, PH_ENQ),
                pack_state(seq, PH_CLOSED),
            )
            .is_ok()
            {
                metrics::inc(Event::HelpFinalized);
            }
            return true;
        }
        if claim_is_placed(cpos) {
            // Terminal claim: the placement happened at `p`. Promote the
            // tentative entry if still ours, then finalize the state. The
            // claim alone is the placement proof — the entry may already
            // have been promoted and even consumed by a dequeuer.
            let p = cpos & !PLACED_BIT;
            self.promote_at(p, i);
            // Best-effort: advance the tail past the placement so the next
            // load-based candidate doesn't start on a now-occupied slot.
            let _ = ops::cas(&self.tail, p, p + 1);
            self.arm_threshold();
            if ops::cas(&r.state, pack_state(seq, PH_ENQ), pack_state(seq, PH_DONE)).is_ok() {
                metrics::inc(Event::HelpFinalized);
            }
            return true;
        }
        if cpos == POS_NONE {
            // First candidate comes from the tail (a load, not an FAA —
            // losing the claim race must not burn a ring position).
            let t_raw = self.tail.load(Ordering::SeqCst);
            let new = if t_raw & FINALIZED_BIT != 0 {
                POS_CLOSED
            } else {
                t_raw
            };
            let _ = r
                .claim
                .compare_exchange((chi, cpos), (claim_bump(chi), new));
            return false;
        }
        // Live candidate position.
        let p = cpos;
        let c = self.cycle_of(p);
        let j = self.remap(p);
        let meta = self.entries[j].load_first();
        let val = self.entries[j].load_second();
        if mcycle(meta) == c && val != BOTTOM && mrec(meta) == i as u64 && meta & BOUND_BIT == 0 {
            // Our entry is in the slot (tentative or already promoted):
            // race the claim to PLACED; the next round finalizes.
            let _ = r
                .claim
                .compare_exchange((chi, cpos), (claim_bump(chi), p | PLACED_BIT));
            return false;
        }
        if meta & (TENT_BIT | BOUND_BIT) != 0 {
            // Foreign in-flight two-phase entry: resolve it, then re-read.
            self.resolve_entry(j, meta, val);
            return false;
        }
        if val == BOTTOM
            && mcycle(meta) < c
            && (msafe(meta) || self.head.load(Ordering::SeqCst) <= p)
        {
            // Placeable: phase 1, the tentative entry. Invisible to
            // consumers until the claim validates it.
            adversary::preempt_point();
            let v = r.arg.load(Ordering::SeqCst);
            let _ = self.entries[j]
                .compare_exchange((meta, val), (mpack(c, true, TENT_BIT, i as u64), v));
            return false;
        }
        // Dead (cycle advanced) or blocked (older firm entry): bump to a
        // fresh candidate. Stale helpers of the abandoned attempt can only
        // leave a tentative entry behind, which resolution retracts —
        // that's why no "dead forever" proof is needed here.
        if p >= self.head.load(Ordering::SeqCst) + self.entries.len() as u64 {
            // A full lap ahead of the consumers: the ring is full. Tantrum
            // (CRQ-style) so the list layer spills to a fresh ring.
            self.close();
            let _ = r
                .claim
                .compare_exchange((chi, cpos), (claim_bump(chi), POS_CLOSED));
            return false;
        }
        let att = chi & ATT_MASK;
        if att >= self.starvation_limit {
            // Tantrum: the ring is too contended/full to place; close it
            // so the list layer spills to a fresh ring.
            self.close();
            let _ = r
                .claim
                .compare_exchange((chi, cpos), (claim_bump(chi), POS_CLOSED));
            return false;
        }
        let t_raw = self.tail.load(Ordering::SeqCst);
        if t_raw & FINALIZED_BIT != 0 {
            let _ = r
                .claim
                .compare_exchange((chi, cpos), (claim_bump(chi), POS_CLOSED));
            return false;
        }
        let mut cand = t_raw;
        if cand <= p {
            // The tail never passed our dead position (no fast-path FAA
            // traffic): nudge it so candidates make progress. The skipped
            // position becomes a hole the dequeue transitions absorb.
            let _ = ops::cas(&self.tail, cand, p + 1);
            cand = p + 1;
        }
        let _ = r
            .claim
            .compare_exchange((chi, cpos), (claim_bump(chi), cand));
        false
    }

    /// One helping step for an announced dequeue. Returns `true` when the
    /// request reached (or is observed in) a terminal phase.
    fn help_dequeue_step(&self, i: usize, seq: u64) -> bool {
        metrics::inc(Event::NodeVisit);
        if fault::inject(Site::WcqHelp) {
            return false;
        }
        let r = &self.records[i];
        let chi = r.claim.load_first();
        let cpos = r.claim.load_second();
        if chi >> 16 != seq & CLAIM_SEQ_MASK {
            return false;
        }
        if cpos == POS_EMPTY {
            let _ = r
                .result
                .compare_exchange((seq << 1, 0), ((seq << 1) | 1, BOTTOM));
            if ops::cas(&r.state, pack_state(seq, PH_DEQ), pack_state(seq, PH_DONE)).is_ok() {
                metrics::inc(Event::HelpFinalized);
                metrics::inc(Event::ThresholdExhausted);
            }
            return true;
        }
        if claim_is_placed(cpos) {
            // Terminal claim: the bound entry at `p` carries the value.
            self.finish_bound_dequeue(i, seq, cpos & !PLACED_BIT);
            return true;
        }
        if cpos == POS_NONE {
            if self.threshold.load(Ordering::SeqCst) < 0 {
                let _ = r
                    .claim
                    .compare_exchange((chi, cpos), (claim_bump(chi), POS_EMPTY));
                return false;
            }
            let h = self.head.load(Ordering::SeqCst);
            let _ = r.claim.compare_exchange((chi, cpos), (claim_bump(chi), h));
            return false;
        }
        // Live candidate position.
        let h = cpos;
        let c = self.cycle_of(h);
        let j = self.remap(h);
        let meta = self.entries[j].load_first();
        let val = self.entries[j].load_second();
        if mcycle(meta) == c && meta & BOUND_BIT != 0 && mrec(meta) == i as u64 {
            // Our bind is in: race the claim to PLACED.
            let _ = r
                .claim
                .compare_exchange((chi, cpos), (claim_bump(chi), h | PLACED_BIT));
            return false;
        }
        if mcycle(meta) == c && val != BOTTOM && meta & (TENT_BIT | BOUND_BIT) == 0 {
            // Firm entry at our cycle: consumable. Pre-finalize a slow
            // placer's record, then bind (phase 1 of the consume — the
            // value stays in the slot until the claim validates).
            if mrec(meta) != REC_NONE {
                self.finalize_src(mrec(meta) as usize, h);
            }
            adversary::preempt_point();
            let _ = self.entries[j].compare_exchange(
                (meta, val),
                (mpack(c, msafe(meta), BOUND_BIT, i as u64), val),
            );
            return false;
        }
        if meta & (TENT_BIT | BOUND_BIT) != 0 {
            self.resolve_entry(j, meta, val);
            return false;
        }
        if mcycle(meta) < c {
            // SCQ transitions, CAS2 edition.
            let new = if val == BOTTOM {
                mpack(c, msafe(meta), 0, REC_NONE)
            } else {
                mpack(mcycle(meta), false, 0, mrec(meta))
            };
            let was_empty = val == BOTTOM;
            adversary::preempt_point();
            if self.entries[j]
                .compare_exchange((meta, val), (new, val))
                .is_ok()
            {
                metrics::inc(if was_empty {
                    Event::EmptyTransition
                } else {
                    Event::UnsafeTransition
                });
            }
            return false;
        }
        // Dead position (cycle advanced / transitioned). Threshold
        // accounting must be exactly once per retired position or helpers
        // racing the fast path would exhaust it early and report a false
        // EMPTY — so only the thread whose CAS advances `head` past the
        // position decrements (a fast-path FAA that claimed the position
        // does its own accounting).
        let t = self.tail_index();
        if t <= h + 1 {
            self.catchup(t, h + 1);
        }
        let head_now = self.head.load(Ordering::SeqCst);
        let mut cand = head_now;
        let mut advanced_by_us = false;
        if cand <= h {
            advanced_by_us = ops::cas(&self.head, h, h + 1).is_ok();
            cand = h + 1;
        }
        let empty = if advanced_by_us {
            metrics::inc(Event::Faa);
            self.threshold.fetch_sub(1, Ordering::SeqCst) <= 0 || t <= h + 1
        } else {
            self.threshold.load(Ordering::SeqCst) < 0 || t <= h + 1
        };
        if empty {
            let _ = r
                .claim
                .compare_exchange((chi, cpos), (claim_bump(chi), POS_EMPTY));
            return false;
        }
        let _ = r
            .claim
            .compare_exchange((chi, cpos), (claim_bump(chi), cand));
        false
    }

    /// Delivers the value of the bound entry at `p` to dequeue record `i`
    /// (idempotent: result CAS2, state CAS, then the scrub that frees the
    /// slot; each is seq-tagged so any subset of helpers can run it).
    fn finish_bound_dequeue(&self, i: usize, seq: u64, p: u64) {
        let c = self.cycle_of(p);
        let j = self.remap(p);
        let meta = self.entries[j].load_first();
        let val = self.entries[j].load_second();
        if mcycle(meta) == c && meta & BOUND_BIT != 0 && mrec(meta) == i as u64 {
            let r = &self.records[i];
            let _ = r
                .result
                .compare_exchange((seq << 1, 0), ((seq << 1) | 1, val));
            if ops::cas(&r.state, pack_state(seq, PH_DEQ), pack_state(seq, PH_DONE)).is_ok() {
                metrics::inc(Event::HelpFinalized);
            }
            // Scrub only after the result is published: the entry was the
            // value's only home until now.
            let _ = self.entries[j]
                .compare_exchange((meta, val), (mpack(c, msafe(meta), 0, REC_NONE), BOTTOM));
        } else {
            // Slot already scrubbed: the result was delivered first.
            let r = &self.records[i];
            if ops::cas(&r.state, pack_state(seq, PH_DEQ), pack_state(seq, PH_DONE)).is_ok() {
                metrics::inc(Event::HelpFinalized);
            }
        }
    }

    /// Consumer-side pre-finalization of a slow-path *enqueue* record
    /// whose firm entry at position `p` is about to be consumed: if the
    /// record's claim is `PLACED` at exactly `p`, complete its state
    /// transition so its helpers stop early. Positions never repeat, so a
    /// reused record can't be confused with the placer.
    fn finalize_src(&self, rec: usize, p: u64) {
        let r = &self.records[rec];
        let cpos = r.claim.load_second();
        if cpos == p | PLACED_BIT {
            let st = r.state.load(Ordering::SeqCst);
            let chi = r.claim.load_first();
            if state_phase(st) == PH_ENQ
                && (state_seq(st) & CLAIM_SEQ_MASK) == chi >> 16
                && ops::cas(&r.state, st, pack_state(state_seq(st), PH_DONE)).is_ok()
            {
                metrics::inc(Event::HelpFinalized);
            }
        }
    }

    /// Phase 2 of a slow-path enqueue placement: tent → firm at position
    /// `p`, permitted because the claim is already `PLACED` there.
    fn promote_at(&self, p: u64, i: usize) {
        let c = self.cycle_of(p);
        let j = self.remap(p);
        let meta = self.entries[j].load_first();
        let val = self.entries[j].load_second();
        if mcycle(meta) == c && meta & TENT_BIT != 0 && mrec(meta) == i as u64 {
            let _ =
                self.entries[j].compare_exchange((meta, val), (mpack(c, true, 0, i as u64), val));
        }
    }

    /// Resolves an in-flight two-phase entry (tentative placement or
    /// bound consume) found in slot `j`: helps it to its terminal state
    /// if its record's claim validates it, or rolls it back if the claim
    /// moved on. Any thread may call this; every arm is a claim-tagged
    /// CAS, so duplicated resolution is benign.
    fn resolve_entry(&self, j: usize, meta: u64, val: u64) {
        let rec = mrec(meta);
        if rec == REC_NONE || rec as usize >= REC_SLOTS {
            return;
        }
        let c = mcycle(meta);
        let p = self.pos_of(j, c);
        let r = &self.records[rec as usize];
        let chi = r.claim.load_first();
        let cpos = r.claim.load_second();
        let seq = chi >> 16;
        if meta & TENT_BIT != 0 {
            if cpos == p {
                // Claim still aims here: help it to PLACED (the claim CAS
                // decides; loser re-reads).
                let _ = r
                    .claim
                    .compare_exchange((chi, p), (claim_bump(chi), p | PLACED_BIT));
            } else if cpos == p | PLACED_BIT {
                // Validated: promote to a firm value.
                let _ =
                    self.entries[j].compare_exchange((meta, val), (mpack(c, true, 0, rec), val));
            } else {
                // The claim moved on (or the record was reused): this
                // tentative entry is an orphan. Retract it, leaving the
                // slot empty *at this cycle* so no stale placement can
                // ever land here again.
                let _ = self.entries[j]
                    .compare_exchange((meta, val), (mpack(c, msafe(meta), 0, REC_NONE), BOTTOM));
            }
            return;
        }
        if meta & BOUND_BIT != 0 {
            let st = r.state.load(Ordering::SeqCst);
            let seq_matches = (state_seq(st) & CLAIM_SEQ_MASK) == seq;
            if cpos == p | PLACED_BIT && seq_matches {
                // Validated bind: drive the delivery to completion. Works
                // for phase DEQ (deliver) and DONE (scrub) alike.
                self.finish_bound_dequeue(rec as usize, state_seq(st), p);
            } else if cpos == p && seq_matches && state_phase(st) == PH_DEQ {
                let _ = r
                    .claim
                    .compare_exchange((chi, p), (claim_bump(chi), p | PLACED_BIT));
            } else {
                // Stale bind (claim moved before validation): restore the
                // firm entry — the value was never delivered.
                let _ = self.entries[j]
                    .compare_exchange((meta, val), (mpack(c, msafe(meta), 0, REC_NONE), val));
            }
        }
    }

    // --- record lifecycle ---------------------------------------------

    /// Claims an IDLE record slot, bumping its sequence. When all records
    /// are busy the caller helps until one frees — the wait is bounded by
    /// the peers' own (bounded) completion.
    fn acquire_record(&self) -> (usize, u64) {
        loop {
            for (i, r) in self.records.iter().enumerate() {
                let st = r.state.load(Ordering::SeqCst);
                if state_phase(st) == PH_IDLE {
                    let seq = state_seq(st) + 1;
                    if ops::cas(&r.state, st, pack_state(seq, PH_INIT)).is_ok() {
                        return (i, seq);
                    }
                }
            }
            self.help_scan();
        }
    }

    /// Publishes record `i` (already INIT with claim/result/arg set) at
    /// `phase` and waits — helping all the while — until it terminates.
    fn announce_and_run(&self, i: usize, seq: u64, phase: u64) -> u64 {
        let r = &self.records[i];
        metrics::inc(Event::HelpAnnounce);
        let ticket = self.help_ticket.fetch_add(1, Ordering::SeqCst);
        metrics::inc(Event::Faa);
        r.ticket.store(ticket, Ordering::SeqCst);
        self.pending.fetch_add(1, Ordering::SeqCst);
        metrics::inc(Event::Faa);
        r.state.store(pack_state(seq, phase), Ordering::SeqCst);
        loop {
            self.help_request(i, seq);
            let st = r.state.load(Ordering::SeqCst);
            debug_assert_eq!(state_seq(st), seq, "record reused while owned");
            let ph = state_phase(st);
            if ph == PH_DONE || ph == PH_CLOSED {
                return ph;
            }
        }
    }

    /// Returns record `i` to IDLE. For a dequeue the caller must have
    /// scrubbed the bound slot first (see [`dequeue_slow`](Self::dequeue_slow)).
    fn release_record(&self, i: usize, seq: u64) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        metrics::inc(Event::Faa);
        self.records[i]
            .state
            .store(pack_state(seq, PH_IDLE), Ordering::SeqCst);
    }

    // --- public operations --------------------------------------------

    /// Appends `value` (must be `< BOTTOM`); fails only if the ring was
    /// finalized. Bounded: [`FAST_ATTEMPTS`] FAA attempts, then the
    /// announced slow path whose claim terminates within the starvation
    /// limit.
    pub fn enqueue(&self, value: u64) -> Result<(), CrqClosed> {
        debug_assert!(value < BOTTOM);
        self.help_scan();
        for _ in 0..FAST_ATTEMPTS {
            let t = P::fetch_add(&self.tail, 1);
            if t & FINALIZED_BIT != 0 {
                return Err(CrqClosed);
            }
            if t >= self.head.load(Ordering::SeqCst) + self.entries.len() as u64 {
                // Full lap ahead of the consumers: tantrum (CRQ-style).
                self.close();
                return Err(CrqClosed);
            }
            let c = self.cycle_of(t);
            let j = self.remap(t);
            for _ in 0..FAST_ROUNDS {
                metrics::inc(Event::NodeVisit);
                // `Fail` = lost placement window. It costs one bounded
                // round (never an unbounded retry): abandoning an enqueue
                // position only leaves a hole the dequeue-side transitions
                // absorb.
                if fault::inject(Site::WcqEnqueue) {
                    break;
                }
                let meta = self.entries[j].load_first();
                let val = self.entries[j].load_second();
                if val == BOTTOM
                    && mcycle(meta) < c
                    && meta & (TENT_BIT | BOUND_BIT) == 0
                    && (msafe(meta) || self.head.load(Ordering::SeqCst) <= t)
                {
                    adversary::preempt_point();
                    if self.entries[j]
                        .compare_exchange((meta, val), (mpack(c, true, 0, REC_NONE), value))
                        .is_ok()
                    {
                        self.arm_threshold();
                        return Ok(());
                    }
                    continue;
                }
                if meta & (TENT_BIT | BOUND_BIT) != 0 && mcycle(meta) <= c {
                    self.resolve_entry(j, meta, val);
                    continue;
                }
                break; // unusable at this cycle: next position
            }
        }
        self.enqueue_slow(value)
    }

    /// Announced enqueue: publishes a record and helps until it reaches
    /// DONE (placed) or CLOSED (ring finalized first).
    fn enqueue_slow(&self, value: u64) -> Result<(), CrqClosed> {
        let (i, seq) = self.acquire_record();
        let r = &self.records[i];
        r.arg.store(value, Ordering::SeqCst);
        pair_reset(&r.claim, (claim_hi(seq, 0), POS_NONE));
        pair_reset(&r.result, (seq << 1, 0));
        let ph = self.announce_and_run(i, seq, PH_ENQ);
        self.release_record(i, seq);
        if ph == PH_DONE {
            Ok(())
        } else {
            Err(CrqClosed)
        }
    }

    /// Removes the oldest value, or `None` when empty. Bounded like
    /// [`enqueue`](Self::enqueue); a fast-path position whose window
    /// expires while it may still hold our value is handed to the helpers
    /// instead of abandoned (abandoning it would strand the value).
    pub fn dequeue(&self) -> Option<u64> {
        self.help_scan();
        if self.threshold.load(Ordering::SeqCst) < 0 {
            metrics::inc(Event::ThresholdExhausted);
            return None;
        }
        for _ in 0..FAST_ATTEMPTS {
            let h = P::fetch_add(&self.head, 1);
            let c = self.cycle_of(h);
            let j = self.remap(h);
            // Whether position `h` may still hold a value we own the
            // right to consume.
            let mut undecided = true;
            for _ in 0..FAST_ROUNDS {
                metrics::inc(Event::NodeVisit);
                let meta = self.entries[j].load_first();
                let val = self.entries[j].load_second();
                if mcycle(meta) > c {
                    undecided = false;
                    break;
                }
                if meta & (TENT_BIT | BOUND_BIT) != 0 {
                    self.resolve_entry(j, meta, val);
                    continue;
                }
                if mcycle(meta) == c {
                    if val == BOTTOM {
                        undecided = false; // hole at our cycle
                        break;
                    }
                    // Firm entry: ours to consume. Pre-finalize a slow
                    // placer first so its record can settle.
                    if mrec(meta) != REC_NONE {
                        self.finalize_src(mrec(meta) as usize, h);
                    }
                    adversary::preempt_point();
                    if fault::inject(Site::WcqDequeue) {
                        continue; // lost window: one round, not unbounded
                    }
                    if self.entries[j]
                        .compare_exchange((meta, val), (mpack(c, msafe(meta), 0, REC_NONE), BOTTOM))
                        .is_ok()
                    {
                        return Some(val);
                    }
                    continue;
                }
                // Older cycle: SCQ transitions (empty slot up to our
                // cycle / mark an overtaken value unsafe), then dead.
                let was_empty = val == BOTTOM;
                let new = if was_empty {
                    mpack(c, msafe(meta), 0, REC_NONE)
                } else {
                    mpack(mcycle(meta), false, 0, mrec(meta))
                };
                adversary::preempt_point();
                if self.entries[j]
                    .compare_exchange((meta, val), (new, val))
                    .is_ok()
                {
                    metrics::inc(if was_empty {
                        Event::EmptyTransition
                    } else {
                        Event::UnsafeTransition
                    });
                    undecided = false;
                    break;
                }
            }
            if undecided {
                return self.dequeue_slow(h);
            }
            // Failed attempt at a dead position we FAA'd: SCQ accounting.
            let t = self.tail_index();
            if t <= h + 1 {
                self.catchup(t, h + 1);
                metrics::inc(Event::Faa);
                self.threshold.fetch_sub(1, Ordering::SeqCst);
                return None;
            }
            metrics::inc(Event::Faa);
            if self.threshold.fetch_sub(1, Ordering::SeqCst) <= 0 {
                metrics::inc(Event::ThresholdExhausted);
                return None;
            }
        }
        self.dequeue_slow(POS_NONE)
    }

    /// Announced dequeue. `pos0` is `POS_NONE`, or a position the caller
    /// owns from a fast-path FAA whose window expired — the claim starts
    /// there so the position is completed, not leaked.
    fn dequeue_slow(&self, pos0: u64) -> Option<u64> {
        let (i, seq) = self.acquire_record();
        let r = &self.records[i];
        pair_reset(&r.claim, (claim_hi(seq, 0), pos0));
        pair_reset(&r.result, (seq << 1, 0));
        let _ = self.announce_and_run(i, seq, PH_DEQ);
        // Before the record can be reused, the bound slot must be
        // scrubbed — otherwise a later occupant of this record could be
        // confused with the old bind and the value delivered twice.
        let cpos = r.claim.load_second();
        if claim_is_placed(cpos) {
            let p = cpos & !PLACED_BIT;
            let c = self.cycle_of(p);
            let j = self.remap(p);
            let meta = self.entries[j].load_first();
            let val = self.entries[j].load_second();
            if mcycle(meta) == c && meta & BOUND_BIT != 0 && mrec(meta) == i as u64 {
                let _ = self.entries[j]
                    .compare_exchange((meta, val), (mpack(c, msafe(meta), 0, REC_NONE), BOTTOM));
            }
        }
        let v = r.result.load_second();
        debug_assert_eq!(r.result.load_first(), (seq << 1) | 1, "DONE without result");
        self.release_record(i, seq);
        if v == BOTTOM {
            None
        } else {
            Some(v)
        }
    }
}

/// The unbounded wait-free queue with hardware fetch-and-add.
pub type Wcq = WcqGeneric<HardwareFaa>;

/// An unbounded, linearizable MPMC FIFO queue of `u64` values (`< BOTTOM`)
/// built from linked [`WcqRing`]s — the wait-free sibling of
/// [`Lscq`](crate::Lscq).
///
/// List structure, tantrum spills, hazard-pointer retirement, and the
/// abandonment double-check are identical to [`LscqGeneric`](crate::LscqGeneric);
/// only the ring type differs. Per-operation work inside a ring is bounded
/// (see the module docs), so a stalled peer cannot starve survivors.
///
/// ```
/// use lcrq_core::Wcq;
/// let q = Wcq::new();
/// q.enqueue(10);
/// assert_eq!(q.dequeue(), Some(10));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct WcqGeneric<P: FaaPolicy = HardwareFaa> {
    head: CachePadded<AtomicPtr<WcqRing<P>>>,
    tail: CachePadded<AtomicPtr<WcqRing<P>>>,
    domain: Domain,
    config: LcrqConfig,
    closed: AtomicBool,
}

/// Hazard slot used for the ring an operation is about to access.
const HP_SLOT: usize = 0;

impl<P: FaaPolicy> WcqGeneric<P> {
    /// Creates an empty queue with the default [`LcrqConfig`].
    pub fn new() -> Self {
        Self::with_config(LcrqConfig::default())
    }

    /// Creates an empty queue with an explicit configuration
    /// (`ring_order` and `starvation_limit` apply; the LCRQ-only knobs —
    /// bounded wait, hierarchy, ring pool — are ignored).
    pub fn with_config(config: LcrqConfig) -> Self {
        let first = Box::into_raw(Box::new(WcqRing::<P>::new(&config)));
        Self {
            head: CachePadded::new(AtomicPtr::new(first)),
            tail: CachePadded::new(AtomicPtr::new(first)),
            domain: Domain::new(),
            config,
            closed: AtomicBool::new(false),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LcrqConfig {
        &self.config
    }

    /// The queue's hazard-pointer domain (diagnostic).
    pub fn hazard_domain(&self) -> &Domain {
        &self.domain
    }

    /// Appends `value` (must be `< BOTTOM`).
    ///
    /// # Panics
    ///
    /// Panics if the queue has been [`close`](Self::close)d; use
    /// [`try_enqueue`](Self::try_enqueue) when shutdown is possible.
    pub fn enqueue(&self, value: u64) {
        if self.try_enqueue(value).is_err() {
            panic!("enqueue on a closed Wcq (use try_enqueue to handle shutdown)");
        }
    }

    /// Appends `value` unless the queue has been [`close`](Self::close)d,
    /// in which case the value is handed back as `Err(value)`. Same
    /// shutdown fence as [`LscqGeneric::try_enqueue`](crate::LscqGeneric::try_enqueue).
    pub fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        let mut backoff: Option<Backoff> = None;
        loop {
            match self.try_enqueue_fallible(value) {
                Ok(()) => return Ok(()),
                Err(EnqueueError::Closed(v)) => return Err(v),
                Err(EnqueueError::AllocFailed(_)) => {
                    backoff.get_or_insert_with(Backoff::jittered).spin();
                }
            }
        }
    }

    /// Like [`try_enqueue`](Self::try_enqueue), but surfaces a refused
    /// ring allocation (the `ring-alloc` fail point) as
    /// [`EnqueueError::AllocFailed`] instead of retrying internally.
    pub fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        assert!(value != BOTTOM, "BOTTOM (u64::MAX) is reserved");
        let mut backoff: Option<Backoff> = None;
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(EnqueueError::Closed(value));
            }
            let ring = self.domain.protect(HP_SLOT, &self.tail);
            // SAFETY: hazard-protected, so it cannot be reclaimed while we
            // use it.
            let ring_ref = unsafe { &*ring };
            // Help a half-finished append: tail must point at the last ring.
            let next = ring_ref.next.load(Ordering::SeqCst);
            if !next.is_null() {
                let _ = ops::ptr::cas_ptr(&self.tail, ring, next);
                continue;
            }
            if ring_ref.enqueue(value).is_ok() {
                self.domain.clear(HP_SLOT);
                return Ok(());
            }
            // Ring closed. Distinguish shutdown close from tantrum close.
            if self.closed.load(Ordering::SeqCst) {
                self.domain.clear(HP_SLOT);
                return Err(EnqueueError::Closed(value));
            }
            let _ = fault::inject(Site::CloseRace);
            if fault::inject(Site::RingAlloc) {
                metrics::inc(Event::AllocDegraded);
                self.domain.clear(HP_SLOT);
                return Err(EnqueueError::AllocFailed(value));
            }
            // Tantrum: race to append a fresh ring seeded with the value.
            let newring = Box::into_raw(Box::new(WcqRing::<P>::with_seed(
                &self.config,
                core::slice::from_ref(&value),
            )));
            match ops::ptr::cas_ptr(&ring_ref.next, core::ptr::null_mut(), newring) {
                Ok(()) => {
                    let _ = ops::ptr::cas_ptr(&self.tail, ring, newring);
                    self.domain.clear(HP_SLOT);
                    return Ok(());
                }
                Err(_) => {
                    // Another enqueuer linked first; ours was never
                    // published, so a plain drop suffices.
                    // SAFETY: unpublished and uniquely owned.
                    drop(unsafe { Box::from_raw(newring) });
                    backoff.get_or_insert_with(Backoff::jittered).spin();
                }
            }
        }
    }

    /// Closes the queue for further enqueues; dequeues keep draining.
    /// Returns `true` on the first call. Flag-then-close-the-chain, as in
    /// [`LscqGeneric::close`](crate::LscqGeneric::close).
    pub fn close(&self) -> bool {
        if self.closed.swap(true, Ordering::SeqCst) {
            return false;
        }
        loop {
            let ring = self.domain.protect(HP_SLOT, &self.tail);
            // SAFETY: hazard-protected.
            let ring_ref = unsafe { &*ring };
            ring_ref.close();
            let next = ring_ref.next.load(Ordering::SeqCst);
            if next.is_null() {
                self.domain.clear(HP_SLOT);
                return true;
            }
            let _ = ops::ptr::cas_ptr(&self.tail, ring, next);
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Removes the oldest value, or `None` when the queue is empty.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let ring = self.domain.protect(HP_SLOT, &self.head);
            // SAFETY: hazard-protected.
            let ring_ref = unsafe { &*ring };
            if let Some(v) = ring_ref.dequeue() {
                self.domain.clear(HP_SLOT);
                return Some(v);
            }
            let next = ring_ref.next.load(Ordering::SeqCst);
            if next.is_null() {
                self.domain.clear(HP_SLOT);
                return None;
            }
            // Abandonment double-check (the LCRQ erratum), wCQ edition:
            // re-arm the threshold so the check actually scans — a racing
            // enqueue may have placed its entry without yet resetting the
            // counter. The ring has a `next`, so it is closed and its tail
            // frozen: the scan terminates.
            ring_ref.reset_threshold();
            if let Some(v) = ring_ref.dequeue() {
                self.domain.clear(HP_SLOT);
                return Some(v);
            }
            if ops::ptr::cas_ptr(&self.head, ring, next).is_ok() {
                self.domain.clear(HP_SLOT);
                // SAFETY: `ring` is now unreachable from the queue; hazard
                // retirement defers the free past any straggling readers.
                unsafe { self.domain.retire(ring) };
            } else {
                self.domain.clear(HP_SLOT);
            }
        }
    }

    /// Whether the queue appears empty (racy snapshot).
    pub fn is_empty_hint(&self) -> bool {
        let ring = self.domain.protect(HP_SLOT, &self.head);
        // SAFETY: hazard-protected.
        let ring_ref = unsafe { &*ring };
        let empty = ring_ref.head_index() >= ring_ref.tail_index()
            && ring_ref.next.load(Ordering::SeqCst).is_null();
        self.domain.clear(HP_SLOT);
        empty
    }

    /// Number of rings currently linked (diagnostic; racy).
    pub fn ring_count(&self) -> usize {
        let mut count = 0;
        let mut cur = self.head.load(Ordering::SeqCst);
        while !cur.is_null() {
            count += 1;
            // SAFETY: only used in quiescent diagnostics/tests.
            cur = unsafe { (*cur).next.load(Ordering::SeqCst) };
        }
        count
    }

    /// Returns an iterator that dequeues until the queue reports empty.
    pub fn drain(&self) -> WcqDrain<'_, P> {
        WcqDrain { queue: self }
    }
}

impl<P: FaaPolicy> Default for WcqGeneric<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: FaaPolicy> core::fmt::Debug for WcqGeneric<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Wcq")
            .field("faa_policy", &P::name())
            .field("ring_order", &self.config.ring_order)
            .field("rings", &self.ring_count())
            .finish()
    }
}

impl<P: FaaPolicy> FromIterator<u64> for WcqGeneric<P> {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let q = Self::new();
        for v in iter {
            q.enqueue(v);
        }
        q
    }
}

impl<P: FaaPolicy> Extend<u64> for WcqGeneric<P> {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.enqueue(v);
        }
    }
}

/// Draining iterator returned by [`WcqGeneric::drain`].
pub struct WcqDrain<'a, P: FaaPolicy> {
    queue: &'a WcqGeneric<P>,
}

impl<P: FaaPolicy> Iterator for WcqDrain<'_, P> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        self.queue.dequeue()
    }
}

impl<P: FaaPolicy> Drop for WcqGeneric<P> {
    fn drop(&mut self) {
        // Exclusive access: free the whole chain. Rings retired earlier but
        // not yet reclaimed are freed when `domain` drops.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access in drop.
            let ring = unsafe { Box::from_raw(cur) };
            cur = ring.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: the queue transfers plain u64 values; all structure is atomic.
unsafe impl<P: FaaPolicy> Send for WcqGeneric<P> {}
unsafe impl<P: FaaPolicy> Sync for WcqGeneric<P> {}

impl<P: FaaPolicy> lcrq_queues::ConcurrentQueue for WcqGeneric<P> {
    fn enqueue(&self, value: u64) {
        WcqGeneric::enqueue(self, value);
    }
    fn dequeue(&self) -> Option<u64> {
        WcqGeneric::dequeue(self)
    }
    // Batch ops use the trait's scalar-loop defaults: a k-wide FAA would
    // reserve k positions whose helped completion the record protocol
    // cannot express as a group.
    fn name(&self) -> &'static str {
        "wcq"
    }
    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: FaaPolicy> lcrq_queues::ClosableQueue for WcqGeneric<P> {
    fn close(&self) -> bool {
        WcqGeneric::close(self)
    }
    fn is_closed(&self) -> bool {
        WcqGeneric::is_closed(self)
    }
    fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        WcqGeneric::try_enqueue(self, value)
    }
    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        WcqGeneric::try_enqueue_fallible(self, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrq_queues::testing;

    fn tiny() -> LcrqConfig {
        LcrqConfig::new().with_ring_order(3)
    }

    #[test]
    fn ring_fifo_sequential() {
        let r = WcqRing::<HardwareFaa>::new(&tiny());
        for i in 0..8 {
            assert!(r.enqueue(i).is_ok());
        }
        for i in 0..8 {
            assert_eq!(r.dequeue(), Some(i));
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn ring_wraps_cycles() {
        let r = WcqRing::<HardwareFaa>::new(&tiny());
        for round in 0..50u64 {
            for i in 0..4 {
                assert!(r.enqueue(round * 10 + i).is_ok());
            }
            for i in 0..4 {
                assert_eq!(r.dequeue(), Some(round * 10 + i));
            }
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn ring_full_tantrum_closes() {
        let r = WcqRing::<HardwareFaa>::new(&tiny());
        let mut placed = 0u64;
        while r.enqueue(placed).is_ok() {
            placed += 1;
            assert!(placed < 1000, "full ring must eventually tantrum");
        }
        assert!(r.is_closed());
        assert!(placed >= r.capacity(), "at least nominal capacity fits");
        for i in 0..placed {
            assert_eq!(r.dequeue(), Some(i), "tantrum must not lose values");
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn ring_slow_path_roundtrip() {
        // Drive the announced paths directly: the owner is its own helper,
        // so this exercises claim candidates, tentative placement,
        // promotion, binding, and delivery without concurrency.
        let r = WcqRing::<HardwareFaa>::new(&tiny());
        for i in 0..6 {
            assert_eq!(r.enqueue_slow(i), Ok(()));
        }
        assert_eq!(r.pending_requests(), 0, "records released");
        for i in 0..6 {
            assert_eq!(r.dequeue_slow(POS_NONE), Some(i));
        }
        assert_eq!(r.dequeue_slow(POS_NONE), None);
        assert_eq!(r.pending_requests(), 0);
    }

    #[test]
    fn ring_slow_and_fast_paths_interleave_in_fifo_order() {
        let r = WcqRing::<HardwareFaa>::new(&LcrqConfig::new().with_ring_order(5));
        for i in 0..20u64 {
            if i % 2 == 0 {
                assert!(r.enqueue(i).is_ok());
            } else {
                assert_eq!(r.enqueue_slow(i), Ok(()));
            }
        }
        for i in 0..20u64 {
            let got = if i % 3 == 0 {
                r.dequeue_slow(POS_NONE)
            } else {
                r.dequeue()
            };
            assert_eq!(got, Some(i));
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn ring_slow_enqueue_on_closed_ring_reports_closed() {
        let r = WcqRing::<HardwareFaa>::new(&tiny());
        r.close();
        assert_eq!(r.enqueue_slow(1), Err(CrqClosed));
        assert_eq!(r.enqueue(2), Err(CrqClosed));
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = Wcq::new();
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty_hint());
    }

    #[test]
    fn fifo_order_sequential() {
        let q = Wcq::with_config(tiny());
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn overflowing_one_ring_spills_into_new_rings_in_order() {
        let q = Wcq::with_config(tiny());
        let total = 4 * q.config().ring_size();
        for i in 0..total {
            q.enqueue(i);
        }
        assert!(q.ring_count() > 1, "tiny rings must have spilled");
        for i in 0..total {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    #[should_panic(expected = "BOTTOM")]
    fn enqueueing_bottom_panics() {
        Wcq::new().enqueue(u64::MAX);
    }

    #[test]
    fn max_value_is_enqueueable() {
        let q = Wcq::new();
        q.enqueue(u64::MAX - 1);
        assert_eq!(q.dequeue(), Some(u64::MAX - 1));
    }

    #[test]
    fn mpmc_stress_default_ring() {
        let q = Wcq::new();
        testing::mpmc_stress(&q, 4, 4, 10_000);
    }

    #[test]
    fn mpmc_stress_tiny_ring_exercises_ring_switching() {
        let q = Wcq::with_config(tiny());
        testing::mpmc_stress(&q, 4, 4, 5_000);
        assert!(q.ring_count() < 100, "drained rings must be retired");
    }

    #[test]
    fn model_check_against_vecdeque() {
        for seed in [0x3C9, 0x13C9] {
            let q = Wcq::with_config(tiny());
            testing::model_check(&q, seed);
        }
    }

    #[test]
    fn pairs_workload_drains() {
        let q = Wcq::with_config(tiny());
        testing::pairs_smoke(&q, 4, 5_000);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn retired_rings_are_reclaimed() {
        let q = Wcq::with_config(LcrqConfig::new().with_ring_order(2));
        for i in 0..10_000 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(
            q.ring_count() < 64,
            "ring chain kept growing: {}",
            q.ring_count()
        );
    }

    #[test]
    fn close_fences_enqueues_but_drains_existing_items() {
        let q = Wcq::with_config(tiny());
        for i in 0..20 {
            q.enqueue(i);
        }
        assert!(q.close());
        assert!(!q.close(), "second close reports false");
        assert!(q.is_closed());
        assert_eq!(q.try_enqueue(99), Err(99));
        for i in 0..20 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn close_races_with_producers_without_losing_items() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        for round in 0..20 {
            let q = Arc::new(Wcq::with_config(tiny()));
            let accepted = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for t in 0..3u64 {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                handles.push(std::thread::spawn(move || {
                    for i in 0..200u64 {
                        if q.try_enqueue((t << 32) | i).is_ok() {
                            accepted.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }));
            }
            let closer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    if round % 2 == 0 {
                        std::thread::yield_now();
                    }
                    q.close();
                })
            };
            for h in handles {
                h.join().unwrap();
            }
            closer.join().unwrap();
            let drained = q.drain().count() as u64;
            assert_eq!(drained, accepted.load(Ordering::SeqCst));
        }
    }

    #[test]
    fn dequeue_empty_is_never_transient() {
        let q = Wcq::with_config(tiny());
        for i in 0..500 {
            q.enqueue(i);
        }
        let mut seen = 0;
        while q.dequeue().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 500);
        q.enqueue(7);
        assert_eq!(q.dequeue(), Some(7));
    }

    #[test]
    fn drop_with_items_across_rings_is_clean() {
        let q = Wcq::with_config(tiny());
        for i in 0..100 {
            q.enqueue(i);
        }
        drop(q); // must not leak or double-free (ASan job covers this)
    }

    #[test]
    fn closable_trait_object_round_trip() {
        use lcrq_queues::ClosableQueue;
        let q: Box<dyn ClosableQueue> = Box::new(Wcq::new());
        q.try_enqueue(5).unwrap();
        assert_eq!(q.dequeue(), Some(5));
        q.close();
        assert_eq!(q.try_enqueue(6), Err(6));
    }

    #[test]
    fn name_is_wcq() {
        use lcrq_queues::ConcurrentQueue;
        assert_eq!(ConcurrentQueue::name(&Wcq::new()), "wcq");
        assert!(ConcurrentQueue::is_nonblocking(&Wcq::new()));
    }
}
