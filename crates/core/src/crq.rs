//! The CRQ — concurrent ring queue with tantrum semantics (paper §4.1).
//!
//! A ring of `R` nodes with strictly increasing 64-bit `head`/`tail`
//! indices, both updated with fetch-and-add. Index `i` refers to node
//! `i mod R`. The most significant bit of `tail` marks the ring CLOSED.
//!
//! Invariants maintained by the node transition protocol:
//!
//! * An occupied node `(s, i, x)` can only be emptied by the dequeuer whose
//!   F&A returned exactly `i` (the *dequeue transition*).
//! * A dequeuer that arrives at an *empty* node before its matching
//!   enqueuer advances the node's index past its own (`empty transition`),
//!   preventing any same-or-older enqueue from using the node.
//! * A dequeuer that arrives at an *occupied* node it cannot dequeue
//!   (a previous-lap item) clears the *safe* bit (`unsafe transition`);
//!   a later enqueuer may only use an unsafe node after verifying its
//!   matching dequeuer has not started (`head <= t`).
//!
//! Because a dequeuer's F&A can push `head` past `tail`, the queue can enter
//! the transient "inconsistent" state `head > tail`; [`Crq::fix_state`]
//! repairs it before a dequeue reports empty, so enqueuers are not forced to
//! burn F&As on already-skipped indices.

use core::marker::PhantomData;
use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{OnceLock, Weak};

use lcrq_atomic::{ops, FaaPolicy, HardwareFaa};
use lcrq_util::metrics::{self, Event};
use lcrq_util::CachePadded;

use crate::config::LcrqConfig;
use crate::node::Node;
use crate::pool::RingPool;
use crate::BOTTOM;

/// Error returned by [`Crq::enqueue`] once the ring is closed (tantrum
/// semantics: every subsequent enqueue also returns `CrqClosed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrqClosed;

/// Bit 63 of `tail`: the ring is closed to further enqueues.
const CLOSED_BIT: u64 = 1 << 63;

/// Scrubbing refuses to re-base past this point, keeping every index a ring
/// can hand out comfortably inside the 63-bit index space (bit 63 of `tail`
/// is the CLOSED flag). Reaching it would take ~2^62 operations through one
/// ring; the refusal path simply frees the ring instead of pooling it.
const MAX_BASE: u64 = 1 << 62;

/// A concurrent ring queue (bounded, closable). Most users want the
/// unbounded [`Lcrq`](crate::Lcrq) built from a list of these.
///
/// Generic over the fetch-and-add policy `P` so the same code yields the
/// paper's LCRQ (hardware F&A) and LCRQ-CAS (CAS-loop F&A) variants.
pub struct Crq<P: FaaPolicy = HardwareFaa> {
    head: CachePadded<AtomicU64>,
    /// Bit 63 = closed; bits 62..0 = the tail index.
    tail: CachePadded<AtomicU64>,
    /// The next CRQ in an LCRQ list (null while this is the tail ring).
    pub(crate) next: CachePadded<AtomicPtr<Crq<P>>>,
    /// Identifies the cluster whose threads currently "own" the ring
    /// (LCRQ+H); unused unless the hierarchical optimization is enabled.
    pub(crate) cluster: CachePadded<AtomicU64>,
    ring: Box<[Node]>,
    mask: u64,
    starvation_limit: u32,
    bounded_wait_spins: u32,
    /// Index base of the current incarnation: 0 for a fresh ring; each
    /// recycle re-bases it strictly above every index the previous
    /// incarnation could have handed out (see [`scrub`](Self::scrub)).
    base: AtomicU64,
    /// Number of times this ring has been scrubbed for reuse.
    reuse_epoch: AtomicU64,
    /// The recycling pool this ring returns to when retired (set once,
    /// before the ring is published; `Weak` so the pool owning rings does
    /// not keep itself alive through them).
    pool: OnceLock<Weak<RingPool<P>>>,
    _faa: PhantomData<P>,
}

impl<P: FaaPolicy> Crq<P> {
    /// Creates an empty ring of `1 << config.ring_order` nodes.
    pub fn new(config: &LcrqConfig) -> Self {
        Self::with_seed(config, None)
    }

    /// Creates a ring pre-seeded with one item (used when an enqueuer
    /// appends a fresh CRQ "initialized to contain x", Figure 5c line 162).
    pub fn with_seed(config: &LcrqConfig, seed: Option<u64>) -> Self {
        match seed {
            Some(x) => Self::with_seed_batch(config, &[x]),
            None => Self::with_seed_batch(config, &[]),
        }
    }

    /// Creates a ring pre-seeded with `seed` (at most `R` items): the batch
    /// generalization of [`with_seed`](Self::with_seed), used when a batch
    /// enqueue closes the tail ring mid-batch and spills its unplaced
    /// remainder into the fresh ring it appends.
    pub fn with_seed_batch(config: &LcrqConfig, seed: &[u64]) -> Self {
        let size = config.ring_size();
        assert!(
            seed.len() as u64 <= size,
            "seed batch ({}) exceeds ring size ({size})",
            seed.len()
        );
        let ring: Vec<Node> = (0..size).map(Node::new).collect();
        for (u, &x) in seed.iter().enumerate() {
            debug_assert!(x != BOTTOM);
            // Exclusive ownership: the CAS2 can only fail spuriously (the
            // `cas2` fail point); retry until the seed is placed.
            loop {
                let v = ring[u].read();
                if ring[u].try_enqueue(&v, u as u64, x) {
                    break;
                }
            }
        }
        let tail = seed.len() as u64;
        metrics::inc(Event::RingAlloc);
        Self {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(tail)),
            next: CachePadded::new(AtomicPtr::new(core::ptr::null_mut())),
            cluster: CachePadded::new(AtomicU64::new(0)),
            ring: ring.into_boxed_slice(),
            mask: size - 1,
            starvation_limit: config.starvation_limit,
            bounded_wait_spins: config.bounded_wait_spins,
            base: AtomicU64::new(0),
            reuse_epoch: AtomicU64::new(0),
            pool: OnceLock::new(),
            _faa: PhantomData,
        }
    }

    /// Ring size `R`.
    pub fn ring_size(&self) -> u64 {
        self.mask + 1
    }

    #[inline]
    pub(crate) fn node(&self, index: u64) -> &Node {
        &self.ring[(index & self.mask) as usize]
    }

    /// Appends `value` (must be `< BOTTOM`), or reports the ring closed.
    ///
    /// Figure 3d. Fails (closing the ring) when the ring appears full
    /// (`t - head >= R`) or after `starvation_limit` placement failures.
    pub fn enqueue(&self, value: u64) -> Result<(), CrqClosed> {
        debug_assert!(value != BOTTOM, "BOTTOM is reserved");
        let mut attempts = 0u32;
        loop {
            let raw = P::fetch_add(&self.tail, 1); // F&A on all 64 bits
            if raw & CLOSED_BIT != 0 {
                return Err(CrqClosed);
            }
            let t = raw;
            let node = self.node(t);
            metrics::inc(Event::NodeVisit);
            let view = node.read();
            // Adversary injection inside the read→CAS2 window (see
            // lcrq_util::adversary). LCRQ's CAS2 targets a slot only this
            // F&A winner races for, so even a mid-window preemption rarely
            // fails it — and a preempted operation blocks nobody.
            lcrq_util::adversary::preempt_point();
            // Fail point between the F&A and the CAS2 placement: `Fail`
            // force-closes the ring (an injected tantrum), `Panic` aborts
            // the enqueue with the tail index consumed but the slot never
            // filled — dequeuers must skip it via the empty transition.
            if lcrq_util::fault::inject(lcrq_util::fault::Site::CrqEnqueue) {
                self.close();
            }
            if view.is_empty()
                && view.idx <= t
                && (view.safe || self.head.load(Ordering::SeqCst) <= t)
                && node.try_enqueue(&view, t, value)
            {
                return Ok(());
            }
            attempts += 1;
            let h = self.head.load(Ordering::SeqCst);
            if t.wrapping_sub(h) as i64 >= self.ring_size() as i64
                || attempts >= self.starvation_limit
            {
                self.close();
                return Err(CrqClosed);
            }
        }
    }

    /// Removes the oldest value, or returns `None` when (linearizably)
    /// empty. Figure 3b.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let h = P::fetch_add(&self.head, 1);
            let node = self.node(h);
            let mut spins = self.bounded_wait_spins;
            loop {
                metrics::inc(Event::NodeVisit);
                let view = node.read();
                lcrq_util::adversary::preempt_point(); // inside the read→CAS2 window
                let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::CrqDequeue);
                if view.idx > h {
                    break; // overtaken between our F&A and the read
                }
                if !view.is_empty() {
                    if view.idx == h {
                        // Our item: dequeue transition.
                        if node.try_dequeue(&view, self.ring_size()) {
                            return Some(view.val);
                        }
                    } else {
                        // Previous-lap item we cannot take: mark unsafe so
                        // enq_h cannot blindly store into this node.
                        if node.try_mark_unsafe(&view) {
                            metrics::inc(Event::UnsafeTransition);
                            break;
                        }
                    }
                } else {
                    // Empty node with idx <= h. If the matching enqueuer is
                    // active (tail already past h), wait briefly for its
                    // enqueue transition instead of wasting both operations
                    // (§4.1.1 bounded waiting).
                    if spins > 0 && self.tail_index() > h {
                        spins -= 1;
                        metrics::inc(Event::SpinWait);
                        core::hint::spin_loop();
                        continue;
                    }
                    // Empty transition: block index h (and all older laps).
                    if node.try_empty(&view, h, self.ring_size()) {
                        metrics::inc(Event::EmptyTransition);
                        break;
                    }
                }
                // A CAS2 failed: the node changed; re-read and retry.
            }
            // Failed to dequeue at h; is the queue empty?
            let t = self.tail_index();
            if t <= h + 1 {
                self.fix_state();
                return None;
            }
        }
    }

    /// Appends a prefix of `values` after reserving up to `values.len()`
    /// consecutive tail indices with a **single** `FAA(tail, k)`, then
    /// filling each reserved slot with the ordinary per-slot CAS2 enqueue
    /// transition. Returns the number of values placed.
    ///
    /// Semantics: the batch is **not** an atomic multi-enqueue — it
    /// linearizes as `placed` individual enqueues whose queue positions are
    /// contiguous within this reservation (concurrent enqueuers' items sit
    /// entirely before or after the reserved range, never between two items
    /// of the same reservation; see DESIGN.md "Batched operations").
    ///
    /// A return of `placed < values.len()` means one of:
    ///
    /// * the ring is [closed](Self::is_closed) (tantrum) — the caller must
    ///   spill the remainder elsewhere (the LCRQ appends a fresh ring
    ///   seeded via [`with_seed_batch`](Self::with_seed_batch));
    /// * the ring is still open but this reservation ran out of usable
    ///   slots (a slot was skipped after a dequeuer's empty/unsafe
    ///   transition, or `values.len() > R`) — the caller may simply call
    ///   again for the rest.
    ///
    /// Skipped reserved indices are harmless: a dequeuer reaching one
    /// performs the same empty transition it would after a scalar
    /// enqueuer's failed placement attempt.
    pub fn enqueue_batch(&self, values: &[u64]) -> usize {
        if values.is_empty() {
            return 0;
        }
        // Cap the reservation at R: indices beyond one lap can never all be
        // usable, and a bounded reservation keeps `head - tail` overshoot
        // (and thus fix_state work) small.
        let k = (values.len() as u64).min(self.ring_size());
        let raw = P::fetch_add_k(&self.tail, k); // one F&A for k indices
        if raw & CLOSED_BIT != 0 {
            return 0;
        }
        metrics::inc(Event::BatchEnqueue);
        let first = raw;
        let mut placed = 0usize;
        let mut attempts = 0u32;
        for j in 0..k {
            debug_assert!(values[placed] != BOTTOM, "BOTTOM is reserved");
            let t = first + j;
            let node = self.node(t);
            loop {
                metrics::inc(Event::NodeVisit);
                let view = node.read();
                lcrq_util::adversary::preempt_point(); // read→CAS2 window
                if lcrq_util::fault::inject(lcrq_util::fault::Site::CrqEnqueue) {
                    self.close(); // injected tantrum, as in the scalar path
                }
                if view.is_empty()
                    && view.idx <= t
                    && (view.safe || self.head.load(Ordering::SeqCst) <= t)
                {
                    if node.try_enqueue(&view, t, values[placed]) {
                        placed += 1;
                        break;
                    }
                    continue; // CAS2 failed: node changed; re-read
                }
                // Slot unusable this lap (dequeuer advanced its index or
                // left it unsafe): keep the value for the next reserved
                // index, exactly as a scalar enqueue would re-F&A.
                attempts += 1;
                let h = self.head.load(Ordering::SeqCst);
                if t.wrapping_sub(h) as i64 >= self.ring_size() as i64
                    || attempts >= self.starvation_limit
                {
                    self.close();
                    metrics::add(Event::BatchEnqueueItems, placed as u64);
                    return placed;
                }
                break;
            }
            if placed == values.len() {
                break;
            }
        }
        metrics::add(Event::BatchEnqueueItems, placed as u64);
        placed
    }

    /// Removes up to `max` of the oldest values after reserving head
    /// indices with a **single** `FAA(head, k)`, appending them to `out` in
    /// queue order. Returns the number of values removed.
    ///
    /// `k` is bounded by the observed `tail - head` distance so an
    /// over-long batch does not manufacture empty transitions on indices no
    /// enqueuer has reserved (the bound is racy under concurrency — any
    /// overshoot behaves exactly like the same number of scalar empty
    /// dequeues). Each reserved index is processed with the ordinary
    /// per-slot protocol: dequeue transition, bounded wait, unsafe/empty
    /// transitions, so tantrum semantics are preserved per index.
    ///
    /// Returns 0 **without reserving anything** when the queue looks empty;
    /// callers needing a linearizable EMPTY verdict (or ring switching)
    /// should fall back to a scalar [`dequeue`](Self::dequeue).
    pub fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let h0 = self.head.load(Ordering::SeqCst);
        let avail = self.tail_index().saturating_sub(h0);
        let k = (max as u64).min(avail);
        if k == 0 {
            return 0;
        }
        metrics::inc(Event::BatchDequeue);
        let first = P::fetch_add_k(&self.head, k); // one F&A for k indices
        let mut taken = 0usize;
        for j in 0..k {
            let h = first + j;
            let node = self.node(h);
            let mut spins = self.bounded_wait_spins;
            loop {
                metrics::inc(Event::NodeVisit);
                let view = node.read();
                lcrq_util::adversary::preempt_point(); // read→CAS2 window
                let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::CrqDequeue);
                if view.idx > h {
                    break; // overtaken between the reservation and the read
                }
                if !view.is_empty() {
                    if view.idx == h {
                        // Our item: dequeue transition.
                        if node.try_dequeue(&view, self.ring_size()) {
                            out.push(view.val);
                            taken += 1;
                            break;
                        }
                    } else if node.try_mark_unsafe(&view) {
                        // Previous-lap item we cannot take.
                        metrics::inc(Event::UnsafeTransition);
                        break;
                    }
                } else {
                    // Empty node: wait briefly for the matching enqueuer
                    // (§4.1.1), then block the index with an empty
                    // transition.
                    if spins > 0 && self.tail_index() > h {
                        spins -= 1;
                        metrics::inc(Event::SpinWait);
                        core::hint::spin_loop();
                        continue;
                    }
                    if node.try_empty(&view, h, self.ring_size()) {
                        metrics::inc(Event::EmptyTransition);
                        break;
                    }
                }
                // A CAS2 failed: the node changed; re-read and retry.
            }
        }
        if taken == 0 && self.tail_index() <= first + k {
            // Whole reservation came up empty-handed: repair any
            // head-past-tail overshoot before reporting nothing, as the
            // scalar path does.
            self.fix_state();
        }
        metrics::add(Event::BatchDequeueItems, taken as u64);
        taken
    }

    /// Closes the ring: every future enqueue returns [`CrqClosed`].
    /// Idempotent; uses test-and-set on tail's closed bit (Figure 3d l.99).
    pub fn close(&self) {
        if !ops::tas_bit(&self.tail, 63) {
            metrics::inc(Event::CrqClosed);
        }
    }

    /// Whether the ring has been closed.
    pub fn is_closed(&self) -> bool {
        self.tail.load(Ordering::SeqCst) & CLOSED_BIT != 0
    }

    /// Current head index (diagnostic; racy).
    pub fn head_index(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Current tail index without the closed bit (diagnostic; racy).
    pub fn tail_index(&self) -> u64 {
        self.tail.load(Ordering::SeqCst) & !CLOSED_BIT
    }

    /// Repairs `head > tail` (caused by dequeuers' F&As overshooting) by
    /// CASing `tail` up to `head`, so enqueuers do not receive a stream of
    /// already-skipped indices. Figure 3c.
    fn fix_state(&self) {
        loop {
            let t = P::fetch_add(&self.tail, 0); // linearized read, all 64 bits
            let h = P::fetch_add(&self.head, 0);
            if self.tail.load(Ordering::SeqCst) != t {
                continue; // tail moved under us; re-read
            }
            // If closed, t's bit 63 makes it huge: nothing to fix, which is
            // correct — no enqueuer will take indices from a closed ring.
            if h <= t {
                return;
            }
            if ops::cas(&self.tail, t, h).is_ok() {
                return;
            }
        }
    }

    /// Scrubs an exclusively-owned ring for reuse: re-bases `head`, `tail`
    /// and every node index onto a fresh *reuse epoch* strictly above any
    /// index the previous incarnation could have handed out, clears the
    /// CLOSED bit, the cluster owner, and the `next` link. Because all old
    /// indices are dead, a CAS2 issued from any stale pre-scrub [`NodeView`]
    /// (e.g. by an operation that was preempted inside its read→CAS2 window
    /// in some *other* ring and misremembers this one) must fail — recycled
    /// `(safe, idx, val)` tuples can never alias live ones.
    ///
    /// Callers must hold logical exclusive access: the ring is unreachable
    /// from any queue and hazard-pointer quiescent (no slot protects it).
    /// [`RingPool::push`] enforces this by taking the ring by `Box`.
    ///
    /// Returns `false` — leaving the ring dirty, to be freed rather than
    /// pooled — when re-basing would approach the 63-bit index ceiling.
    ///
    /// [`NodeView`]: crate::node::NodeView
    pub(crate) fn scrub(&self) -> bool {
        let r = self.ring_size();
        let top = self.head_index().max(self.tail_index());
        // Node indices of the old incarnation are bounded by top - 1 + R
        // (a vacated node advances by R past its claimed index): rounding
        // down to a ring boundary and skipping two laps clears them all.
        let base = (top & !self.mask) + 2 * r;
        if base >= MAX_BASE {
            return false;
        }
        for (u, node) in self.ring.iter().enumerate() {
            node.reset(base + u as u64);
        }
        self.cluster.store(0, Ordering::Relaxed);
        self.next.store(core::ptr::null_mut(), Ordering::Relaxed);
        self.base.store(base, Ordering::Relaxed);
        self.head.store(base, Ordering::SeqCst);
        // Also clears the CLOSED bit (bit 63).
        self.tail.store(base, Ordering::SeqCst);
        self.reuse_epoch.fetch_add(1, Ordering::Release);
        metrics::inc(Event::RingScrub);
        true
    }

    /// Seeds a freshly scrubbed (still exclusively-owned) ring with `seed`:
    /// the pooled-ring counterpart of [`with_seed_batch`](Self::with_seed_batch),
    /// used when the spill path reuses a pooled ring instead of allocating.
    pub(crate) fn reseed(&self, seed: &[u64]) {
        let base = self.base.load(Ordering::Relaxed);
        debug_assert_eq!(self.head_index(), base, "reseed requires a scrubbed ring");
        debug_assert_eq!(self.tail_index(), base, "reseed requires a scrubbed ring");
        assert!(
            seed.len() as u64 <= self.ring_size(),
            "seed batch ({}) exceeds ring size ({})",
            seed.len(),
            self.ring_size()
        );
        for (j, &x) in seed.iter().enumerate() {
            debug_assert!(x != BOTTOM, "BOTTOM is reserved");
            let node = self.node(base + j as u64);
            // Exclusive ownership: scrubbed nodes accept their seed, so the
            // CAS2 can only fail spuriously (the `cas2` fail point); retry.
            loop {
                let v = node.read();
                if node.try_enqueue(&v, base + j as u64, x) {
                    break;
                }
            }
        }
        self.tail.store(base + seed.len() as u64, Ordering::SeqCst);
    }

    /// Records the recycling pool this ring returns to when retired. First
    /// write wins; called before the ring is published to other threads.
    pub(crate) fn attach_pool(&self, pool: Weak<RingPool<P>>) {
        let _ = self.pool.set(pool);
    }

    /// The pool recorded by [`attach_pool`](Self::attach_pool), if any.
    pub(crate) fn pool(&self) -> Option<&Weak<RingPool<P>>> {
        self.pool.get()
    }

    /// Number of times this ring has been scrubbed and recycled
    /// (diagnostic; used by the ABA regression tests).
    pub fn reuse_epoch(&self) -> u64 {
        self.reuse_epoch.load(Ordering::Acquire)
    }

    /// Index base of the current incarnation: 0 for a fresh ring, strictly
    /// above every previously issued index after each recycle (diagnostic).
    pub fn base_index(&self) -> u64 {
        self.base.load(Ordering::Relaxed)
    }
}

// SAFETY: all shared state is atomics; values are plain u64.
unsafe impl<P: FaaPolicy> Send for Crq<P> {}
unsafe impl<P: FaaPolicy> Sync for Crq<P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Barrier;

    fn small_config(order: u32) -> LcrqConfig {
        LcrqConfig::new().with_ring_order(order)
    }

    fn crq(order: u32) -> Crq {
        Crq::new(&small_config(order))
    }

    #[test]
    fn empty_dequeue_returns_none() {
        let q = crq(4);
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None);
        assert!(!q.is_closed());
    }

    #[test]
    fn fifo_order_sequential() {
        let q = crq(6);
        for i in 0..60 {
            q.enqueue(i).unwrap();
        }
        for i in 0..60 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn wraps_around_the_ring_many_times() {
        let q = crq(3); // R = 8
        for lap in 0..100u64 {
            for i in 0..6 {
                q.enqueue(lap * 10 + i).unwrap();
            }
            for i in 0..6 {
                assert_eq!(q.dequeue(), Some(lap * 10 + i));
            }
        }
        assert_eq!(q.dequeue(), None);
        assert!(!q.is_closed(), "in-capacity use must never close the ring");
    }

    #[test]
    fn filling_the_ring_closes_it() {
        let q = crq(3); // R = 8
        let mut accepted = 0;
        for i in 0..20 {
            match q.enqueue(i) {
                Ok(()) => accepted += 1,
                Err(CrqClosed) => break,
            }
        }
        assert!(q.is_closed());
        assert!(accepted >= 8 - 1, "a ring holds nearly R items: {accepted}");
        // Tantrum semantics: closed forever.
        assert_eq!(q.enqueue(99), Err(CrqClosed));
        // All accepted items are still dequeueable in order.
        for i in 0..accepted {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn explicit_close_is_idempotent_and_preserves_items() {
        let q = crq(5);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        q.close();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.enqueue(3), Err(CrqClosed));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn seeded_ring_contains_its_item() {
        let q: Crq = Crq::with_seed(&small_config(5), Some(42));
        assert_eq!(q.dequeue(), Some(42));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn dequeue_on_empty_fixes_head_overshoot() {
        let q = crq(5);
        // Each empty dequeue bumps head past tail; fix_state must repair so
        // a subsequent enqueue/dequeue pair still works at full speed.
        for _ in 0..10 {
            assert_eq!(q.dequeue(), None);
        }
        assert!(
            q.head_index() <= q.tail_index(),
            "fixState must repair head>tail"
        );
        q.enqueue(5).unwrap();
        assert_eq!(q.dequeue(), Some(5));
    }

    #[test]
    fn mpmc_stress_no_loss_no_duplication() {
        // Ring big enough to hold the whole backlog (4 × 5000 < 2^15), so
        // the "possibly full" close never triggers; a bare CRQ is bounded.
        let q = crq(15);
        let producers = 4usize;
        let per = 5_000u64;
        let barrier = Barrier::new(producers + 2);
        let producers_done = StdAtomicU64::new(0);
        let q = &q;
        let barrier = &barrier;
        let producers_done = &producers_done;
        let streams: Vec<Vec<u64>> = std::thread::scope(|s| {
            for p in 0..producers {
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..per {
                        q.enqueue(((p as u64) << 40) | i)
                            .expect("ring sized to never close in this test");
                    }
                    producers_done.fetch_add(1, Ordering::SeqCst);
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(move || {
                        barrier.wait();
                        let mut got = Vec::new();
                        loop {
                            match q.dequeue() {
                                Some(v) => got.push(v),
                                None => {
                                    if producers_done.load(Ordering::SeqCst) == producers as u64 {
                                        // This dequeue linearizes after the
                                        // flag read, hence after every
                                        // enqueue: None now means drained.
                                        match q.dequeue() {
                                            Some(v) => got.push(v),
                                            None => break,
                                        }
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = streams.iter().flatten().copied().collect();
        assert_eq!(all.len() as u64, producers as u64 * per, "lost items");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, producers as u64 * per, "duplicates!");
        // Per-producer order within each consumer stream.
        for stream in &streams {
            let mut last = std::collections::HashMap::new();
            for &v in stream {
                let (p, i) = (v >> 40, v & ((1 << 40) - 1));
                if let Some(&prev) = last.get(&p) {
                    assert!(i > prev, "per-producer order violated");
                }
                last.insert(p, i);
            }
        }
    }

    #[test]
    fn tiny_ring_under_contention_closes_rather_than_blocks() {
        // R=2 with 4 threads: enqueues must either succeed or close the
        // ring; nothing may deadlock.
        let q = crq(1);
        let q = &q;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        if q.enqueue(i).is_err() {
                            break;
                        }
                        let _ = q.dequeue();
                    }
                });
            }
        });
        // Drain whatever remains.
        while q.dequeue().is_some() {}
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn bounded_wait_disabled_still_correct() {
        let cfg = small_config(10).with_bounded_wait(0);
        let q: Crq = Crq::new(&cfg);
        for i in 0..100 {
            q.enqueue(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn starving_enqueuer_closes_the_ring() {
        // Deterministically exercise Figure 3d's starving() branch: a
        // dequeuer's empty transition advances node 0's index to R; we then
        // rewind tail (test-only, emulating an enqueuer whose F&A raced the
        // dequeuer) so the next enqueue receives t = 0, observes idx > t,
        // fails, and — with starvation limit 1 — closes the ring even
        // though it is nowhere near full.
        let cfg = small_config(4).with_starvation_limit(1);
        let q: Crq = Crq::new(&cfg);
        assert_eq!(q.dequeue(), None); // empty transition on node 0 (h = 0)
        q.tail.store(0, Ordering::SeqCst); // rewind: next enqueue gets t = 0
        assert_eq!(q.enqueue(7), Err(CrqClosed));
        assert!(q.is_closed());
        assert!(
            q.tail_index() < q.ring_size(),
            "ring closed by starvation, not by being full"
        );
    }

    #[test]
    fn starvation_limit_bounds_enqueue_attempts() {
        // Same poisoned setup but with a higher limit: the enqueue performs
        // exactly `limit` F&As before giving up (each retry re-fetches an
        // index; only t=0 is poisoned, so the second attempt succeeds —
        // verify by allowing it).
        let cfg = small_config(4).with_starvation_limit(8);
        let q: Crq = Crq::new(&cfg);
        assert_eq!(q.dequeue(), None);
        q.tail.store(0, Ordering::SeqCst);
        // t=0 fails (idx R > 0); retry gets t=1 which succeeds.
        assert_eq!(q.enqueue(7), Ok(()));
        assert!(!q.is_closed());
        assert_eq!(q.dequeue(), Some(7));
    }

    #[test]
    fn huge_indices_behave_like_small_ones() {
        // The paper assumes head/tail never exceed 2^63 (§4.1). Fast-forward
        // both indices deep into that range and verify the ring protocol
        // (node index arithmetic, wrap, closed-bit packing) still works.
        let q = crq(4); // R = 16
        let base: u64 = (1 << 62) + 5;
        // Advance indices coherently: nodes must also carry matching idx
        // values, so replay the advance through the public API is too slow;
        // instead set head == tail == base and re-index the ring nodes by
        // performing base-consistent empty transitions is equally slow.
        // Pragmatic approach: set both counters to a multiple of R so node
        // u's stored index (u) is congruent and `idx <= t` holds.
        let aligned = base & !(q.ring_size() - 1); // multiple of R
        q.head.store(aligned, Ordering::SeqCst);
        q.tail.store(aligned, Ordering::SeqCst);
        for i in 0..40 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        assert!(!q.is_closed());
        assert!(q.head_index() >= aligned);
    }

    #[test]
    fn closed_bit_does_not_corrupt_huge_tail() {
        let q = crq(3);
        let aligned = ((1u64 << 62) + 9) & !(q.ring_size() - 1);
        q.head.store(aligned, Ordering::SeqCst);
        q.tail.store(aligned, Ordering::SeqCst);
        q.enqueue(1).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(
            q.tail_index(),
            aligned + 1,
            "closed bit must not leak into the index"
        );
        assert_eq!(q.enqueue(2), Err(CrqClosed));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn scrub_rebases_past_all_old_indices_and_reopens() {
        let q = crq(3); // R = 8
        for i in 0..6 {
            q.enqueue(i).unwrap();
        }
        for _ in 0..4 {
            q.dequeue();
        }
        q.close();
        while q.dequeue().is_some() {}
        let top = q.head_index().max(q.tail_index());
        assert!(q.is_closed());
        assert!(q.scrub());
        assert!(!q.is_closed());
        assert_eq!(q.reuse_epoch(), 1);
        let base = q.base_index();
        assert!(
            base > top + q.ring_size() - 1,
            "base {base} must clear every old node index (top {top})"
        );
        assert_eq!(q.head_index(), base);
        assert_eq!(q.tail_index(), base);
        // The recycled incarnation behaves like a fresh ring.
        q.enqueue(41).unwrap();
        q.enqueue(42).unwrap();
        assert_eq!(q.dequeue(), Some(41));
        assert_eq!(q.dequeue(), Some(42));
        assert_eq!(q.dequeue(), None);
        assert!(q.scrub(), "rings recycle repeatedly");
        assert_eq!(q.reuse_epoch(), 2);
    }

    #[test]
    fn stale_pre_scrub_views_cannot_touch_a_recycled_ring() {
        use crate::node::NodeView;
        use crate::BOTTOM;
        let q = crq(3);
        q.enqueue(7).unwrap();
        let node = q.node(0);
        // The views a stalled operation (preempted inside its read→CAS2
        // window, holding no hazard on this ring) might still hold:
        let stale_full = node.read(); // (1, 0, 7)
        let stale_empty = NodeView {
            val: BOTTOM,
            ..stale_full
        };
        assert!(q.scrub());
        // Every transition from a pre-scrub view must fail against the
        // recycled node: its index now lives in a fresh epoch.
        assert!(!node.try_dequeue(&stale_full, q.ring_size()));
        assert!(!node.try_mark_unsafe(&stale_full));
        assert!(!node.try_enqueue(&stale_empty, 0, 9));
        assert!(!node.try_empty(&stale_empty, 0, q.ring_size()));
        // And the recycled node is intact.
        let v = node.read();
        assert!(v.safe && v.is_empty());
        assert_eq!(v.idx, q.base_index());
    }

    #[test]
    fn scrub_refuses_near_index_exhaustion() {
        let q = crq(3);
        q.head.store(MAX_BASE - 4, Ordering::SeqCst);
        q.tail.store(MAX_BASE - 4, Ordering::SeqCst);
        assert!(!q.scrub(), "must refuse to re-base near the index ceiling");
        // The refusal leaves counters untouched (ring goes to the allocator).
        assert_eq!(q.head_index(), MAX_BASE - 4);
    }

    #[test]
    fn reseed_places_seed_at_the_fresh_base() {
        let q = crq(3);
        for i in 0..5 {
            q.enqueue(i).unwrap();
        }
        assert!(q.scrub());
        q.reseed(&[100, 101, 102]);
        assert_eq!(q.tail_index() - q.base_index(), 3);
        assert_eq!(q.dequeue(), Some(100));
        assert_eq!(q.dequeue(), Some(101));
        assert_eq!(q.dequeue(), Some(102));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn lcrq_cas_variant_behaves_identically() {
        use lcrq_atomic::CasLoopFaa;
        let q: Crq<CasLoopFaa> = Crq::new(&small_config(8));
        for i in 0..50 {
            q.enqueue(i).unwrap();
        }
        for i in 0..50 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    // Tests that bracket the process-wide metrics aggregate with
    // flush + snapshot must not run concurrently with each other.
    static METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    fn metrics_guard() -> std::sync::MutexGuard<'static, ()> {
        METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn common_case_uses_two_faa_per_pair() {
        use lcrq_util::metrics;
        let _g = metrics_guard();
        let q = crq(8);
        metrics::flush();
        let before = metrics::snapshot();
        for i in 0..100 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        // One F&A per enqueue + one per dequeue (no retries when solo).
        assert_eq!(d.get(metrics::Event::Faa), 200);
        // One CAS2 per op, all successful.
        assert_eq!(d.get(metrics::Event::Cas2Attempt), 200);
        assert_eq!(d.get(metrics::Event::Cas2Failure), 0);
    }

    #[test]
    fn batch_round_trip_preserves_fifo_order() {
        let q = crq(6); // R = 64
        let values: Vec<u64> = (100..160).collect();
        assert_eq!(q.enqueue_batch(&values), 60);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 25), 25);
        assert_eq!(q.dequeue_batch(&mut out, 100), 35);
        assert_eq!(out, values);
        assert_eq!(q.dequeue_batch(&mut out, 10), 0, "drained");
        assert_eq!(q.dequeue(), None);
        assert!(!q.is_closed());
    }

    #[test]
    fn empty_batches_touch_nothing() {
        let q = crq(4);
        let t0 = q.tail_index();
        let h0 = q.head_index();
        assert_eq!(q.enqueue_batch(&[]), 0);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 0), 0);
        assert_eq!(
            q.dequeue_batch(&mut out, 8),
            0,
            "empty ring: no reservation"
        );
        assert_eq!(q.tail_index(), t0, "no F&A may have moved tail");
        assert_eq!(q.head_index(), h0, "no F&A may have moved head");
    }

    #[test]
    fn batch_reservation_is_capped_at_ring_size() {
        let q = crq(3); // R = 8
        let values: Vec<u64> = (0..20).collect();
        // One reservation covers at most R indices: first call places 8.
        assert_eq!(q.enqueue_batch(&values), 8);
        assert!(!q.is_closed());
        // The ring is now full: the next reservation finds an occupied node
        // with head R behind it and throws the tantrum.
        assert_eq!(q.enqueue_batch(&values[8..]), 0);
        assert!(q.is_closed(), "full ring must close, not spin");
        // Everything accepted is still there, in order.
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 20), 8);
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn dequeue_batch_is_bounded_by_the_backlog() {
        let q = crq(5);
        assert_eq!(q.enqueue_batch(&[1, 2, 3, 4, 5]), 5);
        let mut out = Vec::new();
        // max far beyond the backlog: the reservation must not overshoot
        // (head stays <= tail; no empty transitions are manufactured).
        assert_eq!(q.dequeue_batch(&mut out, 1_000), 5);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(q.head_index() <= q.tail_index());
        // Refill to prove no index was poisoned by the over-ask.
        q.enqueue(6).unwrap();
        assert_eq!(q.dequeue(), Some(6));
    }

    #[test]
    fn batch_and_scalar_ops_interleave() {
        let q = crq(6);
        q.enqueue(1).unwrap();
        assert_eq!(q.enqueue_batch(&[2, 3, 4]), 3);
        q.enqueue(5).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 2), 2);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue_batch(&mut out, 10), 2);
        assert_eq!(out, vec![1, 2, 4, 5]);
    }

    #[test]
    fn seeded_batch_ring_drains_in_order() {
        let seed: Vec<u64> = (10..18).collect();
        let q: Crq = Crq::with_seed_batch(&small_config(3), &seed);
        assert_eq!(q.tail_index(), 8);
        assert_eq!(q.head_index(), 0);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 100), 8);
        assert_eq!(out, seed);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds ring size")]
    fn oversized_seed_batch_panics() {
        let seed: Vec<u64> = (0..9).collect();
        let _q: Crq = Crq::with_seed_batch(&small_config(3), &seed); // R = 8
    }

    #[test]
    fn batch_wraps_the_ring_many_times() {
        let q = crq(3); // R = 8
        let mut out = Vec::new();
        for lap in 0..200u64 {
            let vals: Vec<u64> = (0..5).map(|i| lap * 10 + i).collect();
            assert_eq!(q.enqueue_batch(&vals), 5);
            out.clear();
            assert_eq!(q.dequeue_batch(&mut out, 5), 5);
            assert_eq!(out, vals);
        }
        assert!(!q.is_closed(), "in-capacity batches must never close");
    }

    #[test]
    fn cas_variant_batches_identically() {
        use lcrq_atomic::CasLoopFaa;
        let q: Crq<CasLoopFaa> = Crq::new(&small_config(6));
        let values: Vec<u64> = (0..40).collect();
        assert_eq!(q.enqueue_batch(&values), 40);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 40), 40);
        assert_eq!(out, values);
    }

    #[test]
    fn batch_pays_one_faa_per_reservation() {
        // The tentpole's acceptance criterion: k=16 batches must spend at
        // least 8x fewer F&A instructions than the scalar loop (they spend
        // exactly 16x fewer here: one FAA(ctr, 16) vs 16 FAA(ctr, 1)).
        use lcrq_util::metrics::{self, Event};
        let _g = metrics_guard();
        const K: u64 = 16;
        const ROUNDS: u64 = 10;

        let scalar = crq(8);
        metrics::flush();
        let before = metrics::snapshot();
        for r in 0..ROUNDS {
            for i in 0..K {
                scalar.enqueue(r * K + i).unwrap();
            }
            for i in 0..K {
                assert_eq!(scalar.dequeue(), Some(r * K + i));
            }
        }
        metrics::flush();
        let scalar_faa = metrics::snapshot().delta_since(&before).get(Event::Faa);
        assert_eq!(scalar_faa, 2 * K * ROUNDS, "one F&A per scalar op");

        let batched = crq(8);
        let before = metrics::snapshot();
        let mut out = Vec::new();
        for r in 0..ROUNDS {
            let vals: Vec<u64> = (0..K).map(|i| r * K + i).collect();
            assert_eq!(batched.enqueue_batch(&vals), K as usize);
            out.clear();
            assert_eq!(batched.dequeue_batch(&mut out, K as usize), K as usize);
            assert_eq!(out, vals);
        }
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        let batch_faa = d.get(Event::Faa);
        assert_eq!(batch_faa, 2 * ROUNDS, "one F&A per k=16 reservation");
        assert!(
            scalar_faa >= 8 * batch_faa,
            "k=16 batches must amortize F&A >= 8x: scalar={scalar_faa} batch={batch_faa}"
        );
        // Batch-size accounting feeding table2/table3's F&A-per-op column.
        assert_eq!(d.get(Event::BatchEnqueue), ROUNDS);
        assert_eq!(d.get(Event::BatchEnqueueItems), K * ROUNDS);
        assert_eq!(d.get(Event::BatchDequeue), ROUNDS);
        assert_eq!(d.get(Event::BatchDequeueItems), K * ROUNDS);
        assert_eq!(d.mean_enqueue_batch(), K as f64);
        assert_eq!(d.mean_dequeue_batch(), K as f64);
    }

    #[test]
    fn concurrent_batch_reservations_do_not_interleave_within_a_batch() {
        // Two threads batch-enqueue stamped runs into one ring; each run
        // placed by one reservation must occupy contiguous positions.
        let q = crq(12); // R = 4096 >> total items: no closes
        let writers = 2u64;
        let runs = 50u64;
        const K: usize = 8;
        let q = &q;
        std::thread::scope(|s| {
            for w in 0..writers {
                s.spawn(move || {
                    for r in 0..runs {
                        let base = (w << 32) | (r << 16);
                        let vals: Vec<u64> = (0..K as u64).map(|i| base | i).collect();
                        let mut placed = 0;
                        while placed < K {
                            placed += q.enqueue_batch(&vals[placed..]);
                        }
                    }
                });
            }
        });
        let mut out = Vec::new();
        let total = writers as usize * runs as usize * K;
        assert_eq!(q.dequeue_batch(&mut out, total + 10), total);
        // Check contiguity: whenever an item with sequence 0 of a run shows
        // up, the whole run follows consecutively (single reservation: the
        // ring was big enough that every batch placed in full).
        let mut i = 0;
        while i < out.len() {
            let v = out[i];
            assert_eq!(v & 0xFFFF, 0, "runs must start at sequence 0");
            for j in 0..K as u64 {
                assert_eq!(out[i + j as usize], (v & !0xFFFF) | j, "run torn at {j}");
            }
            i += K;
        }
    }
}
