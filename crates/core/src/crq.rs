//! The CRQ — concurrent ring queue with tantrum semantics (paper §4.1).
//!
//! A ring of `R` nodes with strictly increasing 64-bit `head`/`tail`
//! indices, both updated with fetch-and-add. Index `i` refers to node
//! `i mod R`. The most significant bit of `tail` marks the ring CLOSED.
//!
//! Invariants maintained by the node transition protocol:
//!
//! * An occupied node `(s, i, x)` can only be emptied by the dequeuer whose
//!   F&A returned exactly `i` (the *dequeue transition*).
//! * A dequeuer that arrives at an *empty* node before its matching
//!   enqueuer advances the node's index past its own (`empty transition`),
//!   preventing any same-or-older enqueue from using the node.
//! * A dequeuer that arrives at an *occupied* node it cannot dequeue
//!   (a previous-lap item) clears the *safe* bit (`unsafe transition`);
//!   a later enqueuer may only use an unsafe node after verifying its
//!   matching dequeuer has not started (`head <= t`).
//!
//! Because a dequeuer's F&A can push `head` past `tail`, the queue can enter
//! the transient "inconsistent" state `head > tail`; [`Crq::fix_state`]
//! repairs it before a dequeue reports empty, so enqueuers are not forced to
//! burn F&As on already-skipped indices.

use core::marker::PhantomData;
use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use lcrq_atomic::{ops, FaaPolicy, HardwareFaa};
use lcrq_util::metrics::{self, Event};
use lcrq_util::CachePadded;

use crate::config::LcrqConfig;
use crate::node::Node;
use crate::BOTTOM;

/// Error returned by [`Crq::enqueue`] once the ring is closed (tantrum
/// semantics: every subsequent enqueue also returns `CrqClosed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrqClosed;

/// Bit 63 of `tail`: the ring is closed to further enqueues.
const CLOSED_BIT: u64 = 1 << 63;

/// A concurrent ring queue (bounded, closable). Most users want the
/// unbounded [`Lcrq`](crate::Lcrq) built from a list of these.
///
/// Generic over the fetch-and-add policy `P` so the same code yields the
/// paper's LCRQ (hardware F&A) and LCRQ-CAS (CAS-loop F&A) variants.
pub struct Crq<P: FaaPolicy = HardwareFaa> {
    head: CachePadded<AtomicU64>,
    /// Bit 63 = closed; bits 62..0 = the tail index.
    tail: CachePadded<AtomicU64>,
    /// The next CRQ in an LCRQ list (null while this is the tail ring).
    pub(crate) next: CachePadded<AtomicPtr<Crq<P>>>,
    /// Identifies the cluster whose threads currently "own" the ring
    /// (LCRQ+H); unused unless the hierarchical optimization is enabled.
    pub(crate) cluster: CachePadded<AtomicU64>,
    ring: Box<[Node]>,
    mask: u64,
    starvation_limit: u32,
    bounded_wait_spins: u32,
    _faa: PhantomData<P>,
}

impl<P: FaaPolicy> Crq<P> {
    /// Creates an empty ring of `1 << config.ring_order` nodes.
    pub fn new(config: &LcrqConfig) -> Self {
        Self::with_seed(config, None)
    }

    /// Creates a ring pre-seeded with one item (used when an enqueuer
    /// appends a fresh CRQ "initialized to contain x", Figure 5c line 162).
    pub fn with_seed(config: &LcrqConfig, seed: Option<u64>) -> Self {
        let size = config.ring_size();
        let ring: Vec<Node> = (0..size).map(Node::new).collect();
        let mut tail = 0;
        if let Some(x) = seed {
            debug_assert!(x != BOTTOM);
            let v = ring[0].read();
            let ok = ring[0].try_enqueue(&v, 0, x);
            debug_assert!(ok);
            let _ = ok;
            tail = 1;
        }
        metrics::inc(Event::CrqAlloc);
        Self {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(tail)),
            next: CachePadded::new(AtomicPtr::new(core::ptr::null_mut())),
            cluster: CachePadded::new(AtomicU64::new(0)),
            ring: ring.into_boxed_slice(),
            mask: size - 1,
            starvation_limit: config.starvation_limit,
            bounded_wait_spins: config.bounded_wait_spins,
            _faa: PhantomData,
        }
    }

    /// Ring size `R`.
    pub fn ring_size(&self) -> u64 {
        self.mask + 1
    }

    #[inline]
    fn node(&self, index: u64) -> &Node {
        &self.ring[(index & self.mask) as usize]
    }

    /// Appends `value` (must be `< BOTTOM`), or reports the ring closed.
    ///
    /// Figure 3d. Fails (closing the ring) when the ring appears full
    /// (`t - head >= R`) or after `starvation_limit` placement failures.
    pub fn enqueue(&self, value: u64) -> Result<(), CrqClosed> {
        debug_assert!(value != BOTTOM, "BOTTOM is reserved");
        let mut attempts = 0u32;
        loop {
            let raw = P::fetch_add(&self.tail, 1); // F&A on all 64 bits
            if raw & CLOSED_BIT != 0 {
                return Err(CrqClosed);
            }
            let t = raw;
            let node = self.node(t);
            metrics::inc(Event::NodeVisit);
            let view = node.read();
            // Adversary injection inside the read→CAS2 window (see
            // lcrq_util::adversary). LCRQ's CAS2 targets a slot only this
            // F&A winner races for, so even a mid-window preemption rarely
            // fails it — and a preempted operation blocks nobody.
            lcrq_util::adversary::preempt_point();
            if view.is_empty()
                && view.idx <= t
                && (view.safe || self.head.load(Ordering::SeqCst) <= t)
                && node.try_enqueue(&view, t, value)
            {
                return Ok(());
            }
            attempts += 1;
            let h = self.head.load(Ordering::SeqCst);
            if t.wrapping_sub(h) as i64 >= self.ring_size() as i64
                || attempts >= self.starvation_limit
            {
                self.close();
                return Err(CrqClosed);
            }
        }
    }

    /// Removes the oldest value, or returns `None` when (linearizably)
    /// empty. Figure 3b.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let h = P::fetch_add(&self.head, 1);
            let node = self.node(h);
            let mut spins = self.bounded_wait_spins;
            loop {
                metrics::inc(Event::NodeVisit);
                let view = node.read();
                lcrq_util::adversary::preempt_point(); // inside the read→CAS2 window
                if view.idx > h {
                    break; // overtaken between our F&A and the read
                }
                if !view.is_empty() {
                    if view.idx == h {
                        // Our item: dequeue transition.
                        if node.try_dequeue(&view, self.ring_size()) {
                            return Some(view.val);
                        }
                    } else {
                        // Previous-lap item we cannot take: mark unsafe so
                        // enq_h cannot blindly store into this node.
                        if node.try_mark_unsafe(&view) {
                            metrics::inc(Event::UnsafeTransition);
                            break;
                        }
                    }
                } else {
                    // Empty node with idx <= h. If the matching enqueuer is
                    // active (tail already past h), wait briefly for its
                    // enqueue transition instead of wasting both operations
                    // (§4.1.1 bounded waiting).
                    if spins > 0 && self.tail_index() > h {
                        spins -= 1;
                        metrics::inc(Event::SpinWait);
                        core::hint::spin_loop();
                        continue;
                    }
                    // Empty transition: block index h (and all older laps).
                    if node.try_empty(&view, h, self.ring_size()) {
                        metrics::inc(Event::EmptyTransition);
                        break;
                    }
                }
                // A CAS2 failed: the node changed; re-read and retry.
            }
            // Failed to dequeue at h; is the queue empty?
            let t = self.tail_index();
            if t <= h + 1 {
                self.fix_state();
                return None;
            }
        }
    }

    /// Closes the ring: every future enqueue returns [`CrqClosed`].
    /// Idempotent; uses test-and-set on tail's closed bit (Figure 3d l.99).
    pub fn close(&self) {
        if !ops::tas_bit(&self.tail, 63) {
            metrics::inc(Event::CrqClosed);
        }
    }

    /// Whether the ring has been closed.
    pub fn is_closed(&self) -> bool {
        self.tail.load(Ordering::SeqCst) & CLOSED_BIT != 0
    }

    /// Current head index (diagnostic; racy).
    pub fn head_index(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Current tail index without the closed bit (diagnostic; racy).
    pub fn tail_index(&self) -> u64 {
        self.tail.load(Ordering::SeqCst) & !CLOSED_BIT
    }

    /// Repairs `head > tail` (caused by dequeuers' F&As overshooting) by
    /// CASing `tail` up to `head`, so enqueuers do not receive a stream of
    /// already-skipped indices. Figure 3c.
    fn fix_state(&self) {
        loop {
            let t = P::fetch_add(&self.tail, 0); // linearized read, all 64 bits
            let h = P::fetch_add(&self.head, 0);
            if self.tail.load(Ordering::SeqCst) != t {
                continue; // tail moved under us; re-read
            }
            // If closed, t's bit 63 makes it huge: nothing to fix, which is
            // correct — no enqueuer will take indices from a closed ring.
            if h <= t {
                return;
            }
            if ops::cas(&self.tail, t, h).is_ok() {
                return;
            }
        }
    }
}

// SAFETY: all shared state is atomics; values are plain u64.
unsafe impl<P: FaaPolicy> Send for Crq<P> {}
unsafe impl<P: FaaPolicy> Sync for Crq<P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Barrier;

    fn small_config(order: u32) -> LcrqConfig {
        LcrqConfig::new().with_ring_order(order)
    }

    fn crq(order: u32) -> Crq {
        Crq::new(&small_config(order))
    }

    #[test]
    fn empty_dequeue_returns_none() {
        let q = crq(4);
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None);
        assert!(!q.is_closed());
    }

    #[test]
    fn fifo_order_sequential() {
        let q = crq(6);
        for i in 0..60 {
            q.enqueue(i).unwrap();
        }
        for i in 0..60 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn wraps_around_the_ring_many_times() {
        let q = crq(3); // R = 8
        for lap in 0..100u64 {
            for i in 0..6 {
                q.enqueue(lap * 10 + i).unwrap();
            }
            for i in 0..6 {
                assert_eq!(q.dequeue(), Some(lap * 10 + i));
            }
        }
        assert_eq!(q.dequeue(), None);
        assert!(!q.is_closed(), "in-capacity use must never close the ring");
    }

    #[test]
    fn filling_the_ring_closes_it() {
        let q = crq(3); // R = 8
        let mut accepted = 0;
        for i in 0..20 {
            match q.enqueue(i) {
                Ok(()) => accepted += 1,
                Err(CrqClosed) => break,
            }
        }
        assert!(q.is_closed());
        assert!(accepted >= 8 - 1, "a ring holds nearly R items: {accepted}");
        // Tantrum semantics: closed forever.
        assert_eq!(q.enqueue(99), Err(CrqClosed));
        // All accepted items are still dequeueable in order.
        for i in 0..accepted {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn explicit_close_is_idempotent_and_preserves_items() {
        let q = crq(5);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        q.close();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.enqueue(3), Err(CrqClosed));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn seeded_ring_contains_its_item() {
        let q: Crq = Crq::with_seed(&small_config(5), Some(42));
        assert_eq!(q.dequeue(), Some(42));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn dequeue_on_empty_fixes_head_overshoot() {
        let q = crq(5);
        // Each empty dequeue bumps head past tail; fix_state must repair so
        // a subsequent enqueue/dequeue pair still works at full speed.
        for _ in 0..10 {
            assert_eq!(q.dequeue(), None);
        }
        assert!(q.head_index() <= q.tail_index(), "fixState must repair head>tail");
        q.enqueue(5).unwrap();
        assert_eq!(q.dequeue(), Some(5));
    }

    #[test]
    fn mpmc_stress_no_loss_no_duplication() {
        // Ring big enough to hold the whole backlog (4 × 5000 < 2^15), so
        // the "possibly full" close never triggers; a bare CRQ is bounded.
        let q = crq(15);
        let producers = 4usize;
        let per = 5_000u64;
        let barrier = Barrier::new(producers + 2);
        let producers_done = StdAtomicU64::new(0);
        let q = &q;
        let barrier = &barrier;
        let producers_done = &producers_done;
        let streams: Vec<Vec<u64>> = std::thread::scope(|s| {
            for p in 0..producers {
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..per {
                        q.enqueue(((p as u64) << 40) | i)
                            .expect("ring sized to never close in this test");
                    }
                    producers_done.fetch_add(1, Ordering::SeqCst);
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(move || {
                        barrier.wait();
                        let mut got = Vec::new();
                        loop {
                            match q.dequeue() {
                                Some(v) => got.push(v),
                                None => {
                                    if producers_done.load(Ordering::SeqCst)
                                        == producers as u64
                                    {
                                        // This dequeue linearizes after the
                                        // flag read, hence after every
                                        // enqueue: None now means drained.
                                        match q.dequeue() {
                                            Some(v) => got.push(v),
                                            None => break,
                                        }
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = streams.iter().flatten().copied().collect();
        assert_eq!(all.len() as u64, producers as u64 * per, "lost items");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, producers as u64 * per, "duplicates!");
        // Per-producer order within each consumer stream.
        for stream in &streams {
            let mut last = std::collections::HashMap::new();
            for &v in stream {
                let (p, i) = (v >> 40, v & ((1 << 40) - 1));
                if let Some(&prev) = last.get(&p) {
                    assert!(i > prev, "per-producer order violated");
                }
                last.insert(p, i);
            }
        }
    }

    #[test]
    fn tiny_ring_under_contention_closes_rather_than_blocks() {
        // R=2 with 4 threads: enqueues must either succeed or close the
        // ring; nothing may deadlock.
        let q = crq(1);
        let q = &q;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        if q.enqueue(i).is_err() {
                            break;
                        }
                        let _ = q.dequeue();
                    }
                });
            }
        });
        // Drain whatever remains.
        while q.dequeue().is_some() {}
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn bounded_wait_disabled_still_correct() {
        let cfg = small_config(10).with_bounded_wait(0);
        let q: Crq = Crq::new(&cfg);
        for i in 0..100 {
            q.enqueue(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn starving_enqueuer_closes_the_ring() {
        // Deterministically exercise Figure 3d's starving() branch: a
        // dequeuer's empty transition advances node 0's index to R; we then
        // rewind tail (test-only, emulating an enqueuer whose F&A raced the
        // dequeuer) so the next enqueue receives t = 0, observes idx > t,
        // fails, and — with starvation limit 1 — closes the ring even
        // though it is nowhere near full.
        let cfg = small_config(4).with_starvation_limit(1);
        let q: Crq = Crq::new(&cfg);
        assert_eq!(q.dequeue(), None); // empty transition on node 0 (h = 0)
        q.tail.store(0, Ordering::SeqCst); // rewind: next enqueue gets t = 0
        assert_eq!(q.enqueue(7), Err(CrqClosed));
        assert!(q.is_closed());
        assert!(
            q.tail_index() < q.ring_size(),
            "ring closed by starvation, not by being full"
        );
    }

    #[test]
    fn starvation_limit_bounds_enqueue_attempts() {
        // Same poisoned setup but with a higher limit: the enqueue performs
        // exactly `limit` F&As before giving up (each retry re-fetches an
        // index; only t=0 is poisoned, so the second attempt succeeds —
        // verify by allowing it).
        let cfg = small_config(4).with_starvation_limit(8);
        let q: Crq = Crq::new(&cfg);
        assert_eq!(q.dequeue(), None);
        q.tail.store(0, Ordering::SeqCst);
        // t=0 fails (idx R > 0); retry gets t=1 which succeeds.
        assert_eq!(q.enqueue(7), Ok(()));
        assert!(!q.is_closed());
        assert_eq!(q.dequeue(), Some(7));
    }

    #[test]
    fn huge_indices_behave_like_small_ones() {
        // The paper assumes head/tail never exceed 2^63 (§4.1). Fast-forward
        // both indices deep into that range and verify the ring protocol
        // (node index arithmetic, wrap, closed-bit packing) still works.
        let q = crq(4); // R = 16
        let base: u64 = (1 << 62) + 5;
        // Advance indices coherently: nodes must also carry matching idx
        // values, so replay the advance through the public API is too slow;
        // instead set head == tail == base and re-index the ring nodes by
        // performing base-consistent empty transitions is equally slow.
        // Pragmatic approach: set both counters to a multiple of R so node
        // u's stored index (u) is congruent and `idx <= t` holds.
        let aligned = base & !(q.ring_size() - 1); // multiple of R
        q.head.store(aligned, Ordering::SeqCst);
        q.tail.store(aligned, Ordering::SeqCst);
        for i in 0..40 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        assert!(!q.is_closed());
        assert!(q.head_index() >= aligned);
    }

    #[test]
    fn closed_bit_does_not_corrupt_huge_tail() {
        let q = crq(3);
        let aligned = ((1u64 << 62) + 9) & !(q.ring_size() - 1);
        q.head.store(aligned, Ordering::SeqCst);
        q.tail.store(aligned, Ordering::SeqCst);
        q.enqueue(1).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.tail_index(), aligned + 1, "closed bit must not leak into the index");
        assert_eq!(q.enqueue(2), Err(CrqClosed));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn lcrq_cas_variant_behaves_identically() {
        use lcrq_atomic::CasLoopFaa;
        let q: Crq<CasLoopFaa> = Crq::new(&small_config(8));
        for i in 0..50 {
            q.enqueue(i).unwrap();
        }
        for i in 0..50 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn common_case_uses_two_faa_per_pair() {
        use lcrq_util::metrics;
        let q = crq(8);
        metrics::flush();
        let before = metrics::snapshot();
        for i in 0..100 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
        metrics::flush();
        let d = metrics::snapshot().delta_since(&before);
        // One F&A per enqueue + one per dequeue (no retries when solo).
        assert_eq!(d.get(metrics::Event::Faa), 200);
        // One CAS2 per op, all successful.
        assert_eq!(d.get(metrics::Event::Cas2Attempt), 200);
        assert_eq!(d.get(metrics::Event::Cas2Failure), 0);
    }
}
