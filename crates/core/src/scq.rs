//! SCQ — the scalable circular queue of Nikolaev (arXiv:1908.04511), the
//! portable successor to the CRQ ring.
//!
//! Like the CRQ, an SCQ spreads threads over ring slots with fetch-and-add
//! on `head`/`tail` so that contended F&A does the heavy lifting. Unlike
//! the CRQ it needs only **single-word CAS**: a slot is one 64-bit word
//! packing `(cycle, is_safe, index)`, where the index field addresses one
//! of the ring's `2n` entries and the all-ones pattern is ⊥ (empty). Three
//! ideas replace the CRQ's double-width CAS and starvation counter:
//!
//! * **Cycle tags.** Position `p` lives in slot `p mod 2n` at cycle
//!   `p / 2n`; a dequeuer may consume only an entry whose cycle matches its
//!   own, so the consume itself is an unconditional `fetch_or` that sets
//!   the index field to ⊥ (no failure path — the consume right is
//!   exclusive, and the OR preserves a racing unsafe-marking).
//! * **Threshold counter.** Every unsuccessful dequeue attempt decrements a
//!   shared counter initialized to `3n - 1` (reset by each enqueue); once
//!   it goes negative, dequeuers report EMPTY *before* touching `head`.
//!   This bounds the number of F&As an empty-dequeue storm can waste and is
//!   the livelock-freedom argument (the CRQ instead closes the ring).
//! * **Catchup.** When a dequeue observes `tail <= head + 1`, it CASes the
//!   lagging `tail` forward so enqueuers do not burn F&As walking positions
//!   the dequeuers already invalidated (the CRQ's `fix_state` analogue).
//!
//! An SCQ stores `n`-bounded *indices*, not arbitrary values: callers must
//! keep at most `n` values in circulation (the index-queue contract), which
//! is what makes enqueue's retry loop terminate without a full check. The
//! [`ScqD`] pairing below restores arbitrary `u64` payloads: a free-index
//! ring `fq` (initially full) and an allocated-index ring `aq` shuttle the
//! indices of `n` data slots, so `enqueue(v)` is "pop a slot from `fq`,
//! write `v`, push the slot into `aq`" and dequeue is the mirror image.
//! `ScqD` also reuses the CRQ's tantrum convention (CLOSED bit 63 of the
//! `aq` tail) so [`Lscq`](crate::Lscq) can link rings exactly like LCRQ.
//!
//! Everything here is single-word: this is the one backend in the repo
//! that would run unchanged on non-x86 targets (no `CMPXCHG16B`).

use core::marker::PhantomData;
use core::sync::atomic::{AtomicI64, AtomicPtr, AtomicU64, Ordering};

use lcrq_atomic::{ops, FaaPolicy, HardwareFaa};
use lcrq_util::metrics::{self, Event};
use lcrq_util::{adversary, CachePadded};

use crate::config::LcrqConfig;
use crate::crq::CrqClosed;

/// Bit 63 of `tail`: the ring is finalized (closed to further enqueues),
/// same convention as the CRQ's CLOSED bit.
const FINALIZED_BIT: u64 = 1 << 63;

/// A bounded ring of *indices* in `0..capacity`, the SCQ of Nikolaev
/// (arXiv:1908.04511 Figure 9), generic over the fetch-and-add policy.
///
/// Entries are single 64-bit words `(cycle << (k+2)) | (safe << (k+1)) |
/// index` for capacity `2^k`; the ring has `2n = 2^(k+1)` entries and the
/// all-ones index pattern is ⊥. Callers must keep at most `capacity`
/// indices in circulation (pop before re-push) — [`ScqD`] enforces this
/// structurally. Most users want [`ScqD`] or the unbounded
/// [`Lscq`](crate::Lscq).
pub struct Scq<P: FaaPolicy = HardwareFaa> {
    head: CachePadded<AtomicU64>,
    /// Bit 63 = finalized; bits 62..0 = the tail position.
    tail: CachePadded<AtomicU64>,
    /// The livelock-freedom counter: reset to `3n - 1` by enqueues,
    /// decremented by unsuccessful dequeue attempts; negative means a
    /// dequeue may report EMPTY without touching `head`.
    threshold: CachePadded<AtomicI64>,
    /// `2n` packed `(cycle, safe, index)` words.
    entries: Box<[AtomicU64]>,
    /// log2 of the entry count (`k + 1` for capacity `2^k`).
    array_order: u32,
    _marker: PhantomData<P>,
}

impl<P: FaaPolicy> Scq<P> {
    /// An empty index ring with capacity `2^order` (so `2^(order+1)`
    /// entries). Positions start at `2n` (cycle 1) so freshly-initialized
    /// entries (cycle 0) always compare older than any live position.
    pub fn new_empty(order: u32) -> Self {
        let order = order.clamp(1, 30);
        let array_order = order + 1;
        let slots = 1usize << array_order;
        let entries: Box<[AtomicU64]> = (0..slots).map(|_| AtomicU64::new(0)).collect();
        let q = Scq {
            head: CachePadded::new(AtomicU64::new(slots as u64)),
            tail: CachePadded::new(AtomicU64::new(slots as u64)),
            // Empty ring: exhausted from the start, so dequeuers on a
            // never-used ring exit without an F&A. The first enqueue
            // re-arms it.
            threshold: CachePadded::new(AtomicI64::new(-1)),
            entries,
            array_order,
            _marker: PhantomData,
        };
        let bottom = q.bottom_index();
        for e in q.entries.iter() {
            e.store(q.pack(0, true, bottom), Ordering::Relaxed);
        }
        q
    }

    /// A *full* index ring holding `0..2^order` in order — the initial
    /// state of an [`ScqD`] free-index ring.
    pub fn new_full(order: u32) -> Self {
        let q = Self::new_empty(order);
        let base = q.entries.len() as u64;
        for k in 0..q.capacity() {
            let pos = base + k;
            let j = q.remap(pos);
            q.entries[j].store(q.pack(q.cycle_of(pos), true, k), Ordering::Relaxed);
        }
        q.tail.store(base + q.capacity(), Ordering::Relaxed);
        q.threshold.store(q.threshold_max(), Ordering::Relaxed);
        q
    }

    /// Number of indices the ring can circulate (`2^order`); half the
    /// entry-array size.
    #[inline]
    pub fn capacity(&self) -> u64 {
        (self.entries.len() as u64) / 2
    }

    /// The ⊥ pattern: all ones in the index field (`2n - 1`). Stored
    /// indices must be strictly below this.
    #[inline]
    fn bottom_index(&self) -> u64 {
        (1u64 << self.array_order) - 1
    }

    #[inline]
    fn index_mask(&self) -> u64 {
        self.bottom_index()
    }

    #[inline]
    fn threshold_max(&self) -> i64 {
        // 3n - 1 (capacity + array size - 1): the paper's bound on
        // unsuccessful dequeue attempts while the queue is non-empty.
        (self.capacity() + self.entries.len() as u64 - 1) as i64
    }

    #[inline]
    fn cycle_of(&self, pos: u64) -> u64 {
        pos >> self.array_order
    }

    #[inline]
    fn pack(&self, cycle: u64, safe: bool, index: u64) -> u64 {
        (cycle << (self.array_order + 1)) | ((safe as u64) << self.array_order) | index
    }

    /// Splits an entry into `(cycle, is_safe, index)`.
    #[inline]
    fn unpack(&self, entry: u64) -> (u64, bool, u64) {
        (
            entry >> (self.array_order + 1),
            entry & (1 << self.array_order) != 0,
            entry & self.index_mask(),
        )
    }

    /// Maps a position to an entry slot, spreading consecutive positions
    /// across cache lines (8 `u64` entries per 64-byte line) the way
    /// Nikolaev's `lfring` does, so neighbouring F&A winners do not false-
    /// share. Degenerates to the identity for rings of ≤ 8 entries.
    #[inline]
    fn remap(&self, pos: u64) -> usize {
        let slots = self.entries.len() as u64;
        let j = pos & (slots - 1);
        if slots >= 16 {
            (((j & (slots / 8 - 1)) * 8) | (j / (slots / 8))) as usize
        } else {
            j as usize
        }
    }

    /// Appends index `index` (must be `< capacity`). Fails only once the
    /// ring is [`finalize`](Self::finalize)d — there is no full check, per
    /// the index-queue contract (at most `capacity` indices circulating).
    pub fn enqueue(&self, index: u64) -> Result<(), CrqClosed> {
        debug_assert!(index < self.capacity(), "SCQ stores ring indices only");
        loop {
            let t_raw = P::fetch_add(&self.tail, 1);
            if t_raw & FINALIZED_BIT != 0 {
                return Err(CrqClosed);
            }
            let t = t_raw;
            let tcycle = self.cycle_of(t);
            let j = self.remap(t);
            let mut e = self.entries[j].load(Ordering::SeqCst);
            loop {
                metrics::inc(Event::NodeVisit);
                let (ecycle, safe, idx) = self.unpack(e);
                if ecycle < tcycle
                    && idx == self.bottom_index()
                    && (safe || self.head.load(Ordering::SeqCst) <= t)
                {
                    // The read→CAS window a preemption can waste. A `Fail`
                    // here is a spurious CAS miss: re-read and retry, the
                    // same path a lost race takes.
                    adversary::preempt_point();
                    if lcrq_util::fault::inject(lcrq_util::fault::Site::ScqEnqueue) {
                        e = self.entries[j].load(Ordering::SeqCst);
                        continue;
                    }
                    match ops::cas(&self.entries[j], e, self.pack(tcycle, true, index)) {
                        Ok(()) => {
                            // Re-arm the threshold *after* publishing the
                            // entry, so a negative threshold implies the
                            // queue was observably empty.
                            let max = self.threshold_max();
                            if self.threshold.load(Ordering::SeqCst) != max {
                                self.threshold.store(max, Ordering::SeqCst);
                            }
                            return Ok(());
                        }
                        Err(cur) => {
                            e = cur;
                            continue;
                        }
                    }
                }
                break; // slot unusable at this cycle: take the next position
            }
        }
    }

    /// Removes the oldest index, or `None` when the ring is empty.
    pub fn dequeue(&self) -> Option<u64> {
        if self.threshold.load(Ordering::SeqCst) < 0 {
            // Livelock-freedom fast exit: an exhausted threshold proves the
            // ring was empty; report EMPTY without an F&A on head.
            metrics::inc(Event::ThresholdExhausted);
            return None;
        }
        loop {
            let h = P::fetch_add(&self.head, 1);
            let hcycle = self.cycle_of(h);
            let j = self.remap(h);
            let mut e = self.entries[j].load(Ordering::SeqCst);
            loop {
                metrics::inc(Event::NodeVisit);
                let (ecycle, safe, idx) = self.unpack(e);
                if ecycle == hcycle && idx != self.bottom_index() {
                    // Dequeue transition: only position h's owner may
                    // consume slot j at this cycle, so the unconditional OR
                    // (index := ⊥) cannot clobber anything except a racing
                    // unsafe-marking, which it preserves.
                    adversary::preempt_point();
                    // `Fail` = spurious consume failure: re-read the slot
                    // and re-run the transition logic before the fetch-OR.
                    if lcrq_util::fault::inject(lcrq_util::fault::Site::ScqDequeue) {
                        e = self.entries[j].load(Ordering::SeqCst);
                        continue;
                    }
                    let prev = ops::or_bits(&self.entries[j], self.index_mask());
                    let (_, _, v) = self.unpack(prev);
                    debug_assert!(v != self.bottom_index());
                    return Some(v);
                }
                if ecycle < hcycle {
                    let new = if idx == self.bottom_index() {
                        // Empty transition: advance the slot to our cycle so
                        // no same-or-older enqueue can use it.
                        self.pack(hcycle, safe, idx)
                    } else {
                        // Unsafe transition: an unconsumed previous-lap
                        // entry; force its future enqueuers through the
                        // `head <= t` re-validation.
                        self.pack(ecycle, false, idx)
                    };
                    if new != e {
                        adversary::preempt_point();
                        if let Err(cur) = ops::cas(&self.entries[j], e, new) {
                            e = cur;
                            continue;
                        }
                        metrics::inc(if idx == self.bottom_index() {
                            Event::EmptyTransition
                        } else {
                            Event::UnsafeTransition
                        });
                    }
                }
                // Failed attempt (transitioned, or lapped by a later
                // cycle): decide whether the queue looked empty.
                let t = self.tail_index();
                if t <= h + 1 {
                    self.catchup(t, h + 1);
                    metrics::inc(Event::Faa);
                    self.threshold.fetch_sub(1, Ordering::SeqCst);
                    return None;
                }
                metrics::inc(Event::Faa);
                if self.threshold.fetch_sub(1, Ordering::SeqCst) <= 0 {
                    return None;
                }
                break; // next head position
            }
        }
    }

    /// CASes a lagging `tail` forward to `h` so enqueuers do not spend
    /// F&As on positions the dequeuers already invalidated.
    fn catchup(&self, mut t: u64, h: u64) {
        while ops::cas(&self.tail, t, h).is_err() {
            let head_now = self.head.load(Ordering::SeqCst);
            let t_raw = self.tail.load(Ordering::SeqCst);
            if t_raw & FINALIZED_BIT != 0 {
                break; // never clobber the finalized bit
            }
            t = t_raw;
            if t >= head_now {
                break;
            }
        }
    }

    /// Re-arms the threshold to its maximum, forcing the next dequeue to
    /// actually scan the ring even if the counter was exhausted. The LSCQ
    /// dequeue does this before abandoning a ring: a racing enqueue may
    /// have published an entry but not yet reset the threshold, and the
    /// abandonment double-check must be able to find it.
    pub fn reset_threshold(&self) {
        self.threshold.store(self.threshold_max(), Ordering::SeqCst);
    }

    /// Closes the ring to further enqueues (tantrum-style, `LOCK BTS` on
    /// tail bit 63). Returns `true` if this call closed it.
    pub fn finalize(&self) -> bool {
        let newly = !ops::tas_bit(&self.tail, 63);
        if newly {
            metrics::inc(Event::CrqClosed);
        }
        newly
    }

    /// Whether [`finalize`](Self::finalize) has been called.
    pub fn is_finalized(&self) -> bool {
        self.tail.load(Ordering::SeqCst) & FINALIZED_BIT != 0
    }

    /// The head position (next to dequeue). Diagnostic.
    #[inline]
    pub fn head_index(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// The tail position (next to enqueue), with the finalized bit masked
    /// off. Diagnostic.
    #[inline]
    pub fn tail_index(&self) -> u64 {
        self.tail.load(Ordering::SeqCst) & !FINALIZED_BIT
    }

    /// The current threshold value. Diagnostic (tests assert the
    /// livelock-freedom bound through this).
    pub fn threshold(&self) -> i64 {
        self.threshold.load(Ordering::SeqCst)
    }
}

// SAFETY: all state is atomic words.
unsafe impl<P: FaaPolicy> Send for Scq<P> {}
unsafe impl<P: FaaPolicy> Sync for Scq<P> {}

/// An SCQ ring carrying arbitrary `u64` payloads through index
/// indirection (Nikolaev §2.3): a free-index ring `fq` (initially full)
/// and an allocated-index ring `aq` shuttle the indices of `capacity`
/// data slots. Enqueue pops a slot index from `fq`, writes the value,
/// pushes the index into `aq`; dequeue mirrors it. Index ownership is
/// exclusive between the two rings, so the data-slot accesses never race.
///
/// Tantrum semantics like [`Crq`](crate::Crq): an enqueue that finds no
/// free slot closes the ring and returns [`CrqClosed`], permanently — the
/// signal [`Lscq`](crate::Lscq) uses to link a fresh ring.
pub struct ScqD<P: FaaPolicy = HardwareFaa> {
    /// Indices of slots holding live values.
    aq: Scq<P>,
    /// Free slot indices; starts full, never finalized.
    fq: Scq<P>,
    /// The value slots. `data[i]` is owned by whichever thread holds index
    /// `i` between a ring pop and the matching push; atomics (rather than
    /// `UnsafeCell`) keep the handoff visibly race-free.
    data: Box<[AtomicU64]>,
    /// The next ring in an LSCQ list (null while this is the tail ring).
    pub(crate) next: CachePadded<AtomicPtr<ScqD<P>>>,
}

impl<P: FaaPolicy> ScqD<P> {
    /// An empty ring with capacity `config.ring_size()`.
    pub fn new(config: &LcrqConfig) -> Self {
        metrics::inc(Event::RingAlloc);
        let order = config.ring_size().trailing_zeros();
        let n = 1usize << order;
        ScqD {
            aq: Scq::new_empty(order),
            fq: Scq::new_full(order),
            data: (0..n).map(|_| AtomicU64::new(0)).collect(),
            next: CachePadded::new(AtomicPtr::new(core::ptr::null_mut())),
        }
    }

    /// An empty ring pre-loaded with `seed` (at most `capacity` values) —
    /// how the LSCQ spill path hands its item to a fresh ring without
    /// re-contending.
    pub fn with_seed(config: &LcrqConfig, seed: &[u64]) -> Self {
        let q = Self::new(config);
        for &v in seed {
            let placed = q.enqueue(v);
            debug_assert!(placed.is_ok(), "seeding a fresh ring cannot fail");
            let _ = placed;
        }
        q
    }

    /// Number of values the ring can hold.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Appends `value` (any `u64`). Fails with [`CrqClosed`] once the ring
    /// is closed — including the self-inflicted close when no free slot is
    /// available (the tantrum).
    pub fn enqueue(&self, value: u64) -> Result<(), CrqClosed> {
        if self.is_closed() {
            return Err(CrqClosed);
        }
        let Some(i) = self.fq.dequeue() else {
            // No free slot: the ring is full (or transiently looks full).
            // Throw the tantrum so an LSCQ spills into a fresh ring.
            self.close();
            return Err(CrqClosed);
        };
        self.data[i as usize].store(value, Ordering::SeqCst);
        if self.aq.enqueue(i).is_err() {
            // Finalized under us. Hand the slot back so the index count
            // stays exact, and report the tantrum; the caller's item was
            // never published, so no double-delivery is possible.
            self.fq
                .enqueue(i)
                .expect("the free-index ring is never finalized");
            return Err(CrqClosed);
        }
        Ok(())
    }

    /// Removes the oldest value, or `None` when the ring is empty. Keeps
    /// draining after a close (tantrum queues refuse enqueues, not
    /// dequeues).
    pub fn dequeue(&self) -> Option<u64> {
        let i = self.aq.dequeue()?;
        let v = self.data[i as usize].load(Ordering::SeqCst);
        self.fq
            .enqueue(i)
            .expect("the free-index ring is never finalized");
        Some(v)
    }

    /// Closes the ring to further enqueues (idempotent). Returns `true` if
    /// this call closed it.
    pub fn close(&self) -> bool {
        self.aq.finalize()
    }

    /// Whether the ring has been closed.
    pub fn is_closed(&self) -> bool {
        self.aq.is_finalized()
    }

    /// Re-arms the allocated ring's threshold; see
    /// [`Scq::reset_threshold`].
    pub fn reset_threshold(&self) {
        self.aq.reset_threshold();
    }

    /// Head position of the allocated ring (diagnostic).
    pub fn head_index(&self) -> u64 {
        self.aq.head_index()
    }

    /// Tail position of the allocated ring (diagnostic).
    pub fn tail_index(&self) -> u64 {
        self.aq.tail_index()
    }
}

// SAFETY: all state is atomic; `next` is managed by the owning Lscq.
unsafe impl<P: FaaPolicy> Send for ScqD<P> {}
unsafe impl<P: FaaPolicy> Sync for ScqD<P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrq_atomic::CasLoopFaa;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Mutex};

    // The metrics aggregate is process-wide: serialize tests that bracket
    // it (same pattern as crq.rs / faa.rs).
    static METRICS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn entry_packing_round_trips() {
        let q: Scq = Scq::new_empty(4);
        for (cycle, safe, idx) in [(0, true, 0), (3, false, 7), (99, true, 31), (7, false, 30)] {
            let e = q.pack(cycle, safe, idx);
            assert_eq!(q.unpack(e), (cycle, safe, idx));
        }
        // ⊥ is all-ones in the index field of a 2^5-entry ring.
        assert_eq!(q.bottom_index(), 31);
    }

    #[test]
    fn remap_is_a_permutation_and_spreads_neighbours() {
        let q: Scq = Scq::new_empty(6); // 128 entries
        let slots = q.entries.len();
        let mut seen = vec![false; slots];
        for p in 0..slots as u64 {
            let j = q.remap(p);
            assert!(!seen[j], "remap must be a bijection");
            seen[j] = true;
        }
        // Consecutive positions land 8 entries (one cache line) apart.
        assert_eq!(q.remap(1).abs_diff(q.remap(0)), 8);
    }

    #[test]
    fn empty_ring_dequeues_none_without_faa() {
        let _g = METRICS_LOCK.lock().unwrap();
        let q: Scq = Scq::new_empty(3);
        let before = lcrq_util::metrics::local_snapshot();
        assert_eq!(q.dequeue(), None);
        let after = lcrq_util::metrics::local_snapshot();
        // Fresh ring: threshold starts exhausted, EMPTY costs zero F&As.
        assert_eq!(after.get(Event::Faa), before.get(Event::Faa));
        assert_eq!(
            after.get(Event::ThresholdExhausted),
            before.get(Event::ThresholdExhausted) + 1
        );
    }

    #[test]
    fn index_ring_is_fifo_within_capacity() {
        let q: Scq = Scq::new_empty(4);
        for _lap in 0..10 {
            for i in 0..q.capacity() {
                q.enqueue(i).unwrap();
            }
            for i in 0..q.capacity() {
                assert_eq!(q.dequeue(), Some(i));
            }
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    fn full_ring_hands_out_every_index_in_order() {
        let q: Scq = Scq::new_full(3);
        for i in 0..8 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        // And keeps cycling.
        q.enqueue(5).unwrap();
        assert_eq!(q.dequeue(), Some(5));
    }

    #[test]
    fn finalize_refuses_enqueues_but_drains() {
        let q: Scq = Scq::new_empty(3);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert!(q.finalize());
        assert!(!q.finalize(), "second finalize is a no-op");
        assert!(q.is_finalized());
        assert_eq!(q.enqueue(3), Err(CrqClosed));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn threshold_exhausts_and_rearms() {
        let q: Scq = Scq::new_empty(2);
        q.enqueue(1).unwrap();
        assert_eq!(q.threshold(), q.threshold_max());
        assert_eq!(q.dequeue(), Some(1));
        // Drive the counter negative with empty dequeues.
        let mut spins = 0;
        while q.threshold() >= 0 {
            assert_eq!(q.dequeue(), None);
            spins += 1;
            assert!(spins <= 4 * q.entries.len(), "threshold must decay");
        }
        // Exhausted: head stops moving.
        let head = q.head_index();
        for _ in 0..64 {
            assert_eq!(q.dequeue(), None);
        }
        assert_eq!(q.head_index(), head);
        // An enqueue re-arms it.
        q.enqueue(2).unwrap();
        assert!(q.threshold() >= 0);
        assert_eq!(q.dequeue(), Some(2));
    }

    #[test]
    fn catchup_repairs_a_lagging_tail() {
        let q: Scq = Scq::new_empty(2);
        q.enqueue(0).unwrap();
        assert_eq!(q.dequeue(), Some(0));
        // Empty dequeues push head past tail; catchup must drag tail along
        // so it never lags more than the in-flight window.
        for _ in 0..32 {
            q.dequeue();
        }
        assert!(q.tail_index() + 1 >= q.head_index());
        // Enqueue/dequeue still work after the repairs.
        q.enqueue(3).unwrap();
        assert_eq!(q.dequeue(), Some(3));
    }

    #[test]
    fn scqd_round_trips_arbitrary_values() {
        let q: ScqD = ScqD::new(&LcrqConfig::new().with_ring_order(4));
        for v in [0u64, 1, u64::MAX, u64::MAX - 1, 0xdead_beef_dead_beef] {
            q.enqueue(v).unwrap();
        }
        for v in [0u64, 1, u64::MAX, u64::MAX - 1, 0xdead_beef_dead_beef] {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn scqd_tantrums_when_full_and_drains_after() {
        let q: ScqD = ScqD::new(&LcrqConfig::new().with_ring_order(2));
        for v in 0..q.capacity() {
            q.enqueue(v).unwrap();
        }
        // No free slot left: the enqueue throws the tantrum.
        assert_eq!(q.enqueue(99), Err(CrqClosed));
        assert!(q.is_closed());
        assert_eq!(q.enqueue(100), Err(CrqClosed), "closed is permanent");
        for v in 0..q.capacity() {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn scqd_seeded_ring_serves_its_seed_first() {
        let q: ScqD = ScqD::with_seed(&LcrqConfig::new().with_ring_order(3), &[7, 8, 9]);
        q.enqueue(10).unwrap();
        assert_eq!(q.dequeue(), Some(7));
        assert_eq!(q.dequeue(), Some(8));
        assert_eq!(q.dequeue(), Some(9));
        assert_eq!(q.dequeue(), Some(10));
    }

    #[test]
    fn scqd_mpmc_exchange_is_exactly_once() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        // Capacity covers the whole run: a bare ScqD closes permanently on
        // full (the tantrum), so this test sizes it for the backlog.
        let q: Arc<ScqD> = Arc::new(ScqD::new(&LcrqConfig::new().with_ring_order(13)));
        let seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS as u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Ring is big enough that the tantrum never fires here.
                    q.enqueue((t << 32) | i).unwrap();
                }
            }));
        }
        for _ in 0..THREADS {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            handles.push(std::thread::spawn(move || {
                let mut last = [None::<u64>; THREADS];
                let mut got = 0usize;
                while got < PER_THREAD as usize {
                    let Some(v) = q.dequeue() else {
                        std::hint::spin_loop();
                        continue;
                    };
                    let (t, i) = ((v >> 32) as usize, v & 0xffff_ffff);
                    assert!(last[t].is_none_or(|prev| prev < i), "per-producer FIFO");
                    last[t] = Some(i);
                    got += 1;
                }
                seen.fetch_add(got, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::SeqCst), THREADS * PER_THREAD as usize);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn cas_policy_variant_works() {
        let q: ScqD<CasLoopFaa> = ScqD::new(&LcrqConfig::new().with_ring_order(4));
        for v in 0..10 {
            q.enqueue(v).unwrap();
        }
        for v in 0..10 {
            assert_eq!(q.dequeue(), Some(v));
        }
    }
}
