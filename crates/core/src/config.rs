//! Tuning parameters for CRQ/LCRQ.

use std::time::Duration;

/// Configuration for [`crate::Lcrq`] and the underlying CRQ rings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcrqConfig {
    /// Ring size exponent: each CRQ has `R = 1 << ring_order` nodes.
    ///
    /// The paper's evaluation uses `R = 2^17` (§5, "LCRQ implementation");
    /// its sensitivity study (Figure 9) shows performance saturates once the
    /// ring comfortably exceeds the thread count. The library default is
    /// `2^12`, which is already deep in the saturated regime for any
    /// realistic thread count while keeping a ring under 1 MiB; pass the
    /// paper's value to reproduce its exact setup.
    pub ring_order: u32,

    /// Close the ring after an enqueue fails to place its item this many
    /// times (the paper's `starving()` predicate, Figure 3d line 98; the
    /// mechanism that makes LCRQ nonblocking).
    pub starvation_limit: u32,

    /// Bounded-wait optimization (§4.1.1): a dequeuer that arrives before
    /// its matching enqueuer spins up to this many iterations for the
    /// enqueue transition instead of immediately performing an empty
    /// transition (which would force both operations to retry). `0`
    /// disables the optimization.
    pub bounded_wait_spins: u32,

    /// Hierarchical cluster batching (LCRQ+H, §4.1.1). `None` = plain LCRQ.
    pub hierarchical: Option<HierarchicalConfig>,

    /// Maximum number of retired rings kept in the recycling pool
    /// ([`crate::pool::RingPool`]) for reuse by the spill path instead of
    /// being freed. Bounds the queue's idle memory at roughly
    /// `ring_pool_capacity × R × 128` bytes beyond the live ring chain.
    /// `0` disables recycling (every spill allocates, every retire frees).
    pub ring_pool_capacity: usize,
}

/// Parameters of the hierarchy-aware optimization (LCRQ+H).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchicalConfig {
    /// How long a thread on a "remote" cluster waits before seizing the
    /// CRQ's cluster field and entering anyway. The paper uses 100 µs.
    pub timeout: Duration,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        Self {
            timeout: Duration::from_micros(100),
        }
    }
}

impl LcrqConfig {
    /// Library default: `R = 2^12`, starvation limit 1024, bounded wait 128,
    /// no hierarchical batching, ring pool of 8.
    pub fn new() -> Self {
        Self {
            ring_order: 12,
            starvation_limit: 1024,
            bounded_wait_spins: 128,
            hierarchical: None,
            ring_pool_capacity: 8,
        }
    }

    /// The exact configuration of the paper's evaluation: `R = 2^17`,
    /// hierarchical batching off (enable via [`hierarchical`](Self::with_hierarchical)
    /// for LCRQ+H with its 100 µs timeout).
    pub fn paper() -> Self {
        Self {
            ring_order: 17,
            ..Self::new()
        }
    }

    /// Sets the ring size exponent (clamped to `[1, 30]`).
    pub fn with_ring_order(mut self, order: u32) -> Self {
        self.ring_order = order.clamp(1, 30);
        self
    }

    /// Sets the starvation limit (minimum 1).
    pub fn with_starvation_limit(mut self, limit: u32) -> Self {
        self.starvation_limit = limit.max(1);
        self
    }

    /// Sets the bounded-wait spin budget (0 disables).
    pub fn with_bounded_wait(mut self, spins: u32) -> Self {
        self.bounded_wait_spins = spins;
        self
    }

    /// Enables the hierarchical (LCRQ+H) optimization.
    pub fn with_hierarchical(mut self, h: HierarchicalConfig) -> Self {
        self.hierarchical = Some(h);
        self
    }

    /// Sets the recycling-pool capacity (0 disables ring reuse).
    pub fn with_ring_pool_capacity(mut self, capacity: usize) -> Self {
        self.ring_pool_capacity = capacity;
        self
    }

    /// Ring size `R` in nodes.
    pub fn ring_size(&self) -> u64 {
        1u64 << self.ring_order
    }
}

impl Default for LcrqConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = LcrqConfig::default();
        assert_eq!(c.ring_size(), 4096);
        assert!(c.starvation_limit >= 1);
        assert!(c.hierarchical.is_none());
        assert!(c.ring_pool_capacity > 0, "recycling is on by default");
    }

    #[test]
    fn ring_pool_capacity_builder() {
        let c = LcrqConfig::new().with_ring_pool_capacity(0);
        assert_eq!(c.ring_pool_capacity, 0);
        let c = LcrqConfig::new().with_ring_pool_capacity(32);
        assert_eq!(c.ring_pool_capacity, 32);
    }

    #[test]
    fn paper_config_matches_evaluation_section() {
        let c = LcrqConfig::paper();
        assert_eq!(c.ring_size(), 1 << 17);
        let h = HierarchicalConfig::default();
        assert_eq!(h.timeout, Duration::from_micros(100));
    }

    #[test]
    fn builders_clamp() {
        let c = LcrqConfig::new()
            .with_ring_order(99)
            .with_starvation_limit(0);
        assert_eq!(c.ring_order, 30);
        assert_eq!(c.starvation_limit, 1);
        let c = LcrqConfig::new().with_ring_order(0);
        assert_eq!(c.ring_size(), 2);
    }
}
