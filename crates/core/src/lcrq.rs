//! LCRQ — the linked list of CRQs (paper §4.2, Figure 5).
//!
//! Dequeuers work in the head CRQ, enqueuers in the tail CRQ. An enqueue
//! that finds the tail ring closed allocates a fresh ring *pre-seeded with
//! its item* and races to link it; the winner is done, losers move into the
//! new ring. A dequeue that finds the head ring empty tries once more
//! (the December-2013 erratum: without the second attempt an item enqueued
//! between the first dequeue and the `next` check can be lost) and then
//! swings `head` to the next ring, retiring the old one through hazard
//! pointers.
//!
//! Progress: op-wise nonblocking (§4.2.1) — some enqueue always completes
//! in a finite number of enqueuer steps (closing + linking always succeeds
//! for someone), and likewise for dequeues.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

use lcrq_atomic::{ops, CasLoopFaa, FaaPolicy, HardwareFaa};
use lcrq_hazard::Domain;
use lcrq_queues::EnqueueError;
use lcrq_util::backoff::Backoff;
use lcrq_util::metrics::{self, Event};
use lcrq_util::spin::SpinDeadline;
use lcrq_util::topology::current_cluster;
use lcrq_util::CachePadded;

use crate::config::LcrqConfig;
use crate::crq::Crq;
use crate::pool::{self, RingPool};
use crate::BOTTOM;

/// The LCRQ with hardware fetch-and-add — the paper's headline algorithm.
pub type Lcrq = LcrqGeneric<HardwareFaa>;

/// LCRQ-CAS: the identical algorithm with F&A emulated by a CAS loop; used
/// to isolate the contribution of always-succeeding F&A (paper §5).
pub type LcrqCas = LcrqGeneric<CasLoopFaa>;

/// An unbounded, linearizable, op-wise nonblocking MPMC FIFO queue of `u64`
/// values (`< BOTTOM`), generic over the fetch-and-add policy.
///
/// ```
/// use lcrq_core::Lcrq;
/// let q = Lcrq::new();
/// q.enqueue(10);
/// assert_eq!(q.dequeue(), Some(10));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct LcrqGeneric<P: FaaPolicy> {
    head: CachePadded<AtomicPtr<Crq<P>>>,
    tail: CachePadded<AtomicPtr<Crq<P>>>,
    domain: Domain,
    /// Recycling pool for retired rings (see [`RingPool`]). Declared after
    /// `domain` so the domain drops first: reclaim callbacks running during
    /// domain teardown can still upgrade their `Weak` and park rings here,
    /// and the pool then frees everything it holds.
    pool: Arc<RingPool<P>>,
    config: LcrqConfig,
    /// Queue-level shutdown flag (see [`close`](Self::close)). Distinct from
    /// per-ring tantrum closes, which only redirect enqueuers to a new ring.
    closed: AtomicBool,
}

/// Hazard slot used for the CRQ an operation is about to access.
const HP_SLOT: usize = 0;

/// Hazard slot used by [`RingPool::pop`] to protect its stack-pop candidate.
/// Distinct from [`HP_SLOT`], which still protects the tail ring while the
/// spill path shops for a replacement.
const HP_POOL_SLOT: usize = 1;

impl<P: FaaPolicy> LcrqGeneric<P> {
    /// Creates an empty queue with the default [`LcrqConfig`].
    pub fn new() -> Self {
        Self::with_config(LcrqConfig::default())
    }

    /// Creates an empty queue with an explicit configuration.
    pub fn with_config(config: LcrqConfig) -> Self {
        let pool = RingPool::new(config.ring_pool_capacity);
        let first = Box::new(Crq::<P>::new(&config));
        first.attach_pool(Arc::downgrade(&pool));
        let first = Box::into_raw(first);
        Self {
            head: CachePadded::new(AtomicPtr::new(first)),
            tail: CachePadded::new(AtomicPtr::new(first)),
            domain: Domain::new(),
            pool,
            config,
            closed: AtomicBool::new(false),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LcrqConfig {
        &self.config
    }

    /// The ring recycling pool attached to this queue (diagnostic: its
    /// `len`/`capacity` bound the retired-ring memory kept for reuse).
    pub fn ring_pool(&self) -> &RingPool<P> {
        &self.pool
    }

    /// The queue's hazard-pointer domain (diagnostic: lets tests assert the
    /// calling thread's retired-ring backlog stays within the domain's
    /// reclamation [`threshold`](Domain::threshold) even while other
    /// participants are stalled holding published hazards).
    pub fn hazard_domain(&self) -> &Domain {
        &self.domain
    }

    /// Produces a fresh open ring seeded with `seed`: recycled from the
    /// pool when possible (allocation-free), otherwise heap-allocated.
    /// Either way the ring carries the pool back-pointer, so its eventual
    /// retirement recycles it.
    ///
    /// Returns `None` only when the pool had no ring **and** the heap
    /// allocation was refused — today that refusal exists only as the
    /// `ring-alloc` fail point, but the plumbing is the graceful-degradation
    /// path a real fallible allocator would use. The caller surfaces it as
    /// [`EnqueueError::AllocFailed`] instead of aborting.
    fn try_alloc_ring(&self, seed: &[u64]) -> Option<*mut Crq<P>> {
        if let Some(ring) = self.pool.pop(&self.domain, HP_POOL_SLOT) {
            ring.reseed(seed);
            return Some(Box::into_raw(ring));
        }
        if lcrq_util::fault::inject(lcrq_util::fault::Site::RingAlloc) {
            metrics::inc(Event::AllocDegraded);
            return None;
        }
        let ring = Box::new(Crq::<P>::with_seed_batch(&self.config, seed));
        ring.attach_pool(Arc::downgrade(&self.pool));
        Some(Box::into_raw(ring))
    }

    /// Disposes of a spill ring that lost its link race: back to the pool
    /// for the next spill, else deferred-freed. The free goes through the
    /// hazard domain even though the ring was never queue-visible — if it
    /// came out of the pool, a concurrent [`RingPool::pop`] can still hold
    /// a hazard-protected pointer to it from a lost pop race.
    fn release_ring(&self, ring: Box<Crq<P>>) {
        if let Err(ring) = self.pool.push(ring) {
            // SAFETY: unpublished at queue level and uniquely owned here;
            // the domain defers the free past any straggling pool popper.
            unsafe { self.domain.retire(Box::into_raw(ring)) };
        }
    }

    /// LCRQ+H cluster gate (§4.1.1): wait briefly for the ring's cluster to
    /// become ours, then seize it and enter regardless — so the optimization
    /// batches same-cluster operations without ever blocking.
    #[inline]
    fn cluster_gate(&self, crq: &Crq<P>) {
        let Some(h) = &self.config.hierarchical else {
            return;
        };
        let mine = current_cluster() as u64;
        if crq.cluster.load(Ordering::Relaxed) == mine {
            return;
        }
        let deadline = SpinDeadline::new(h.timeout);
        loop {
            if crq.cluster.load(Ordering::Relaxed) == mine {
                return;
            }
            if deadline.expired() {
                let seen = crq.cluster.load(Ordering::Relaxed);
                let _ = ops::cas(&crq.cluster, seen, mine);
                return; // enter even if the CAS failed
            }
            deadline.pause();
        }
    }

    /// Appends `value` (must be `< BOTTOM`). Figure 5c.
    ///
    /// # Panics
    ///
    /// Panics if the queue has been [`close`](Self::close)d; use
    /// [`try_enqueue`](Self::try_enqueue) when shutdown is possible.
    pub fn enqueue(&self, value: u64) {
        if self.try_enqueue(value).is_err() {
            panic!("enqueue on a closed Lcrq (use try_enqueue to handle shutdown)");
        }
    }

    /// Appends `value` (must be `< BOTTOM`) unless the queue has been
    /// [`close`](Self::close)d, in which case the value is handed back as
    /// `Err(value)`. This is the Figure 5c enqueue with a shutdown fence:
    /// the closed flag is checked at the top of each attempt *and* again
    /// after finding the tail ring tantrum-closed, so no enqueuer can
    /// append a fresh ring to a closed queue.
    pub fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        let mut backoff: Option<Backoff> = None;
        loop {
            match self.try_enqueue_fallible(value) {
                Ok(()) => return Ok(()),
                Err(EnqueueError::Closed(v)) => return Err(v),
                Err(EnqueueError::AllocFailed(_)) => {
                    // A refused ring allocation is transient (the pool can
                    // refill, the injected refusal is probabilistic): back
                    // off and retry, preserving this method's historical
                    // "closed is the only failure" contract. Callers that
                    // want to *see* the refusal use
                    // [`try_enqueue_fallible`](Self::try_enqueue_fallible).
                    backoff.get_or_insert_with(Backoff::jittered).spin();
                }
            }
        }
    }

    /// Like [`try_enqueue`](Self::try_enqueue), but also surfaces a refused
    /// ring allocation as [`EnqueueError::AllocFailed`] instead of retrying
    /// internally. The queue stays open and fully usable after an
    /// `AllocFailed` — the value was not placed and is handed back, so the
    /// caller may retry, shed load, or propagate the error.
    pub fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        assert!(value != BOTTOM, "BOTTOM (u64::MAX) is reserved");
        let mut backoff: Option<Backoff> = None;
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(EnqueueError::Closed(value));
            }
            let crq = self.domain.protect(HP_SLOT, &self.tail);
            // SAFETY: `crq` is hazard-protected, so it cannot be reclaimed
            // while we use it.
            let crq_ref = unsafe { &*crq };
            // Help a half-finished append: tail must point at the last ring.
            let next = crq_ref.next.load(Ordering::SeqCst);
            if !next.is_null() {
                let _ = ops::ptr::cas_ptr(&self.tail, crq, next);
                continue;
            }
            self.cluster_gate(crq_ref);
            if crq_ref.enqueue(value).is_ok() {
                self.domain.clear(HP_SLOT);
                return Ok(());
            }
            // Ring closed. Shutdown close and tantrum close look the same at
            // ring level — distinguish them here: if the *queue* is closed,
            // fail instead of appending a fresh ring past the fence.
            if self.closed.load(Ordering::SeqCst) {
                self.domain.clear(HP_SLOT);
                return Err(EnqueueError::Closed(value));
            }
            // Fail point in the close-race window: between observing the
            // tantrum and racing to link a replacement ring.
            let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::CloseRace);
            // Tantrum: race to append a fresh ring seeded with value
            // (recycled from the pool when one is available).
            let Some(newring) = self.try_alloc_ring(core::slice::from_ref(&value)) else {
                self.domain.clear(HP_SLOT);
                return Err(EnqueueError::AllocFailed(value));
            };
            match ops::ptr::cas_ptr(&crq_ref.next, core::ptr::null_mut(), newring) {
                Ok(()) => {
                    let _ = ops::ptr::cas_ptr(&self.tail, crq, newring);
                    self.domain.clear(HP_SLOT);
                    return Ok(());
                }
                Err(_) => {
                    // Another enqueuer linked first; ours was never linked.
                    // SAFETY: newring is unpublished and uniquely owned.
                    self.release_ring(unsafe { Box::from_raw(newring) });
                    // Lost link race: the winner's ring has room, but under
                    // heavy churn repeated losses waste an allocation each
                    // round — bounded backoff with deterministic jitter
                    // de-synchronizes the contenders.
                    backoff.get_or_insert_with(Backoff::jittered).spin();
                }
            }
        }
    }

    /// Closes the queue for further enqueues: every subsequent
    /// [`try_enqueue`](Self::try_enqueue) fails and [`enqueue`](Self::enqueue)
    /// panics, while dequeues continue to drain what was already placed.
    /// Returns `true` on the first call, `false` if already closed.
    ///
    /// Implementation: a queue-level flag is raised first, then the tail
    /// ring chain is tantrum-closed ([`Crq`] `CLOSED` bit) so that enqueuers
    /// already past the flag check are diverted into the "ring closed" path,
    /// where they re-check the flag and fail instead of linking a new ring.
    /// An enqueuer that fully completed before the flag was raised is
    /// unaffected: its item is already linked and stays dequeuable. The
    /// remaining race — an enqueuer that passed the flag check but has not
    /// yet placed its item — is bounded: it either lands in a ring we close
    /// (and fails on re-check) or completes into a linked ring, where the
    /// item is still drained normally. Either way no item is ever lost or
    /// double-freed; see DESIGN.md "Channel layer" for the full argument.
    pub fn close(&self) -> bool {
        if self.closed.swap(true, Ordering::SeqCst) {
            return false;
        }
        // Walk to the end of the chain, closing every ring from the current
        // tail on, so in-flight enqueuers are fenced no matter which ring
        // they are working in.
        loop {
            let crq = self.domain.protect(HP_SLOT, &self.tail);
            // SAFETY: hazard-protected.
            let crq_ref = unsafe { &*crq };
            crq_ref.close();
            let next = crq_ref.next.load(Ordering::SeqCst);
            if next.is_null() {
                self.domain.clear(HP_SLOT);
                return true;
            }
            let _ = ops::ptr::cas_ptr(&self.tail, crq, next);
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Removes the oldest value, or `None` when the queue is empty.
    /// Figure 5b (December-2013 corrected version).
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let crq = self.domain.protect(HP_SLOT, &self.head);
            // SAFETY: hazard-protected.
            let crq_ref = unsafe { &*crq };
            self.cluster_gate(crq_ref);
            if let Some(v) = crq_ref.dequeue() {
                self.domain.clear(HP_SLOT);
                return Some(v);
            }
            let next = crq_ref.next.load(Ordering::SeqCst);
            if next.is_null() {
                self.domain.clear(HP_SLOT);
                return None;
            }
            // An enqueue may have slipped into this ring between our failed
            // dequeue and the `next` read (the ring closes *after* accepting
            // its last items). Re-check before abandoning the ring — the
            // erratum fix (Figure 5b lines 146-147).
            if let Some(v) = crq_ref.dequeue() {
                self.domain.clear(HP_SLOT);
                return Some(v);
            }
            if ops::ptr::cas_ptr(&self.head, crq, next).is_ok() {
                // Drop our own protection first so the scan below can
                // recycle `crq` immediately (we are done touching it).
                self.domain.clear(HP_SLOT);
                // SAFETY: `crq` is now unreachable from the queue (head
                // moved past it and enqueuers long since moved to `next` or
                // later); hazard retirement defers reclamation until no
                // operation still holds it protected, and the reclaimer
                // scrubs it into the ring pool instead of freeing it
                // (falling back to a free when the pool is full or gone).
                unsafe {
                    self.domain
                        .retire_with(crq as *mut (), pool::recycle_ring::<P>)
                };
                if !self.pool.is_full() {
                    // Feed the pool promptly: at the domain's default scan
                    // threshold, a pile of reusable rings would sit retired
                    // while the spill path allocates fresh ones.
                    self.domain.scan();
                }
            } else {
                self.domain.clear(HP_SLOT);
            }
        }
    }

    /// Appends every value in `values` (all must be `< BOTTOM`) using
    /// multi-slot reservations: one `FAA(tail, k)` claims up to `k`
    /// consecutive indices of the tail ring, which are then filled with the
    /// ordinary per-slot CAS2 protocol (see [`Crq::enqueue_batch`]).
    ///
    /// **Linearizability**: this is *not* an atomic multi-enqueue. It
    /// linearizes as `values.len()` individual enqueues in slice order;
    /// items covered by one reservation additionally occupy contiguous
    /// queue positions. When the tail ring closes mid-batch (tantrum), the
    /// unplaced remainder spills into the fresh ring this thread races to
    /// append — pre-seeded via [`Crq::with_seed_batch`] so the spill costs
    /// no further F&As — and a concurrent enqueuer may slip between the two
    /// reservations. See DESIGN.md "Batched operations".
    ///
    /// # Panics
    ///
    /// Panics if the queue has been [`close`](Self::close)d; use
    /// [`try_enqueue_batch`](Self::try_enqueue_batch) when shutdown is
    /// possible (a close racing mid-batch can leave a prefix placed — the
    /// panic reports nothing was rolled back).
    pub fn enqueue_batch(&self, values: &[u64]) {
        if let Err(placed) = self.try_enqueue_batch(values) {
            panic!(
                "enqueue_batch on a closed Lcrq ({placed}/{} items placed; \
                 use try_enqueue_batch to handle shutdown)",
                values.len()
            );
        }
    }

    /// Batch counterpart of [`try_enqueue`](Self::try_enqueue): appends
    /// every value unless the queue is [`close`](Self::close)d. On shutdown
    /// `Err(placed)` reports how many leading items of `values` made it into
    /// the queue before the close was observed (they will be drained by
    /// receivers like any other items); the remainder `values[placed..]` was
    /// not enqueued and stays owned by the caller.
    pub fn try_enqueue_batch(&self, values: &[u64]) -> Result<(), usize> {
        for &v in values {
            assert!(v != BOTTOM, "BOTTOM (u64::MAX) is reserved");
        }
        let mut rest = values;
        let mut placed_total = 0usize;
        let mut backoff: Option<Backoff> = None;
        while !rest.is_empty() {
            if self.closed.load(Ordering::SeqCst) {
                self.domain.clear(HP_SLOT);
                return Err(placed_total);
            }
            let crq = self.domain.protect(HP_SLOT, &self.tail);
            // SAFETY: hazard-protected.
            let crq_ref = unsafe { &*crq };
            let next = crq_ref.next.load(Ordering::SeqCst);
            if !next.is_null() {
                let _ = ops::ptr::cas_ptr(&self.tail, crq, next);
                continue; // help the half-finished append, then retry
            }
            self.cluster_gate(crq_ref);
            let placed = crq_ref.enqueue_batch(rest);
            placed_total += placed;
            rest = &rest[placed..];
            if rest.is_empty() {
                break;
            }
            if !crq_ref.is_closed() {
                // The reservation ran out of usable slots but the ring is
                // still open: take a fresh reservation for the remainder.
                continue;
            }
            // Ring closed mid-batch: as in try_enqueue, distinguish queue
            // shutdown from an ordinary tantrum before linking a new ring.
            if self.closed.load(Ordering::SeqCst) {
                self.domain.clear(HP_SLOT);
                return Err(placed_total);
            }
            // Fail point in the close-race window (as in the scalar path).
            let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::CloseRace);
            // Tantrum mid-batch: spill the remainder (up to one ring's
            // worth) into a fresh ring — recycled from the pool when
            // possible — and race to link it, exactly like the scalar
            // path's seeded ring.
            let seed_len = (rest.len() as u64).min(self.config.ring_size()) as usize;
            let Some(newring) = self.try_alloc_ring(&rest[..seed_len]) else {
                // Refused allocation is transient here: back off and retry
                // rather than reporting a partial batch as a shutdown.
                backoff.get_or_insert_with(Backoff::jittered).spin();
                continue;
            };
            match ops::ptr::cas_ptr(&crq_ref.next, core::ptr::null_mut(), newring) {
                Ok(()) => {
                    let _ = ops::ptr::cas_ptr(&self.tail, crq, newring);
                    placed_total += seed_len;
                    rest = &rest[seed_len..];
                }
                Err(_) => {
                    // Another enqueuer linked first; ours was never linked.
                    // SAFETY: newring is unpublished and uniquely owned.
                    self.release_ring(unsafe { Box::from_raw(newring) });
                    backoff.get_or_insert_with(Backoff::jittered).spin();
                }
            }
        }
        self.domain.clear(HP_SLOT);
        Ok(())
    }

    /// Removes up to `max` of the oldest values, appending them to `out` in
    /// queue order; returns how many were removed. A return `< max` is a
    /// linearizable EMPTY observation, exactly like a scalar
    /// [`dequeue`](Self::dequeue) returning `None`.
    ///
    /// Reserves head indices in bulk — one `FAA(head, k)` for up to `k`
    /// items, bounded by the observed backlog (see [`Crq::dequeue_batch`]).
    /// When the bulk path finds nothing it falls back to one scalar
    /// dequeue, which performs the December-2013 erratum double-check and
    /// the head-ring switch, then resumes bulk reservations on the new
    /// ring. Each removed item linearizes as an individual dequeue; items
    /// of one reservation are consecutive in queue order.
    pub fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        let mut taken = 0usize;
        while taken < max {
            let crq = self.domain.protect(HP_SLOT, &self.head);
            // SAFETY: hazard-protected.
            let crq_ref = unsafe { &*crq };
            self.cluster_gate(crq_ref);
            let got = crq_ref.dequeue_batch(out, max - taken);
            taken += got;
            if got > 0 {
                continue;
            }
            // Bulk reservation found nothing: one scalar dequeue settles
            // emptiness (erratum double-check) and switches rings. It
            // re-protects and clears HP_SLOT internally.
            match self.dequeue() {
                Some(v) => {
                    out.push(v);
                    taken += 1;
                }
                None => break, // linearizable EMPTY
            }
        }
        self.domain.clear(HP_SLOT);
        taken
    }

    /// Whether the queue appears empty (racy snapshot; `dequeue` is the
    /// linearizable way to observe emptiness).
    pub fn is_empty_hint(&self) -> bool {
        let crq = self.domain.protect(HP_SLOT, &self.head);
        // SAFETY: hazard-protected.
        let crq_ref = unsafe { &*crq };
        let empty = crq_ref.head_index() >= crq_ref.tail_index()
            && crq_ref.next.load(Ordering::SeqCst).is_null();
        self.domain.clear(HP_SLOT);
        empty
    }

    /// Number of CRQ rings currently linked (diagnostic; racy).
    pub fn ring_count(&self) -> usize {
        let mut count = 0;
        let mut cur = self.head.load(Ordering::SeqCst);
        while !cur.is_null() {
            count += 1;
            // SAFETY: only used in quiescent diagnostics/tests; racing
            // reclamation could invalidate this walk in live use.
            cur = unsafe { (*cur).next.load(Ordering::SeqCst) };
        }
        count
    }
}

impl<P: FaaPolicy> Default for LcrqGeneric<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: FaaPolicy> core::fmt::Debug for LcrqGeneric<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Lcrq")
            .field("faa_policy", &P::name())
            .field("ring_order", &self.config.ring_order)
            .field("hierarchical", &self.config.hierarchical.is_some())
            .field("rings", &self.ring_count())
            .field("pooled_rings", &self.pool.len())
            .finish()
    }
}

impl<P: FaaPolicy> FromIterator<u64> for LcrqGeneric<P> {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let q = Self::new();
        for v in iter {
            q.enqueue(v);
        }
        q
    }
}

impl<P: FaaPolicy> Extend<u64> for LcrqGeneric<P> {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        let values: Vec<u64> = iter.into_iter().collect();
        self.enqueue_batch(&values);
    }
}

/// Draining iterator returned by [`LcrqGeneric::drain`].
pub struct Drain<'a, P: FaaPolicy> {
    queue: &'a LcrqGeneric<P>,
}

impl<P: FaaPolicy> Iterator for Drain<'_, P> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        self.queue.dequeue()
    }
}

impl<P: FaaPolicy> LcrqGeneric<P> {
    /// Returns an iterator that dequeues until the queue reports empty.
    /// Safe to use concurrently with other operations (it is just repeated
    /// `dequeue`); it ends at the first linearizable EMPTY it observes.
    pub fn drain(&self) -> Drain<'_, P> {
        Drain { queue: self }
    }
}

impl<P: FaaPolicy> Drop for LcrqGeneric<P> {
    fn drop(&mut self) {
        // Exclusive access: free the whole ring chain. A ring is reachable
        // here *or* from the pool, never both — pooled rings had their
        // `next` nulled by scrubbing (it then only ever links other pooled
        // rings), and chain rings are by definition not yet retired — so
        // the chain walk and the pool's own drop cannot double-free.
        // Rings retired earlier but not yet reclaimed are dispatched when
        // `domain` drops (before `pool`, see field order): each is either
        // parked in the pool and freed by the pool's drop, or freed
        // directly when the pool is already full.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access in drop.
            let ring = unsafe { Box::from_raw(cur) };
            cur = ring.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: the queue transfers plain u64 values; all structure is atomic.
unsafe impl<P: FaaPolicy> Send for LcrqGeneric<P> {}
unsafe impl<P: FaaPolicy> Sync for LcrqGeneric<P> {}

impl<P: FaaPolicy> lcrq_queues::ConcurrentQueue for LcrqGeneric<P> {
    fn enqueue(&self, value: u64) {
        LcrqGeneric::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        LcrqGeneric::dequeue(self)
    }
    // Native overrides: one F&A reserves the whole batch's indices instead
    // of the default scalar loop's one F&A per item.
    fn enqueue_batch(&self, values: &[u64]) {
        LcrqGeneric::enqueue_batch(self, values)
    }
    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        LcrqGeneric::dequeue_batch(self, out, max)
    }
    fn name(&self) -> &'static str {
        match (P::name(), self.config.hierarchical.is_some()) {
            ("faa", false) => "lcrq",
            ("faa", true) => "lcrq+h",
            ("cas-loop", false) => "lcrq-cas",
            ("cas-loop", true) => "lcrq-cas+h",
            _ => "lcrq-custom",
        }
    }
    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: FaaPolicy> lcrq_queues::ClosableQueue for LcrqGeneric<P> {
    fn close(&self) -> bool {
        LcrqGeneric::close(self)
    }
    fn is_closed(&self) -> bool {
        LcrqGeneric::is_closed(self)
    }
    fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        LcrqGeneric::try_enqueue(self, value)
    }
    // Native override: surfaces a refused ring allocation as
    // `AllocFailed` instead of the default's retry-until-closed.
    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        LcrqGeneric::try_enqueue_fallible(self, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchicalConfig;
    use lcrq_queues::testing;

    fn tiny() -> LcrqConfig {
        LcrqConfig::new().with_ring_order(3) // R = 8: force frequent closes
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = Lcrq::new();
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty_hint());
    }

    #[test]
    fn fifo_order_sequential() {
        let q = Lcrq::new();
        for i in 0..500 {
            q.enqueue(i);
        }
        for i in 0..500 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn overflowing_one_ring_spills_into_new_rings_in_order() {
        let q = Lcrq::with_config(tiny()); // R = 8
        for i in 0..1_000 {
            q.enqueue(i);
        }
        assert!(q.ring_count() > 1, "tiny rings must have spilled");
        for i in 0..1_000 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drained_queue_is_reusable() {
        let q = Lcrq::with_config(tiny());
        for round in 0..20u64 {
            for i in 0..100 {
                q.enqueue(round * 1_000 + i);
            }
            for i in 0..100 {
                assert_eq!(q.dequeue(), Some(round * 1_000 + i));
            }
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    #[should_panic(expected = "BOTTOM")]
    fn enqueueing_bottom_panics() {
        let q = Lcrq::new();
        q.enqueue(u64::MAX);
    }

    #[test]
    fn max_value_is_enqueueable() {
        let q = Lcrq::new();
        q.enqueue(crate::MAX_VALUE);
        assert_eq!(q.dequeue(), Some(crate::MAX_VALUE));
    }

    #[test]
    fn mpmc_stress_default_ring() {
        let q = Lcrq::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn mpmc_stress_tiny_ring_exercises_ring_switching() {
        let q = Lcrq::with_config(tiny());
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn mpmc_stress_cas_variant() {
        let q = LcrqCas::new();
        testing::mpmc_stress(&q, 4, 4, 5_000);
    }

    #[test]
    fn mpmc_stress_cas_variant_tiny_ring() {
        let q = LcrqCas::with_config(tiny());
        testing::mpmc_stress(&q, 2, 2, 5_000);
    }

    #[test]
    fn mpmc_stress_hierarchical() {
        let cfg = LcrqConfig::new()
            .with_ring_order(6)
            .with_hierarchical(HierarchicalConfig {
                timeout: std::time::Duration::from_micros(50),
            });
        let q = Lcrq::with_config(cfg);
        testing::mpmc_stress(&q, 4, 4, 3_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&Lcrq::with_config(tiny()), 0x1C);
        testing::model_check(&LcrqCas::with_config(tiny()), 0x2C);
    }

    #[test]
    fn pairs_workload_drains() {
        let q = Lcrq::with_config(tiny());
        testing::pairs_smoke(&q, 4, 3_000);
    }

    #[test]
    fn retired_rings_are_reclaimed() {
        // Spill through many rings; the hazard domain must not accumulate
        // them all (threshold scans reclaim in batches).
        let q = Lcrq::with_config(tiny());
        for i in 0..10_000u64 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
        // At most a handful of rings should remain linked.
        assert!(q.ring_count() <= 2, "rings linked: {}", q.ring_count());
    }

    #[test]
    fn names_reflect_variant() {
        use lcrq_queues::ConcurrentQueue as _;
        assert_eq!(Lcrq::new().name(), "lcrq");
        assert_eq!(LcrqCas::new().name(), "lcrq-cas");
        let h =
            Lcrq::with_config(LcrqConfig::new().with_hierarchical(HierarchicalConfig::default()));
        assert_eq!(h.name(), "lcrq+h");
        assert!(h.is_nonblocking());
    }

    #[test]
    fn batch_round_trip_default_ring() {
        let q = Lcrq::new();
        let values: Vec<u64> = (0..500).collect();
        q.enqueue_batch(&values);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 500), 500);
        assert_eq!(out, values);
        assert_eq!(q.dequeue_batch(&mut out, 1), 0, "linearizable EMPTY");
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_spills_across_tiny_rings_in_order() {
        // R = 8 and a 1000-item batch: the tail ring closes mid-batch over
        // a hundred times; every remainder spills into a fresh seeded ring
        // and FIFO order must survive the whole chain.
        let q = Lcrq::with_config(tiny());
        let values: Vec<u64> = (0..1_000).collect();
        q.enqueue_batch(&values);
        assert!(q.ring_count() > 1, "tiny rings must have spilled");
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 2_000), 1_000);
        assert_eq!(out, values);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_dequeue_switches_rings() {
        // Fill across several rings with scalar enqueues, then drain with
        // one big batch dequeue: the scalar fallback inside dequeue_batch
        // must retire exhausted rings (erratum double-check included) and
        // resume bulk reservations on the next ring.
        let q = Lcrq::with_config(tiny());
        for i in 0..300 {
            q.enqueue(i);
        }
        let before = q.ring_count();
        assert!(before > 1);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 300), 300);
        assert_eq!(out, (0..300).collect::<Vec<u64>>());
        assert!(q.ring_count() <= before);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_and_scalar_interleave_across_rings() {
        let q = Lcrq::with_config(tiny());
        q.enqueue(0);
        q.enqueue_batch(&(1..50).collect::<Vec<u64>>());
        q.enqueue(50);
        q.enqueue_batch(&(51..100).collect::<Vec<u64>>());
        let mut out = Vec::new();
        out.push(q.dequeue().unwrap());
        q.dequeue_batch(&mut out, 70);
        while let Some(v) = q.dequeue() {
            out.push(v);
        }
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn batch_dequeue_max_zero_is_a_no_op() {
        let q = Lcrq::new();
        q.enqueue(1);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 0), 0);
        assert!(out.is_empty());
        assert_eq!(q.dequeue(), Some(1));
    }

    #[test]
    #[should_panic(expected = "BOTTOM")]
    fn batch_enqueueing_bottom_panics_before_any_placement() {
        let q = Lcrq::new();
        q.enqueue_batch(&[1, u64::MAX]);
    }

    #[test]
    fn batch_methods_reachable_through_the_trait() {
        use lcrq_queues::ConcurrentQueue;
        let q: Box<dyn ConcurrentQueue> = Box::new(Lcrq::with_config(tiny()));
        q.enqueue_batch(&[1, 2, 3]);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 8), 3);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn mpmc_batch_stress_tiny_ring() {
        // Batch producers vs batch consumers over constantly-closing rings:
        // no loss, no duplication, per-producer order.
        let q = Lcrq::with_config(tiny());
        let q = &q;
        let producers = 3u64;
        let per = 2_000u64; // items per producer, in batches of 16
        let done = std::sync::atomic::AtomicU64::new(0);
        let done = &done;
        let streams: Vec<Vec<u64>> = std::thread::scope(|s| {
            for p in 0..producers {
                s.spawn(move || {
                    let mut i = 0;
                    while i < per {
                        let n = 16.min(per - i);
                        let vals: Vec<u64> = (i..i + n).map(|v| (p << 40) | v).collect();
                        q.enqueue_batch(&vals);
                        i += n;
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let n = q.dequeue_batch(&mut got, 16);
                            if n == 0 {
                                if done.load(Ordering::SeqCst) == producers {
                                    // EMPTY linearized after the flag read:
                                    // one more look, then we are done.
                                    if q.dequeue_batch(&mut got, 16) == 0 {
                                        break;
                                    }
                                } else {
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = streams.iter().flatten().copied().collect();
        assert_eq!(all.len() as u64, producers * per, "lost items");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, producers * per, "duplicates!");
        for stream in &streams {
            let mut last = std::collections::HashMap::new();
            for &v in stream {
                let (p, i) = (v >> 40, v & ((1 << 40) - 1));
                if let Some(&prev) = last.get(&p) {
                    assert!(i > prev, "per-producer order violated");
                }
                last.insert(p, i);
            }
        }
    }

    #[test]
    fn close_fences_enqueues_but_drains_existing_items() {
        let q = Lcrq::with_config(tiny());
        for i in 0..100 {
            q.enqueue(i);
        }
        assert!(!q.is_closed());
        assert!(q.close(), "first close reports the transition");
        assert!(q.is_closed());
        assert!(!q.close(), "second close is a no-op");
        assert_eq!(q.try_enqueue(777), Err(777));
        assert_eq!(q.try_enqueue_batch(&[1, 2, 3]), Err(0));
        // Everything placed before the close drains in order.
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    #[should_panic(expected = "closed")]
    fn enqueue_after_close_panics() {
        let q = Lcrq::new();
        q.close();
        q.enqueue(1);
    }

    #[test]
    #[should_panic(expected = "closed")]
    fn enqueue_batch_after_close_panics() {
        let q = Lcrq::new();
        q.close();
        q.enqueue_batch(&[1, 2]);
    }

    #[test]
    fn close_races_with_producers_without_losing_items() {
        // Producers try_enqueue until fenced; whatever they successfully
        // placed must be drained exactly once — no loss, no duplicates.
        for _ in 0..20 {
            let q = Lcrq::with_config(tiny());
            let q = &q;
            let sent: Vec<Vec<u64>> = std::thread::scope(|s| {
                let producers: Vec<_> = (0..3u64)
                    .map(|p| {
                        s.spawn(move || {
                            let mut placed = Vec::new();
                            for i in 0..10_000u64 {
                                let v = (p << 40) | i;
                                if q.try_enqueue(v).is_err() {
                                    break;
                                }
                                placed.push(v);
                            }
                            placed
                        })
                    })
                    .collect();
                std::thread::yield_now();
                q.close();
                producers.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut expected: Vec<u64> = sent.into_iter().flatten().collect();
            let mut got: Vec<u64> = q.drain().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected, "close lost or duplicated items");
        }
    }

    #[test]
    fn dequeue_empty_is_never_transient() {
        // Regression guard for the channel's poll-then-park protocol (the
        // ISSUE 2 dequeue-empty audit): a queue that provably holds an item
        // must never report None, even while the head ring is being
        // exhausted and switched (where the December-2013 erratum
        // double-check is what prevents a transient-empty report).
        let q = Lcrq::with_config(tiny()); // R = 8: maximal ring churn
        for i in 0..5_000u64 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i), "transient empty at item {i}");
        }
        // Same property with a standing backlog straddling ring boundaries.
        for i in 0..64u64 {
            q.enqueue(i);
        }
        for i in 64..5_000u64 {
            q.enqueue(i);
            assert!(q.dequeue().is_some(), "transient empty with backlog");
        }
        for _ in 0..64 {
            assert!(q.dequeue().is_some());
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn closable_trait_object_round_trip() {
        use lcrq_queues::ClosableQueue;
        let q = Lcrq::with_config(tiny());
        let q: &dyn ClosableQueue = &q;
        assert_eq!(q.try_enqueue(9), Ok(()));
        assert!(q.close());
        assert!(q.is_closed());
        assert_eq!(q.try_enqueue(10), Err(10));
        assert_eq!(q.dequeue(), Some(9));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drop_with_items_across_rings_is_clean() {
        let q = Lcrq::with_config(tiny());
        for i in 0..500 {
            q.enqueue(i);
        }
        drop(q);
    }

    #[test]
    fn from_iterator_and_drain_round_trip() {
        let q: Lcrq = (0..100u64).collect();
        let out: Vec<u64> = q.drain().collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn extend_appends_in_order() {
        let mut q = Lcrq::new();
        q.enqueue(0);
        q.extend(1..5u64);
        let out: Vec<u64> = q.drain().collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn debug_output_names_the_variant() {
        let q = LcrqCas::new();
        let text = format!("{q:?}");
        assert!(text.contains("cas-loop"), "{text}");
        assert!(text.contains("rings"), "{text}");
    }

    #[test]
    fn cluster_gate_waits_once_then_owns_the_ring() {
        // The LCRQ+H gate must only pay its timeout when the ring's cluster
        // field is foreign; after seizing it, same-cluster operations enter
        // immediately. With a 40 ms timeout, 100 ops must take ~1 timeout,
        // not ~100.
        use lcrq_util::topology::set_current_cluster;
        let timeout = std::time::Duration::from_millis(40);
        let q =
            Lcrq::with_config(LcrqConfig::new().with_hierarchical(HierarchicalConfig { timeout }));
        set_current_cluster(2); // ring starts owned by cluster 0
        let start = std::time::Instant::now();
        for i in 0..100 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
        let elapsed = start.elapsed();
        set_current_cluster(0);
        assert!(
            elapsed < timeout * 3,
            "gate should wait at most once, took {elapsed:?}"
        );
        assert!(
            elapsed >= timeout,
            "first foreign-cluster op should wait the timeout, took {elapsed:?}"
        );
    }

    #[test]
    fn hierarchical_disabled_never_waits() {
        use lcrq_util::topology::set_current_cluster;
        let q = Lcrq::new(); // no hierarchical config
        set_current_cluster(5);
        let start = std::time::Instant::now();
        for i in 0..100 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
        set_current_cluster(0);
        assert!(start.elapsed() < std::time::Duration::from_millis(100));
    }

    #[test]
    fn enqueues_make_progress_while_dequeuers_return_empty() {
        // Op-wise nonblocking smoke: dequeuers hammering an empty queue must
        // not prevent enqueues from completing (contrast with the infinite
        // array queue's livelock).
        let q = Lcrq::with_config(tiny());
        let q = &q;
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = q.dequeue();
                    }
                });
            }
            for i in 0..2_000u64 {
                q.enqueue(i);
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Every enqueued item was either dequeued by the hammerers or is
        // still present; drain the rest — the multiset property is covered
        // by mpmc_stress, here we only assert completion (no hang).
    }
}
