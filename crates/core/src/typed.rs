//! A generic typed facade over the raw `u64` LCRQ.
//!
//! The paper's queue transfers 64-bit integers or pointers (Figure 3a,
//! "val: 64 bits (int or pointer)"). [`TypedLcrq<T>`] takes the pointer
//! route: values are boxed and the queue moves the box address, so any
//! `Send` type rides the same lock-free fast path.

use core::marker::PhantomData;

use lcrq_atomic::{FaaPolicy, HardwareFaa};

use crate::config::LcrqConfig;
use crate::lcrq::LcrqGeneric;

/// An unbounded, linearizable, op-wise nonblocking MPMC FIFO queue of `T`.
///
/// ```
/// use lcrq_core::TypedLcrq;
/// let q: TypedLcrq<String> = TypedLcrq::new();
/// q.enqueue("hello".to_string());
/// q.enqueue("world".to_string());
/// assert_eq!(q.dequeue().as_deref(), Some("hello"));
/// assert_eq!(q.dequeue().as_deref(), Some("world"));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct TypedLcrq<T: Send, P: FaaPolicy = HardwareFaa> {
    inner: LcrqGeneric<P>,
    _marker: PhantomData<T>,
}

impl<T: Send, P: FaaPolicy> TypedLcrq<T, P> {
    /// Creates an empty queue with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LcrqConfig::default())
    }

    /// Creates an empty queue with an explicit configuration.
    pub fn with_config(config: LcrqConfig) -> Self {
        Self {
            inner: LcrqGeneric::with_config(config),
            _marker: PhantomData,
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: T) {
        let ptr = Box::into_raw(Box::new(value)) as u64;
        debug_assert!(ptr < crate::BOTTOM && ptr != 0);
        self.inner.enqueue(ptr);
    }

    /// Removes and returns the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.dequeue().map(|ptr| {
            // SAFETY: every value in the queue is a Box::into_raw'd `T` that
            // is handed out exactly once (queue items are dequeued exactly
            // once by linearizability).
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }

    /// Appends `value` unless the queue has been [`close`](Self::close)d,
    /// in which case ownership is handed back as `Err(value)`.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        let raw = Box::into_raw(Box::new(value));
        debug_assert!((raw as u64) < crate::BOTTOM && !raw.is_null());
        self.inner.try_enqueue(raw as u64).map_err(|ptr| {
            // SAFETY: the queue rejected the pointer, so we still own the
            // box we just created.
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }

    /// Batch counterpart of [`try_enqueue`](Self::try_enqueue): appends
    /// every value of `values` through the raw batch path, or — if the
    /// queue is closed partway — returns the **unplaced suffix** as
    /// `Err(remainder)`. Items of the placed prefix are in the queue and
    /// will be drained by receivers like any others.
    pub fn try_extend(&self, values: Vec<T>) -> Result<(), Vec<T>> {
        let ptrs: Vec<u64> = values
            .into_iter()
            .map(|value| {
                let ptr = Box::into_raw(Box::new(value)) as u64;
                debug_assert!(ptr < crate::BOTTOM && ptr != 0);
                ptr
            })
            .collect();
        match self.inner.try_enqueue_batch(&ptrs) {
            Ok(()) => Ok(()),
            Err(placed) => Err(ptrs[placed..]
                .iter()
                .map(|&ptr| {
                    // SAFETY: slots past `placed` were never enqueued; we
                    // still own those boxes.
                    *unsafe { Box::from_raw(ptr as *mut T) }
                })
                .collect()),
        }
    }

    /// Closes the queue for further enqueues (see [`LcrqGeneric::close`]):
    /// [`try_enqueue`](Self::try_enqueue) starts failing while dequeues
    /// drain the remaining items. Returns `true` on the first call.
    pub fn close(&self) -> bool {
        self.inner.close()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    /// Whether the queue appears empty (racy snapshot; see
    /// [`LcrqGeneric::is_empty_hint`]).
    pub fn is_empty_hint(&self) -> bool {
        self.inner.is_empty_hint()
    }

    /// Appends every value of `iter` through the raw batch path: all values
    /// are boxed up front, then their addresses enter the queue via
    /// multi-slot reservations ([`LcrqGeneric::enqueue_batch`]) — one
    /// fetch-and-add per reservation instead of one per item.
    ///
    /// Like the raw batch, this is a sequence of individual enqueues in
    /// iterator order, not an atomic group (see DESIGN.md "Batched
    /// operations"). Takes `&self`: concurrent callers are fine.
    pub fn extend<I: IntoIterator<Item = T>>(&self, iter: I) {
        let ptrs: Vec<u64> = iter
            .into_iter()
            .map(|value| {
                let ptr = Box::into_raw(Box::new(value)) as u64;
                debug_assert!(ptr < crate::BOTTOM && ptr != 0);
                ptr
            })
            .collect();
        self.inner.enqueue_batch(&ptrs);
    }

    /// Removes up to `max` of the oldest values, appending them to `out` in
    /// FIFO order through the raw batch path
    /// ([`LcrqGeneric::dequeue_batch`]); returns how many were moved.
    /// A return `< max` is a linearizable EMPTY observation.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut ptrs = Vec::with_capacity(max.min(1024));
        let taken = self.inner.dequeue_batch(&mut ptrs, max);
        out.reserve(taken);
        for ptr in ptrs {
            // SAFETY: as in `dequeue`, each pointer is a Box::into_raw'd `T`
            // handed out exactly once.
            out.push(*unsafe { Box::from_raw(ptr as *mut T) });
        }
        taken
    }
}

impl<T: Send, P: FaaPolicy> Default for TypedLcrq<T, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, P: FaaPolicy> core::fmt::Debug for TypedLcrq<T, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TypedLcrq")
            .field("value_type", &core::any::type_name::<T>())
            .finish()
    }
}

impl<T: Send, P: FaaPolicy> FromIterator<T> for TypedLcrq<T, P> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let q = Self::new();
        q.extend(iter);
        q
    }
}

impl<T: Send, P: FaaPolicy> Extend<T> for TypedLcrq<T, P> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        TypedLcrq::extend(self, iter);
    }
}

/// Draining iterator returned by [`TypedLcrq::drain`].
pub struct Drain<'a, T: Send, P: FaaPolicy> {
    queue: &'a TypedLcrq<T, P>,
}

impl<T: Send, P: FaaPolicy> Iterator for Drain<'_, T, P> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.queue.dequeue()
    }
}

impl<T: Send, P: FaaPolicy> TypedLcrq<T, P> {
    /// Returns an iterator that dequeues until the queue reports empty.
    pub fn drain(&self) -> Drain<'_, T, P> {
        Drain { queue: self }
    }
}

impl<T: Send, P: FaaPolicy> Drop for TypedLcrq<T, P> {
    fn drop(&mut self) {
        // Drain and drop any remaining boxed values before the rings go.
        while self.dequeue().is_some() {}
    }
}

// SAFETY: the queue owns boxed `T` values in transit; handing them across
// threads requires `T: Send` (already bounded on the struct).
unsafe impl<T: Send, P: FaaPolicy> Send for TypedLcrq<T, P> {}
unsafe impl<T: Send, P: FaaPolicy> Sync for TypedLcrq<T, P> {}

/// The typed facade over the portable SCQ-based [`LscqGeneric`]: boxed
/// values ride the single-word-CAS fast path exactly as [`TypedLcrq`]
/// values ride the CAS2 one (the box address goes through the [`ScqD`]
/// index indirection like any other `u64`).
///
/// ```
/// use lcrq_core::TypedLscq;
/// let q: TypedLscq<String> = TypedLscq::new();
/// q.enqueue("hello".to_string());
/// assert_eq!(q.dequeue().as_deref(), Some("hello"));
/// assert_eq!(q.dequeue(), None);
/// ```
///
/// [`LscqGeneric`]: crate::LscqGeneric
/// [`ScqD`]: crate::ScqD
pub struct TypedLscq<T: Send, P: FaaPolicy = HardwareFaa> {
    inner: crate::lscq::LscqGeneric<P>,
    _marker: PhantomData<T>,
}

impl<T: Send, P: FaaPolicy> TypedLscq<T, P> {
    /// Creates an empty queue with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LcrqConfig::default())
    }

    /// Creates an empty queue with an explicit configuration.
    pub fn with_config(config: LcrqConfig) -> Self {
        Self {
            inner: crate::lscq::LscqGeneric::with_config(config),
            _marker: PhantomData,
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: T) {
        let ptr = Box::into_raw(Box::new(value)) as u64;
        debug_assert!(ptr < crate::BOTTOM && ptr != 0);
        self.inner.enqueue(ptr);
    }

    /// Removes and returns the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.dequeue().map(|ptr| {
            // SAFETY: every value in the queue is a Box::into_raw'd `T`
            // handed out exactly once by linearizability.
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }

    /// Appends `value` unless the queue has been [`close`](Self::close)d,
    /// in which case ownership is handed back as `Err(value)`.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        let raw = Box::into_raw(Box::new(value));
        debug_assert!((raw as u64) < crate::BOTTOM && !raw.is_null());
        self.inner.try_enqueue(raw as u64).map_err(|ptr| {
            // SAFETY: the queue rejected the pointer; we still own the box.
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }

    /// Appends every value of `iter` (scalar enqueues — SCQ has no
    /// multi-slot reservation path). Takes `&self`: concurrent callers are
    /// fine.
    pub fn extend<I: IntoIterator<Item = T>>(&self, iter: I) {
        for value in iter {
            self.enqueue(value);
        }
    }

    /// Closes the queue for further enqueues:
    /// [`try_enqueue`](Self::try_enqueue) starts failing while dequeues
    /// drain the remaining items. Returns `true` on the first call.
    pub fn close(&self) -> bool {
        self.inner.close()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    /// Whether the queue appears empty (racy snapshot).
    pub fn is_empty_hint(&self) -> bool {
        self.inner.is_empty_hint()
    }

    /// Returns an iterator that dequeues until the queue reports empty.
    pub fn drain(&self) -> LscqDrain<'_, T, P> {
        LscqDrain { queue: self }
    }
}

impl<T: Send, P: FaaPolicy> Default for TypedLscq<T, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, P: FaaPolicy> core::fmt::Debug for TypedLscq<T, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TypedLscq")
            .field("value_type", &core::any::type_name::<T>())
            .finish()
    }
}

impl<T: Send, P: FaaPolicy> FromIterator<T> for TypedLscq<T, P> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let q = Self::new();
        q.extend(iter);
        q
    }
}

impl<T: Send, P: FaaPolicy> Extend<T> for TypedLscq<T, P> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        TypedLscq::extend(self, iter);
    }
}

/// Draining iterator returned by [`TypedLscq::drain`].
pub struct LscqDrain<'a, T: Send, P: FaaPolicy> {
    queue: &'a TypedLscq<T, P>,
}

impl<T: Send, P: FaaPolicy> Iterator for LscqDrain<'_, T, P> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.queue.dequeue()
    }
}

impl<T: Send, P: FaaPolicy> Drop for TypedLscq<T, P> {
    fn drop(&mut self) {
        // Drain and drop any remaining boxed values before the rings go.
        while self.dequeue().is_some() {}
    }
}

// SAFETY: the queue owns boxed `T` values in transit; handing them across
// threads requires `T: Send` (already bounded on the struct).
unsafe impl<T: Send, P: FaaPolicy> Send for TypedLscq<T, P> {}
unsafe impl<T: Send, P: FaaPolicy> Sync for TypedLscq<T, P> {}

/// The typed facade over the wait-free [`WcqGeneric`]: boxed values ride
/// the helped fast path exactly as [`TypedLscq`] values ride the SCQ one,
/// so channels and other `T`-valued layers inherit the bounded-steps
/// progress class.
///
/// ```
/// use lcrq_core::TypedWcq;
/// let q: TypedWcq<String> = TypedWcq::new();
/// q.enqueue("hello".to_string());
/// assert_eq!(q.dequeue().as_deref(), Some("hello"));
/// assert_eq!(q.dequeue(), None);
/// ```
///
/// [`WcqGeneric`]: crate::WcqGeneric
pub struct TypedWcq<T: Send, P: FaaPolicy = HardwareFaa> {
    inner: crate::wcq::WcqGeneric<P>,
    _marker: PhantomData<T>,
}

impl<T: Send, P: FaaPolicy> TypedWcq<T, P> {
    /// Creates an empty queue with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LcrqConfig::default())
    }

    /// Creates an empty queue with an explicit configuration.
    pub fn with_config(config: LcrqConfig) -> Self {
        Self {
            inner: crate::wcq::WcqGeneric::with_config(config),
            _marker: PhantomData,
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: T) {
        let ptr = Box::into_raw(Box::new(value)) as u64;
        debug_assert!(ptr < crate::BOTTOM && ptr != 0);
        self.inner.enqueue(ptr);
    }

    /// Removes and returns the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.dequeue().map(|ptr| {
            // SAFETY: every value in the queue is a Box::into_raw'd `T`
            // handed out exactly once by linearizability.
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }

    /// Appends `value` unless the queue has been [`close`](Self::close)d,
    /// in which case ownership is handed back as `Err(value)`.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        let raw = Box::into_raw(Box::new(value));
        debug_assert!((raw as u64) < crate::BOTTOM && !raw.is_null());
        self.inner.try_enqueue(raw as u64).map_err(|ptr| {
            // SAFETY: the queue rejected the pointer; we still own the box.
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }

    /// Appends every value of `iter` (scalar enqueues — wCQ has no
    /// multi-slot reservation path). Takes `&self`: concurrent callers are
    /// fine.
    pub fn extend<I: IntoIterator<Item = T>>(&self, iter: I) {
        for value in iter {
            self.enqueue(value);
        }
    }

    /// Batch counterpart of [`try_enqueue`](Self::try_enqueue): appends
    /// every value of `values` in order, or — if the queue closes partway —
    /// returns the **unplaced suffix** as `Err(remainder)`. wCQ has no
    /// multi-slot reservation, so this is a sequence of scalar enqueues;
    /// the placed prefix is in the queue and drains normally.
    pub fn try_extend(&self, values: Vec<T>) -> Result<(), Vec<T>> {
        let mut it = values.into_iter();
        while let Some(value) = it.next() {
            if let Err(v) = self.try_enqueue(value) {
                let mut rest = vec![v];
                rest.extend(it);
                return Err(rest);
            }
        }
        Ok(())
    }

    /// Closes the queue for further enqueues:
    /// [`try_enqueue`](Self::try_enqueue) starts failing while dequeues
    /// drain the remaining items. Returns `true` on the first call.
    pub fn close(&self) -> bool {
        self.inner.close()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    /// Whether the queue appears empty (racy snapshot).
    pub fn is_empty_hint(&self) -> bool {
        self.inner.is_empty_hint()
    }

    /// Removes up to `max` of the oldest values, appending them to `out` in
    /// FIFO order; returns how many were moved. A return `< max` is a
    /// linearizable EMPTY observation (scalar dequeues — each one is its
    /// own linearization point).
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.dequeue() {
                Some(v) => {
                    out.push(v);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Returns an iterator that dequeues until the queue reports empty.
    pub fn drain(&self) -> WcqTypedDrain<'_, T, P> {
        WcqTypedDrain { queue: self }
    }
}

impl<T: Send, P: FaaPolicy> Default for TypedWcq<T, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, P: FaaPolicy> core::fmt::Debug for TypedWcq<T, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TypedWcq")
            .field("value_type", &core::any::type_name::<T>())
            .finish()
    }
}

impl<T: Send, P: FaaPolicy> FromIterator<T> for TypedWcq<T, P> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let q = Self::new();
        q.extend(iter);
        q
    }
}

impl<T: Send, P: FaaPolicy> Extend<T> for TypedWcq<T, P> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        TypedWcq::extend(self, iter);
    }
}

/// Draining iterator returned by [`TypedWcq::drain`].
pub struct WcqTypedDrain<'a, T: Send, P: FaaPolicy> {
    queue: &'a TypedWcq<T, P>,
}

impl<T: Send, P: FaaPolicy> Iterator for WcqTypedDrain<'_, T, P> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.queue.dequeue()
    }
}

impl<T: Send, P: FaaPolicy> Drop for TypedWcq<T, P> {
    fn drop(&mut self) {
        // Drain and drop any remaining boxed values before the rings go.
        while self.dequeue().is_some() {}
    }
}

// SAFETY: the queue owns boxed `T` values in transit; handing them across
// threads requires `T: Send` (already bounded on the struct).
unsafe impl<T: Send, P: FaaPolicy> Send for TypedWcq<T, P> {}
unsafe impl<T: Send, P: FaaPolicy> Sync for TypedWcq<T, P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_of_strings() {
        let q: TypedLcrq<String> = TypedLcrq::new();
        for i in 0..100 {
            q.enqueue(format!("item-{i}"));
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(format!("item-{i}")));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn zero_sized_types_work() {
        // Box<()> still yields a unique-ish dangling pointer; ensure the
        // round trip works and nothing is lost.
        let q: TypedLcrq<()> = TypedLcrq::new();
        q.enqueue(());
        q.enqueue(());
        assert_eq!(q.dequeue(), Some(()));
        assert_eq!(q.dequeue(), Some(()));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let q: TypedLcrq<Counted> = TypedLcrq::new();
        for _ in 0..50 {
            q.enqueue(Counted(Arc::clone(&drops)));
        }
        for _ in 0..20 {
            drop(q.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 20);
        drop(q); // remaining 30 freed by the queue's Drop
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn from_iterator_extend_and_drain() {
        let q: TypedLcrq<String> = ["a", "b"].into_iter().map(String::from).collect();
        q.extend(["c".to_string()]);
        let out: Vec<String> = q.drain().collect();
        assert_eq!(out, vec!["a", "b", "c"]);
        assert!(format!("{q:?}").contains("String"));
    }

    #[test]
    fn extend_and_drain_into_round_trip_through_the_batch_path() {
        let q: TypedLcrq<String> = TypedLcrq::new();
        q.extend((0..100).map(|i| format!("item-{i}"))); // &self: no mut
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 30), 30);
        assert_eq!(q.drain_into(&mut out, 1_000), 70, "short return = EMPTY");
        let expected: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        assert_eq!(out, expected);
        assert_eq!(q.drain_into(&mut out, 1), 0);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn extend_spills_across_tiny_rings() {
        let q: TypedLcrq<u32> = TypedLcrq::with_config(LcrqConfig::new().with_ring_order(3));
        q.extend(0..500u32);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 500), 500);
        assert_eq!(out, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn drain_into_appends_after_existing_contents() {
        let q: TypedLcrq<u8> = TypedLcrq::new();
        q.extend([10, 11]);
        let mut out = vec![9];
        assert_eq!(q.drain_into(&mut out, 5), 2);
        assert_eq!(out, vec![9, 10, 11]);
    }

    #[test]
    fn batch_moved_values_drop_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let q: TypedLcrq<Counted> = TypedLcrq::new();
        q.extend((0..50).map(|_| Counted(Arc::clone(&drops))));
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 20), 20);
        drop(out); // 20 drained values dropped here
        assert_eq!(drops.load(Ordering::SeqCst), 20);
        drop(q); // remaining 30 freed by the queue's Drop
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn close_returns_ownership_and_drains_in_order() {
        let q: TypedLcrq<String> = TypedLcrq::new();
        assert_eq!(q.try_enqueue("a".into()), Ok(()));
        q.extend(["b".to_string(), "c".to_string()]);
        assert!(q.close());
        assert!(q.is_closed());
        assert!(!q.close());
        assert_eq!(q.try_enqueue("x".to_string()), Err("x".to_string()));
        let rejected = q
            .try_extend(vec!["y".to_string(), "z".to_string()])
            .unwrap_err();
        assert_eq!(rejected, vec!["y".to_string(), "z".to_string()]);
        let drained: Vec<String> = q.drain().collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
    }

    #[test]
    fn rejected_values_drop_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let q: TypedLcrq<Counted> = TypedLcrq::new();
        q.enqueue(Counted(Arc::clone(&drops)));
        q.close();
        // Rejected scalar and batch values come back still owned; dropping
        // them must free each exactly once.
        drop(q.try_enqueue(Counted(Arc::clone(&drops))).unwrap_err());
        let rejected = q
            .try_extend((0..5).map(|_| Counted(Arc::clone(&drops))).collect())
            .unwrap_err();
        assert_eq!(rejected.len(), 5);
        drop(rejected);
        assert_eq!(drops.load(Ordering::SeqCst), 6);
        drop(q); // the one enqueued value freed by the queue's Drop
        assert_eq!(drops.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn lscq_fifo_of_strings() {
        let q: TypedLscq<String> = TypedLscq::with_config(LcrqConfig::new().with_ring_order(3));
        for i in 0..100 {
            q.enqueue(format!("item-{i}"));
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(format!("item-{i}")));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn lscq_values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let q: TypedLscq<Counted> = TypedLscq::with_config(LcrqConfig::new().with_ring_order(2));
        for _ in 0..50 {
            q.enqueue(Counted(Arc::clone(&drops)));
        }
        for _ in 0..20 {
            drop(q.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 20);
        drop(q); // remaining 30 freed by the queue's Drop
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn lscq_close_returns_ownership_and_drains_in_order() {
        let q: TypedLscq<String> = TypedLscq::new();
        assert_eq!(q.try_enqueue("a".into()), Ok(()));
        q.extend(["b".to_string(), "c".to_string()]);
        assert!(q.close());
        assert!(q.is_closed());
        assert_eq!(q.try_enqueue("x".to_string()), Err("x".to_string()));
        let drained: Vec<String> = q.drain().collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
        assert!(format!("{q:?}").contains("String"));
    }

    #[test]
    fn wcq_fifo_of_strings() {
        let q: TypedWcq<String> = TypedWcq::with_config(LcrqConfig::new().with_ring_order(3));
        for i in 0..100 {
            q.enqueue(format!("item-{i}"));
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(format!("item-{i}")));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn wcq_values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let q: TypedWcq<Counted> = TypedWcq::with_config(LcrqConfig::new().with_ring_order(2));
        for _ in 0..50 {
            q.enqueue(Counted(Arc::clone(&drops)));
        }
        for _ in 0..20 {
            drop(q.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 20);
        drop(q); // remaining 30 freed by the queue's Drop
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn wcq_close_returns_ownership_and_drains_in_order() {
        let q: TypedWcq<String> = TypedWcq::new();
        assert_eq!(q.try_enqueue("a".into()), Ok(()));
        q.extend(["b".to_string(), "c".to_string()]);
        assert!(q.close());
        assert!(q.is_closed());
        assert_eq!(q.try_enqueue("x".to_string()), Err("x".to_string()));
        let drained: Vec<String> = q.drain().collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
        assert!(format!("{q:?}").contains("String"));
    }

    #[test]
    fn mpmc_stress_typed() {
        let q: Arc<TypedLcrq<(usize, u64)>> =
            Arc::new(TypedLcrq::with_config(LcrqConfig::new().with_ring_order(4)));
        let producers = 3usize;
        let per = 3_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.enqueue((p, i));
                    }
                })
            })
            .collect();
        let total = producers as u64 * per;
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = 0;
                let mut last = [None; 8];
                while got < total {
                    if let Some((p, i)) = q.dequeue() {
                        if let Some(prev) = last[p] {
                            assert!(i > prev);
                        }
                        last[p] = Some(i);
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        consumer.join().unwrap();
        assert!(q.dequeue().is_none());
    }
}
