//! A generic typed facade over the raw `u64` LCRQ.
//!
//! The paper's queue transfers 64-bit integers or pointers (Figure 3a,
//! "val: 64 bits (int or pointer)"). [`TypedLcrq<T>`] takes the pointer
//! route: values are boxed and the queue moves the box address, so any
//! `Send` type rides the same lock-free fast path.

use core::marker::PhantomData;

use lcrq_atomic::{FaaPolicy, HardwareFaa};

use crate::config::LcrqConfig;
use crate::lcrq::LcrqGeneric;

/// An unbounded, linearizable, op-wise nonblocking MPMC FIFO queue of `T`.
///
/// ```
/// use lcrq_core::TypedLcrq;
/// let q: TypedLcrq<String> = TypedLcrq::new();
/// q.enqueue("hello".to_string());
/// q.enqueue("world".to_string());
/// assert_eq!(q.dequeue().as_deref(), Some("hello"));
/// assert_eq!(q.dequeue().as_deref(), Some("world"));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct TypedLcrq<T: Send, P: FaaPolicy = HardwareFaa> {
    inner: LcrqGeneric<P>,
    _marker: PhantomData<T>,
}

impl<T: Send, P: FaaPolicy> TypedLcrq<T, P> {
    /// Creates an empty queue with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LcrqConfig::default())
    }

    /// Creates an empty queue with an explicit configuration.
    pub fn with_config(config: LcrqConfig) -> Self {
        Self {
            inner: LcrqGeneric::with_config(config),
            _marker: PhantomData,
        }
    }

    /// Appends `value`.
    pub fn enqueue(&self, value: T) {
        let ptr = Box::into_raw(Box::new(value)) as u64;
        debug_assert!(ptr < crate::BOTTOM && ptr != 0);
        self.inner.enqueue(ptr);
    }

    /// Removes and returns the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.dequeue().map(|ptr| {
            // SAFETY: every value in the queue is a Box::into_raw'd `T` that
            // is handed out exactly once (queue items are dequeued exactly
            // once by linearizability).
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }
}

impl<T: Send, P: FaaPolicy> Default for TypedLcrq<T, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, P: FaaPolicy> core::fmt::Debug for TypedLcrq<T, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TypedLcrq")
            .field("value_type", &core::any::type_name::<T>())
            .finish()
    }
}

impl<T: Send, P: FaaPolicy> FromIterator<T> for TypedLcrq<T, P> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let q = Self::new();
        for v in iter {
            q.enqueue(v);
        }
        q
    }
}

impl<T: Send, P: FaaPolicy> Extend<T> for TypedLcrq<T, P> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.enqueue(v);
        }
    }
}

/// Draining iterator returned by [`TypedLcrq::drain`].
pub struct Drain<'a, T: Send, P: FaaPolicy> {
    queue: &'a TypedLcrq<T, P>,
}

impl<T: Send, P: FaaPolicy> Iterator for Drain<'_, T, P> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.queue.dequeue()
    }
}

impl<T: Send, P: FaaPolicy> TypedLcrq<T, P> {
    /// Returns an iterator that dequeues until the queue reports empty.
    pub fn drain(&self) -> Drain<'_, T, P> {
        Drain { queue: self }
    }
}

impl<T: Send, P: FaaPolicy> Drop for TypedLcrq<T, P> {
    fn drop(&mut self) {
        // Drain and drop any remaining boxed values before the rings go.
        while self.dequeue().is_some() {}
    }
}

// SAFETY: the queue owns boxed `T` values in transit; handing them across
// threads requires `T: Send` (already bounded on the struct).
unsafe impl<T: Send, P: FaaPolicy> Send for TypedLcrq<T, P> {}
unsafe impl<T: Send, P: FaaPolicy> Sync for TypedLcrq<T, P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_of_strings() {
        let q: TypedLcrq<String> = TypedLcrq::new();
        for i in 0..100 {
            q.enqueue(format!("item-{i}"));
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(format!("item-{i}")));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn zero_sized_types_work() {
        // Box<()> still yields a unique-ish dangling pointer; ensure the
        // round trip works and nothing is lost.
        let q: TypedLcrq<()> = TypedLcrq::new();
        q.enqueue(());
        q.enqueue(());
        assert_eq!(q.dequeue(), Some(()));
        assert_eq!(q.dequeue(), Some(()));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let q: TypedLcrq<Counted> = TypedLcrq::new();
        for _ in 0..50 {
            q.enqueue(Counted(Arc::clone(&drops)));
        }
        for _ in 0..20 {
            drop(q.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 20);
        drop(q); // remaining 30 freed by the queue's Drop
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn from_iterator_extend_and_drain() {
        let mut q: TypedLcrq<String> = ["a", "b"].into_iter().map(String::from).collect();
        q.extend(["c".to_string()]);
        let out: Vec<String> = q.drain().collect();
        assert_eq!(out, vec!["a", "b", "c"]);
        assert!(format!("{q:?}").contains("String"));
    }

    #[test]
    fn mpmc_stress_typed() {
        let q: Arc<TypedLcrq<(usize, u64)>> = Arc::new(TypedLcrq::with_config(
            LcrqConfig::new().with_ring_order(4),
        ));
        let producers = 3usize;
        let per = 3_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.enqueue((p, i));
                    }
                })
            })
            .collect();
        let total = producers as u64 * per;
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = 0;
                let mut last = vec![None; 8];
                while got < total {
                    if let Some((p, i)) = q.dequeue() {
                        if let Some(prev) = last[p] {
                            assert!(i > prev);
                        }
                        last[p] = Some(i);
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        consumer.join().unwrap();
        assert!(q.dequeue().is_none());
    }
}
