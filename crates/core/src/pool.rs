//! Bounded recycling pool for retired CRQ rings.
//!
//! LCRQ's spill path allocates a fresh ring every time a CRQ closes, and the
//! hazard domain frees every retired ring — so a tantrum-heavy workload
//! churns the global allocator once per ring close and has unbounded
//! transient memory. The [`RingPool`] replaces *retire-means-free* with
//! *retire-means-recycle*: a drained ring is [scrubbed](crate::crq::Crq::scrub)
//! (its indices re-based onto a fresh reuse epoch so recycled
//! `(safe, idx, val)` tuples can never alias live ones) and parked on a
//! bounded lock-free freelist; the spill paths pop from the pool before
//! falling back to allocation. Steady-state spills then allocate nothing,
//! and idle memory beyond the live ring chain is bounded by
//! `capacity × R × 128` bytes.
//!
//! # Structure
//!
//! * a striped array of single-ring **shard slots**, indexed by thread, give
//!   an uncontended `XCHG`-only fast path;
//! * a **Treiber stack** overflow list whose top carries a version counter
//!   updated with CAS2, so a ring that is popped and re-pushed while a slow
//!   popper naps (the classic ABA interleaving) makes that popper's CAS fail
//!   instead of corrupting the list;
//! * a CAS-maintained length that never exceeds `capacity`, even
//!   transiently — `push` hands the ring back rather than over-filling.
//!
//! # Ownership protocol
//!
//! Rings enter by `Box` (exclusive ownership — the ring is unreachable from
//! any queue and hazard-quiescent) and leave by `Box`. The only shared-access
//! subtlety is *inside* `pop`: reading `top->next` races with a faster popper
//! that takes the ring, loses its reuse race, and retires it — so poppers
//! protect the candidate with a hazard slot before dereferencing, and every
//! free of a ring that was ever pool-visible goes through [`Domain::retire`].

// Atomics come from the sync facade so the pool's shard and length
// operations are scheduler decision points under `--cfg loom`
// (tests/loom.rs models the versioned Treiber pop's ABA window).
use lcrq_util::sync::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Weak;

use lcrq_atomic::{AtomicPair, FaaPolicy, HardwareFaa};
use lcrq_hazard::Domain;
use lcrq_util::metrics::{self, Event};

use crate::crq::Crq;

/// Upper bound on the number of shard slots (they hold rings, so they are
/// counted against `capacity`; more shards than that would be dead weight).
const MAX_SHARDS: usize = 8;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: core::cell::Cell<usize> = const { core::cell::Cell::new(usize::MAX) };
}

/// Small dense thread index for shard striping (assigned on first use).
/// Inside a model execution the model's own thread id is used instead: the
/// global counter's value depends on how many executions ran before this
/// one, which would make shard choice differ between a schedule's first
/// run and its replay.
fn thread_slot() -> usize {
    #[cfg(loom)]
    if let Some(id) = lcrq_util::model::current_thread_id() {
        return id;
    }
    THREAD_SLOT.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

/// A bounded lock-free pool of scrubbed, ready-to-reseed CRQ rings. See the
/// [module docs](self) for the design and ownership protocol.
pub struct RingPool<P: FaaPolicy = HardwareFaa> {
    /// Treiber-stack top as `(version, ring ptr)`: the version advances on
    /// every successful push/pop, defusing ABA on the pointer.
    top: AtomicPair,
    /// Per-thread single-ring cache slots (XCHG in and out, never
    /// dereferenced while shared).
    shards: Box<[AtomicPtr<Crq<P>>]>,
    /// Rings currently in the pool. Maintained with CAS reservation so it
    /// never exceeds `capacity`, even transiently.
    len: AtomicUsize,
    capacity: usize,
}

// SAFETY: rings are transferred whole (Box in, Box out) through atomics;
// while pooled they are touched only via their atomic fields.
unsafe impl<P: FaaPolicy> Send for RingPool<P> {}
unsafe impl<P: FaaPolicy> Sync for RingPool<P> {}

impl<P: FaaPolicy> RingPool<P> {
    /// Creates a pool holding at most `capacity` rings (0 disables pooling:
    /// every `push` bounces and every `pop` misses).
    pub fn new(capacity: usize) -> Arc<Self> {
        let shards = if capacity == 0 {
            0
        } else {
            capacity.min(MAX_SHARDS)
        };
        Arc::new(Self {
            top: AtomicPair::new(0, 0),
            shards: (0..shards)
                .map(|_| AtomicPtr::new(core::ptr::null_mut()))
                .collect(),
            len: AtomicUsize::new(0),
            capacity,
        })
    }

    /// Maximum number of rings the pool will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rings currently pooled (racy snapshot; never exceeds
    /// [`capacity`](Self::capacity)).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether the pool currently holds no rings (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the pool is at capacity (racy snapshot).
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Scrubs `ring` and parks it for reuse. Hands the ring back unscrubbed
    /// when the pool is full (or disabled), and hands it back *scrub-refused*
    /// when its index space is nearly exhausted — either way the caller must
    /// dispose of it (see the module docs: if the ring was ever pool-visible
    /// that disposal must go through [`Domain::retire`], because a
    /// concurrent [`pop`](Self::pop) may still hold a hazard-protected
    /// pointer to it from a lost race).
    ///
    /// Taking the ring by `Box` is what makes scrubbing sound: exclusive
    /// ownership proves no in-flight protocol operation can observe the
    /// reset.
    pub fn push(&self, ring: Box<Crq<P>>) -> Result<(), Box<Crq<P>>> {
        // Reserve a slot first; CAS (not F&A) so `len <= capacity` is a hard
        // invariant rather than a transiently-violated one.
        let mut len = self.len.load(Ordering::SeqCst);
        loop {
            if len >= self.capacity {
                return Err(ring);
            }
            match self
                .len
                .compare_exchange(len, len + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(cur) => len = cur,
            }
        }
        // Fail point around the scrub: the ring is exclusively owned here, so
        // a stall/panic leaks at most this one ring, never corrupts the pool.
        let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::PoolScrub);
        if !ring.scrub() {
            // Index space nearly exhausted: this ring must die, not recycle.
            self.len.fetch_sub(1, Ordering::SeqCst);
            return Err(ring);
        }
        let raw = Box::into_raw(ring);
        // Fast path: the calling thread's shard slot, if free.
        if !self.shards.is_empty() {
            let shard = &self.shards[thread_slot() % self.shards.len()];
            if shard
                .compare_exchange(
                    core::ptr::null_mut(),
                    raw,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return Ok(());
            }
        }
        // Overflow: Treiber stack, version bumped so in-flight pops of the
        // old top fail instead of acting on a recycled pointer.
        loop {
            let (version, top) = self.top.load();
            // SAFETY: `raw` is exclusively ours until the CAS below publishes
            // it. `next` doubles as the freelist link while pooled (scrub
            // nulled it; a pop re-nulls it before handing the ring out).
            unsafe { (*raw).next.store(top as *mut Crq<P>, Ordering::Release) };
            if self
                .top
                .compare_exchange((version, top), (version + 1, raw as u64))
                .is_ok()
            {
                return Ok(());
            }
        }
    }

    /// Pops a scrubbed ring, ready to [`reseed`](crate::crq::Crq::reseed).
    ///
    /// `domain`/`slot` name a hazard slot of the calling thread, used to
    /// protect the stack-pop candidate while its `next` link is read: a
    /// faster popper may take that ring, lose its reuse race, and retire it,
    /// and only the hazard keeps the retirement from freeing it under us.
    /// The slot is left clear on return.
    ///
    /// Every concurrent user of one pool must therefore pass slots of the
    /// **same** shared `Domain` (a queue passes its own), and any free of a
    /// ring that was ever pool-visible must go through that domain's
    /// [`retire`](Domain::retire) — a hazard in a domain the freeing thread
    /// never consults protects nothing.
    pub fn pop(&self, domain: &Domain, slot: usize) -> Option<Box<Crq<P>>> {
        if self.capacity == 0 {
            return None;
        }
        let shards = self.shards.len();
        let s = if shards == 0 {
            0
        } else {
            thread_slot() % shards
        };
        // Own shard first: XCHG only, nothing is dereferenced while shared.
        if shards > 0 {
            let p = self.shards[s].swap(core::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                return Some(self.take(p));
            }
        }
        // Treiber stack.
        loop {
            let (version, raw) = self.top.load();
            let p = raw as *mut Crq<P>;
            if p.is_null() {
                break;
            }
            // Publish the hazard, then re-validate the top: if it moved, `p`
            // may already be popped (and even retired/freed) — retry without
            // dereferencing it.
            domain.protect_raw(slot, p as *mut ());
            // Fail point inside the protect→revalidate window: a delay here
            // maximizes the chance a racing popper retires `p` while our
            // hazard is the only thing keeping it alive.
            let _ = lcrq_util::fault::inject(lcrq_util::fault::Site::PoolPop);
            if self.top.load() != (version, raw) {
                continue;
            }
            // SAFETY: `p` was the stack top after our hazard was published,
            // so any retirement of `p` from here on must observe the hazard
            // and defer its reclamation.
            let next = unsafe { (*p).next.load(Ordering::Acquire) };
            if self
                .top
                .compare_exchange((version, raw), (version + 1, next as u64))
                .is_ok()
            {
                domain.clear(slot);
                return Some(self.take(p));
            }
        }
        domain.clear(slot);
        // Last resort: raid the other threads' shard slots (still pure XCHG).
        for i in 1..shards {
            let p = self.shards[(s + i) % shards].swap(core::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                return Some(self.take(p));
            }
        }
        None
    }

    /// Converts an exclusively-claimed raw ring back into a `Box`.
    fn take(&self, p: *mut Crq<P>) -> Box<Crq<P>> {
        self.len.fetch_sub(1, Ordering::SeqCst);
        metrics::inc(Event::RingReuse);
        // SAFETY: `p` came from `Box::into_raw` in `push` and the caller
        // holds the unique claim (XCHG of a shard slot or a successful
        // version-CAS pop).
        let ring = unsafe { Box::from_raw(p) };
        // While pooled, `next` served as the freelist link; the ring leaves
        // the pool unlinked.
        ring.next.store(core::ptr::null_mut(), Ordering::Relaxed);
        ring
    }
}

impl<P: FaaPolicy> Drop for RingPool<P> {
    fn drop(&mut self) {
        // Exclusive access: pop everything and free it. Entries are walked
        // through their freelist links — which, by the push/pop protocol,
        // never point into any queue's live chain (scrub nulls the link and
        // push only ever aims it at another pooled ring), so this cannot
        // double-free a chain-reachable ring.
        for shard in self.shards.iter() {
            let p = shard.swap(core::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: pooled rings are exclusively owned by the pool.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        let (_, mut raw) = self.top.load();
        while raw != 0 {
            let p = raw as *mut Crq<P>;
            // SAFETY: as above; the freelist is ours alone now.
            let ring = unsafe { Box::from_raw(p) };
            raw = ring.next.load(Ordering::Acquire) as u64;
            drop(ring);
        }
    }
}

impl<P: FaaPolicy> core::fmt::Debug for RingPool<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RingPool")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Reclamation callback for [`Domain::retire_with`]: once the hazard domain
/// proves no thread still protects the ring, return it to its owning pool
/// (scrubbed, on a fresh reuse epoch) — or free it when the pool is gone,
/// full, or refuses the scrub.
///
/// # Safety
///
/// `p` must be a `Box::into_raw`-produced `*mut Crq<P>` being reclaimed by
/// the hazard domain (sole ownership, no live references).
pub(crate) unsafe fn recycle_ring<P: FaaPolicy>(p: *mut ()) {
    // SAFETY: per this function's contract, forwarded from retire_with.
    let ring = unsafe { Box::from_raw(p as *mut Crq<P>) };
    match ring.pool().and_then(Weak::upgrade) {
        // `push` scrubs; on Err the ring was never made pool-visible *this
        // retirement* and no reference to it survives (we are its reclaimer),
        // so dropping it directly is sound.
        Some(pool) => drop(pool.push(ring)),
        None => drop(ring),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LcrqConfig;
    use lcrq_util::metrics::{self, Event};

    fn ring(order: u32) -> Box<Crq> {
        Box::new(Crq::new(&LcrqConfig::new().with_ring_order(order)))
    }

    #[test]
    fn push_pop_round_trips_scrubbed_rings() {
        let pool = RingPool::<HardwareFaa>::new(4);
        let domain = Domain::new();
        let r = ring(3);
        r.enqueue(7).unwrap();
        r.close();
        assert!(pool.push(r).is_ok());
        assert_eq!(pool.len(), 1);
        let r = pool.pop(&domain, 0).expect("pooled ring");
        assert_eq!(pool.len(), 0);
        // Scrubbed: open, empty, on a fresh epoch. (Checked via indices:
        // an actual dequeue would advance head past the scrub base, and
        // reseed requires a freshly scrubbed ring.)
        assert!(!r.is_closed());
        assert_eq!(r.reuse_epoch(), 1);
        assert!(r.base_index() > 0);
        assert_eq!(r.head_index(), r.tail_index());
        r.reseed(&[5]);
        assert_eq!(r.dequeue(), Some(5));
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn capacity_bound_is_never_exceeded() {
        let pool = RingPool::<HardwareFaa>::new(2);
        assert!(pool.push(ring(2)).is_ok());
        assert!(pool.push(ring(2)).is_ok());
        assert_eq!(pool.len(), 2);
        assert!(pool.is_full());
        // Third ring bounces back, unscrubbed.
        let r = ring(2);
        r.enqueue(9).unwrap();
        let r = pool.push(r).expect_err("pool is full");
        assert_eq!(r.dequeue(), Some(9), "bounced ring is untouched");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_pooling() {
        let pool = RingPool::<HardwareFaa>::new(0);
        let domain = Domain::new();
        assert!(pool.push(ring(2)).is_err());
        assert!(pool.pop(&domain, 0).is_none());
        assert_eq!(pool.capacity(), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn drop_frees_all_pooled_rings() {
        // More rings than shard slots, so both the shards and the Treiber
        // stack hold entries at drop time.
        let pool = RingPool::<HardwareFaa>::new(16);
        for _ in 0..16 {
            assert!(pool.push(ring(2)).is_ok());
        }
        assert_eq!(pool.len(), 16);
        drop(pool); // LSan/ASan (ci.sh nightly job) verifies no leak
    }

    #[test]
    fn pop_scans_other_threads_shards() {
        let pool = RingPool::<HardwareFaa>::new(8);
        let domain = Domain::new();
        // Fill from other threads so the rings land in foreign shard slots.
        for _ in 0..3 {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                assert!(pool.push(ring(2)).is_ok());
            })
            .join()
            .unwrap();
        }
        assert_eq!(pool.len(), 3);
        for _ in 0..3 {
            assert!(pool.pop(&domain, 0).is_some());
        }
        assert!(pool.pop(&domain, 0).is_none());
    }

    #[test]
    fn reuse_metric_counts_pool_hits() {
        let pool = RingPool::<HardwareFaa>::new(2);
        let domain = Domain::new();
        let before = metrics::local_snapshot();
        assert!(pool.push(ring(2)).is_ok());
        let r = pool.pop(&domain, 0).unwrap();
        drop(r);
        let d = metrics::local_snapshot().delta_since(&before);
        assert_eq!(d.get(Event::RingScrub), 1);
        assert_eq!(d.get(Event::RingReuse), 1);
    }

    #[test]
    fn concurrent_push_pop_stress_keeps_the_bound_and_every_ring() {
        let pool = RingPool::<HardwareFaa>::new(4);
        // One domain shared by every pool user, exactly as a queue shares
        // its own domain: pop's hazard protection is only meaningful if the
        // thread that frees a pool-visible ring retires it where that hazard
        // is visible.
        let domain = Arc::new(Domain::new());
        let threads = 4;
        let rounds = 500;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let domain = Arc::clone(&domain);
                std::thread::spawn(move || {
                    for i in 0..rounds {
                        assert!(pool.len() <= pool.capacity(), "bound violated");
                        if i % 3 == 0 {
                            if let Err(r) = pool.push(ring(2)) {
                                // Never pool-visible: direct drop is fine.
                                drop(r);
                            }
                        } else if let Some(r) = pool.pop(&domain, 0) {
                            r.reseed(&[i as u64 + 1]);
                            assert_eq!(r.dequeue(), Some(i as u64 + 1));
                            if let Err(r) = pool.push(r) {
                                // Was pool-visible: a concurrent popper may
                                // still hold a hazard on it, so free through
                                // the shared domain.
                                unsafe { domain.retire(Box::into_raw(r)) };
                            }
                        }
                    }
                    domain.eager_reclaim();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.len() <= pool.capacity());
        domain.eager_reclaim();
    }
}
