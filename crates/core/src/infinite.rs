//! The idealized infinite-array queue (paper §4, Figure 2).
//!
//! The conceptual ancestor of the CRQ: an infinite array `Q` with F&A-driven
//! `head`/`tail` indices. An enqueuer swaps its item into cell `Q[t]`; a
//! dequeuer swaps ⊤ into `Q[h]` and returns what was there, or — if the
//! cell was still ⊥ — has thereby *poisoned* the cell so the matching
//! enqueuer cannot complete there, and retries (returning EMPTY if
//! `tail <= h+1`).
//!
//! The paper keeps this algorithm "unrealistic" for two reasons it then
//! fixes in the CRQ/LCRQ: the infinite array, and the livelock in which a
//! dequeuer keeps poisoning the cell its matching enqueuer is about to use.
//! We make the array practical with a lazily allocated segment directory
//! (so memory grows with the number of *operations*, never reclaimed — that
//! is the "unrealistic" part we keep); the livelock we keep too, documented,
//! as it is the algorithm's defining flaw.

use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use lcrq_atomic::{ops, FaaPolicy, HardwareFaa};
use lcrq_util::CachePadded;

use crate::BOTTOM;

/// The reserved dequeuer-poison value ⊤. Values must be `< TOP`.
pub const TOP: u64 = u64::MAX - 1;

/// Cells per lazily allocated segment.
const SEG_SIZE: usize = 1 << 12;

struct Segment {
    cells: Box<[AtomicU64; SEG_SIZE]>,
}

impl Segment {
    fn alloc() -> *mut Segment {
        let cells: Vec<AtomicU64> = (0..SEG_SIZE).map(|_| AtomicU64::new(BOTTOM)).collect();
        let cells: Box<[AtomicU64; SEG_SIZE]> =
            cells.into_boxed_slice().try_into().expect("size matches");
        Box::into_raw(Box::new(Segment { cells }))
    }
}

/// Maximum number of segments the directory can hold. `DIR_SIZE * SEG_SIZE`
/// bounds the total operations over the queue's lifetime (2^28 here — the
/// "infinite" array made finite but generous).
const DIR_SIZE: usize = 1 << 16;

/// The Figure-2 queue: linearizable, but *not* livelock-free and with
/// unreclaimed memory — for study and comparison only.
pub struct InfiniteArrayQueue<P: FaaPolicy = HardwareFaa> {
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    directory: Box<[AtomicPtr<Segment>]>,
    _faa: core::marker::PhantomData<P>,
}

// SAFETY: all shared state is atomics.
unsafe impl<P: FaaPolicy> Send for InfiniteArrayQueue<P> {}
unsafe impl<P: FaaPolicy> Sync for InfiniteArrayQueue<P> {}

impl<P: FaaPolicy> InfiniteArrayQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            directory: (0..DIR_SIZE)
                .map(|_| AtomicPtr::new(core::ptr::null_mut()))
                .collect(),
            _faa: core::marker::PhantomData,
        }
    }

    /// Returns the cell for absolute index `i`, allocating its segment on
    /// first touch (allocation races are resolved by CAS; losers free).
    fn cell(&self, i: u64) -> &AtomicU64 {
        let seg_idx = (i as usize) / SEG_SIZE;
        assert!(
            seg_idx < DIR_SIZE,
            "InfiniteArrayQueue exhausted its {}-operation lifetime budget",
            DIR_SIZE * SEG_SIZE
        );
        let slot = &self.directory[seg_idx];
        let mut seg = slot.load(Ordering::Acquire);
        if seg.is_null() {
            let fresh = Segment::alloc();
            match slot.compare_exchange(
                core::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => seg = fresh,
                Err(winner) => {
                    // SAFETY: fresh lost the race and was never shared.
                    unsafe { drop(Box::from_raw(fresh)) };
                    seg = winner;
                }
            }
        }
        // SAFETY: segments are never freed while the queue is alive.
        unsafe { &(*seg).cells[(i as usize) % SEG_SIZE] }
    }

    /// Appends `value` (must be `< TOP`). Figure 2 lines 1–5.
    pub fn enqueue(&self, value: u64) {
        assert!(value < TOP, "TOP and BOTTOM are reserved");
        loop {
            let t = P::fetch_add(&self.tail, 1);
            if ops::swap(self.cell(t), value) == BOTTOM {
                return;
            }
            // A dequeuer poisoned our cell; its contents are dead. Retry.
        }
    }

    /// Removes the oldest value, or `None` if empty. Figure 2 lines 6–12.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let h = P::fetch_add(&self.head, 1);
            let x = ops::swap(self.cell(h), TOP);
            if x != BOTTOM {
                return Some(x);
            }
            if self.tail.load(Ordering::SeqCst) <= h + 1 {
                return None;
            }
        }
    }
}

impl<P: FaaPolicy> Default for InfiniteArrayQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: FaaPolicy> Drop for InfiniteArrayQueue<P> {
    fn drop(&mut self) {
        for slot in self.directory.iter() {
            let seg = slot.load(Ordering::Relaxed);
            if !seg.is_null() {
                // SAFETY: exclusive access in drop.
                unsafe { drop(Box::from_raw(seg)) };
            }
        }
    }
}

impl<P: FaaPolicy> lcrq_queues::ConcurrentQueue for InfiniteArrayQueue<P> {
    fn enqueue(&self, value: u64) {
        InfiniteArrayQueue::enqueue(self, value)
    }
    fn dequeue(&self) -> Option<u64> {
        InfiniteArrayQueue::dequeue(self)
    }
    fn name(&self) -> &'static str {
        "infinite-array"
    }
    fn is_nonblocking(&self) -> bool {
        // Nonblocking in Herlihy's sense per the paper, but not livelock-free
        // op-wise (a dequeuer can starve its matching enqueuer forever).
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrq_queues::testing;

    type Q = InfiniteArrayQueue<HardwareFaa>;

    #[test]
    fn empty_dequeue_returns_none() {
        let q = Q::new();
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_sequential() {
        let q = Q::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn crosses_segment_boundaries() {
        let q = Q::new();
        let n = (SEG_SIZE + 100) as u64;
        for i in 0..n {
            q.enqueue(i);
        }
        for i in 0..n {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn poisoned_cells_force_enqueue_retry_without_loss() {
        let q = Q::new();
        // Poison cells 0..10 by dequeuing on empty.
        for _ in 0..10 {
            assert_eq!(q.dequeue(), None);
        }
        // head = 10, tail = 0: enqueues now burn through poisoned cells
        // (every swap returns TOP) until t reaches 10.
        q.enqueue(42);
        // 42 landed at t >= 10... but head is already 10+, so head may have
        // passed it. Dequeue must still find it (dequeuers retry forward).
        assert_eq!(q.dequeue(), Some(42));
    }

    #[test]
    fn mpmc_stress() {
        let q = Q::new();
        testing::mpmc_stress(&q, 2, 2, 4_000);
    }

    #[test]
    fn model_check_against_vecdeque() {
        testing::model_check(&Q::new(), 0x1F);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_values_rejected() {
        let q = Q::new();
        q.enqueue(TOP);
    }
}
