//! Sharded d-choice front-end: N queues behind one facade.
//!
//! A single LCRQ serializes every endpoint on one fetch-and-add hot spot —
//! the very cost model of the paper. [`ShardedQueue`] trades a bounded
//! amount of FIFO order for throughput by spreading operations over
//! `shards` independent backends (generic over any
//! [`ConcurrentQueue`]), in the style of the d-CBO load-balanced wrappers
//! built around this exact LCRQ (`dcs-chalmers/semantic-relaxation-dcbo`):
//!
//! * **Enqueue** samples `d` shards (default d = 2) by cheap length
//!   estimates and appends to the *shortest*.
//! * **Dequeue** samples `d` shards and takes from the *longest*; if the
//!   chosen shard comes up empty it falls back to a full sweep over every
//!   shard, so `dequeue() == None` still means every shard was observed
//!   empty during the operation ("empty up to relaxation") and an element
//!   that was definitely present is always found.
//!
//! # The balancer must not become the hot spot
//!
//! Length estimates come from per-shard enqueue/dequeue counters (each on
//! its own cache line, bumped with relaxed F&A by the operations that
//! already own that shard's lines). Reading all of them on every operation
//! would re-centralize the very traffic sharding removes, so each thread
//! keeps a private cached copy, adjusted optimistically by its own
//! operations and re-read from the real counters only every
//! [`refresh`](ShardedConfig::refresh) operations. Correctness never
//! depends on the estimates — they only steer placement; the fallback
//! sweep consults the real shards.
//!
//! # Semantic relaxation
//!
//! Per-shard FIFO order is exact; *cross*-shard order is relaxed: a
//! dequeue may overtake elements that are older but live in unsampled
//! shards. [`rank_error_bound`](ShardedQueue::rank_error_bound) gives the
//! configured analytic envelope on that rank error; `lcrq-verify`'s
//! relaxation checker measures the empirical error of recorded histories
//! against it. With `shards = 1` the facade adds no reordering at all and
//! the queue remains strictly linearizable FIFO.

use lcrq_queues::{ClosableQueue, ConcurrentQueue, EnqueueError};
use lcrq_util::{fault, CachePadded, XorShift64Star};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Construction parameters for a [`ShardedQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Number of independent backend shards (clamped to ≥ 1).
    pub shards: usize,
    /// Shards sampled per operation (clamped to `1..=shards`). d = 1
    /// degenerates to uniform random placement; d ≥ 2 gives the
    /// power-of-d-choices balance.
    pub d: usize,
    /// Operations between re-reads of the real per-shard counters into the
    /// thread-local estimate cache (clamped to ≥ 1). Larger values make
    /// the balancer cheaper and the relaxation window wider.
    pub refresh: u32,
}

impl ShardedConfig {
    /// The default: 8 shards, d = 2, refresh every 64 operations.
    pub const fn new() -> Self {
        Self {
            shards: 8,
            d: 2,
            refresh: 64,
        }
    }

    /// Returns `self` with the shard count set.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns `self` with the sample width set.
    pub fn with_d(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Returns `self` with the estimate refresh interval set.
    pub fn with_refresh(mut self, refresh: u32) -> Self {
        self.refresh = refresh;
        self
    }
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One backend plus its length-estimate counters, each padded so a shard's
/// balancer traffic never false-shares with its neighbours.
struct Shard<Q> {
    queue: Q,
    enq: CachePadded<AtomicU64>,
    deq: CachePadded<AtomicU64>,
}

/// A relaxed MPMC FIFO queue: `shards` independent backends behind one
/// [`ConcurrentQueue`] facade, balanced by d-choice length estimates.
///
/// See the [module docs](self) for the design; construct via
/// [`from_factory`](ShardedQueue::from_factory) (or a
/// `sharded:shards=8,d=2,inner=lcrq` spec string through the bench
/// registry).
pub struct ShardedQueue<Q> {
    shards: Box<[Shard<Q>]>,
    d: usize,
    refresh: u32,
    /// Process-unique id distinguishing this queue's thread-local sampler
    /// state from other (possibly freed-and-reallocated) instances.
    instance: u64,
}

/// Per-thread sampler: cached length estimates plus the d-choice RNG.
struct Sampler {
    instance: u64,
    est: Vec<i64>,
    until_refresh: u32,
    rng: XorShift64Star,
}

thread_local! {
    /// One slot per thread: the sampler of the sharded queue this thread
    /// touched last. Another instance (by id) rebuilds it from the real
    /// counters, so interleaving queues is correct, just not cached.
    static SAMPLER: RefCell<Option<Sampler>> = const { RefCell::new(None) };
}

fn next_instance_id() -> u64 {
    static CTR: AtomicU64 = AtomicU64::new(1);
    CTR.fetch_add(1, Ordering::Relaxed)
}

impl<Q: ConcurrentQueue> ShardedQueue<Q> {
    /// Builds a sharded queue whose shard `i` is `factory(i)`.
    ///
    /// `cfg.shards` is clamped to ≥ 1 and `cfg.d` to `1..=shards`.
    pub fn from_factory(cfg: &ShardedConfig, mut factory: impl FnMut(usize) -> Q) -> Self {
        let shards = cfg.shards.max(1);
        Self {
            shards: (0..shards)
                .map(|i| Shard {
                    queue: factory(i),
                    enq: CachePadded::new(AtomicU64::new(0)),
                    deq: CachePadded::new(AtomicU64::new(0)),
                })
                .collect(),
            d: cfg.d.clamp(1, shards),
            refresh: cfg.refresh.max(1),
            instance: next_instance_id(),
        }
    }

    /// Number of backend shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards sampled per operation.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Estimate refresh interval, in operations per thread.
    pub fn refresh(&self) -> u32 {
        self.refresh
    }

    /// Snapshot length estimate: total enqueues minus total dequeues
    /// observed so far (racy; for monitoring and benchmarks only).
    pub fn len_estimate(&self) -> u64 {
        let (mut e, mut d) = (0u64, 0u64);
        for sh in self.shards.iter() {
            e = e.wrapping_add(sh.enq.load(Ordering::Relaxed));
            d = d.wrapping_add(sh.deq.load(Ordering::Relaxed));
        }
        e.saturating_sub(d)
    }

    /// The analytic rank-error envelope for this configuration at the
    /// given concurrency — see [`rank_error_bound_for`].
    pub fn rank_error_bound(&self, threads: usize) -> u64 {
        rank_error_bound_for(self.shards.len(), self.d, self.refresh, threads)
    }

    /// Re-reads the real counters into the sampler's estimate cache.
    fn refresh_estimates(&self, smp: &mut Sampler) {
        for (slot, sh) in smp.est.iter_mut().zip(self.shards.iter()) {
            let e = sh.enq.load(Ordering::Relaxed);
            let d = sh.deq.load(Ordering::Relaxed);
            *slot = e.wrapping_sub(d) as i64;
        }
        smp.until_refresh = self.refresh;
    }

    /// Samples `d` shards by cached estimate and returns the best index
    /// (shortest for enqueue, longest for dequeue), optimistically
    /// adjusting the cached estimate for the operation about to happen.
    ///
    /// The single thread-local borrow is released before the caller
    /// touches the chosen shard, so nested sharded queues (an inner
    /// `sharded:` spec) re-enter safely.
    fn pick(&self, for_enqueue: bool, delta: i64) -> usize {
        SAMPLER.with(|slot| {
            let mut slot = slot.borrow_mut();
            let smp = match slot.as_mut() {
                Some(smp) if smp.instance == self.instance => smp,
                _ => {
                    let mut fresh = Sampler {
                        instance: self.instance,
                        est: vec![0; self.shards.len()],
                        until_refresh: 0,
                        // Placement steering only — deliberately NOT wired
                        // to LCRQ_TEST_SEED: a shared seed would herd every
                        // thread onto the same shard sequence.
                        rng: XorShift64Star::new(
                            self.instance.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ next_instance_id().wrapping_mul(0xD1B5_4A32_D192_ED03),
                        ),
                    };
                    self.refresh_estimates(&mut fresh);
                    *slot = Some(fresh);
                    slot.as_mut().unwrap()
                }
            };
            if smp.until_refresh == 0 {
                self.refresh_estimates(smp);
            }
            smp.until_refresh -= 1;
            let n = self.shards.len() as u64;
            let mut best = smp.rng.next_below(n) as usize;
            // Fail point in the sampling window: `Fail` degrades this
            // operation to a single uniform sample (the stale-estimate
            // worst case); `Stall` parks the thread right here, holding
            // arbitrarily stale estimates, without wedging its peers.
            if !fault::inject(fault::Site::ShardSample) {
                for _ in 1..self.d {
                    let c = smp.rng.next_below(n) as usize;
                    let better = if for_enqueue {
                        smp.est[c] < smp.est[best]
                    } else {
                        smp.est[c] > smp.est[best]
                    };
                    if better {
                        best = c;
                    }
                }
            }
            smp.est[best] += delta;
            best
        })
    }

    /// Records in the cache that shard `i` was just observed empty.
    fn note_empty(&self, i: usize) {
        SAMPLER.with(|slot| {
            if let Ok(mut slot) = slot.try_borrow_mut() {
                if let Some(smp) = slot.as_mut() {
                    if smp.instance == self.instance {
                        smp.est[i] = 0;
                    }
                }
            }
        });
    }

    /// One dequeue attempt against shard `i`, with counter bookkeeping.
    fn shard_dequeue(&self, i: usize) -> Option<u64> {
        let sh = &self.shards[i];
        match sh.queue.dequeue() {
            Some(v) => {
                sh.deq.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.note_empty(i);
                None
            }
        }
    }

    /// One batched dequeue attempt against shard `i`.
    fn shard_dequeue_batch(&self, i: usize, out: &mut Vec<u64>, max: usize) -> usize {
        let sh = &self.shards[i];
        let taken = sh.queue.dequeue_batch(out, max);
        if taken > 0 {
            sh.deq.fetch_add(taken as u64, Ordering::Relaxed);
        }
        if taken < max {
            self.note_empty(i);
        }
        taken
    }
}

/// The analytic rank-error envelope asserted by the relaxation checker: a
/// generous bound on how many strictly older elements one dequeue may
/// overtake under d-choice balancing with estimates up to `refresh`
/// operations stale per thread.
///
/// Reasoning (probabilistic envelope, not a worst-case theorem):
///
/// * **Staleness.** Every concurrent thread can issue up to `2 × refresh`
///   operations against an estimate snapshot before re-reading, so shard
///   lengths can drift apart by `2 × refresh × threads` in the worst
///   herd, and each of the other `shards − 1` shards can hold that many
///   strictly older elements when an unlucky head is taken.
/// * **Sampling.** Shards are sampled with replacement, so a shard can go
///   unsampled for a streak of operations with probability decaying
///   geometrically in the streak length (ratio `1 − d/shards` per
///   operation for `d ≥ 2`). The `×8` multiplier buys enough headroom
///   that streak-driven excursions past the envelope are negligible for
///   any realistic run length.
/// * **`d = 1` is uniform placement, not balancing.** With a single
///   sample there is no shortest/longest choice at all: shard lengths
///   follow a random walk whose spread grows with the run, so no
///   run-independent bound exists. The `×64` multiplier makes the
///   envelope honest for the run lengths exercised by the test harness;
///   prefer `d ≥ 2` whenever the rank bound matters.
///
/// `refresh` counts *operations*, so callers moving `k` elements per
/// batched call should scale the envelope by their batch size.
pub fn rank_error_bound_for(shards: usize, d: usize, refresh: u32, threads: usize) -> u64 {
    if shards <= 1 {
        return 0;
    }
    let staleness = 2 * refresh as u64 * threads.max(1) as u64;
    let sampling = if d <= 1 { 64 } else { 8 };
    (shards as u64 - 1) * (staleness + 2 * d as u64 + 16) * sampling
}

impl<Q: ConcurrentQueue> ConcurrentQueue for ShardedQueue<Q> {
    fn enqueue(&self, value: u64) {
        let i = self.pick(true, 1);
        let sh = &self.shards[i];
        sh.queue.enqueue(value);
        sh.enq.fetch_add(1, Ordering::Relaxed);
    }

    fn dequeue(&self) -> Option<u64> {
        let i = self.pick(false, -1);
        if let Some(v) = self.shard_dequeue(i) {
            return Some(v);
        }
        // Exact-empty fallback: the chosen shard was empty (or the estimate
        // was stale). Sweep every other shard before reporting empty, so
        // None means each shard was observed empty during this operation —
        // a definitely-present element can never be missed.
        let n = self.shards.len();
        for k in 1..n {
            if let Some(v) = self.shard_dequeue((i + k) % n) {
                return Some(v);
            }
        }
        None
    }

    fn enqueue_batch(&self, values: &[u64]) {
        if values.is_empty() {
            return;
        }
        // The whole batch rides one shard: intra-batch order stays exact
        // and the inner queue's native multi-slot reservation still fires.
        let i = self.pick(true, values.len() as i64);
        let sh = &self.shards[i];
        sh.queue.enqueue_batch(values);
        sh.enq.fetch_add(values.len() as u64, Ordering::Relaxed);
    }

    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let i = self.pick(false, -(max as i64));
        let mut taken = self.shard_dequeue_batch(i, out, max);
        let n = self.shards.len();
        let mut k = 1;
        while taken < max && k < n {
            taken += self.shard_dequeue_batch((i + k) % n, out, max - taken);
            k += 1;
        }
        taken
    }

    fn name(&self) -> &'static str {
        "sharded"
    }

    fn is_nonblocking(&self) -> bool {
        self.shards.iter().all(|sh| sh.queue.is_nonblocking())
    }
}

impl<Q: ClosableQueue> ClosableQueue for ShardedQueue<Q> {
    fn close(&self) -> bool {
        // First-closer semantics aggregate over shards: true iff any shard
        // transitioned on this call.
        let mut first = false;
        for sh in self.shards.iter() {
            first |= sh.queue.close();
        }
        first
    }

    fn is_closed(&self) -> bool {
        // close() fences every shard, so any closed shard means the facade
        // is (at least partially) fenced; report fully-closed only.
        self.shards.iter().all(|sh| sh.queue.is_closed())
    }

    fn try_enqueue(&self, value: u64) -> Result<(), u64> {
        let i = self.pick(true, 1);
        let sh = &self.shards[i];
        sh.queue.try_enqueue(value)?;
        sh.enq.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn try_enqueue_fallible(&self, value: u64) -> Result<(), EnqueueError> {
        let i = self.pick(true, 1);
        let sh = &self.shards[i];
        sh.queue.try_enqueue_fallible(value)?;
        sh.enq.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lcrq;
    use lcrq_queues::testing;

    fn sharded(shards: usize, d: usize, refresh: u32) -> ShardedQueue<Lcrq> {
        ShardedQueue::from_factory(
            &ShardedConfig::new()
                .with_shards(shards)
                .with_d(d)
                .with_refresh(refresh),
            |_| Lcrq::new(),
        )
    }

    #[test]
    fn config_is_clamped() {
        let q = ShardedQueue::from_factory(
            &ShardedConfig {
                shards: 0,
                d: 99,
                refresh: 0,
            },
            |_| Lcrq::new(),
        );
        assert_eq!(q.shards(), 1);
        assert_eq!(q.d(), 1);
        assert_eq!(q.refresh(), 1);
    }

    #[test]
    fn single_shard_is_strict_fifo() {
        let q = sharded(1, 2, 1);
        testing::model_check(&q, 0x51);
        assert_eq!(q.rank_error_bound(8), 0);
    }

    #[test]
    fn delivers_every_element_exactly_once() {
        let q = sharded(4, 2, 4);
        for i in 0..1_000u64 {
            q.enqueue(i);
        }
        let mut got = testing::drain(&q);
        assert_eq!(q.dequeue(), None);
        got.sort_unstable();
        assert_eq!(got, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_drain_stays_within_the_rank_bound() {
        let q = sharded(4, 2, 1);
        let total = 2_000u64;
        for i in 0..total {
            q.enqueue(i);
        }
        let bound = q.rank_error_bound(1);
        // Element i dequeued at position p overtook at most (p - i) older
        // elements; displacement must respect the analytic envelope.
        for p in 0..total {
            let v = q.dequeue().expect("still full");
            assert!(
                v <= p + bound && p <= v + bound,
                "displacement |{v} - {p}| exceeds bound {bound}"
            );
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn singleton_element_is_always_found() {
        // The sweep must find the only element no matter how wrong the
        // estimates are (they start synced here; the cross-thread desync
        // case lives in tests/sharded.rs).
        let q = sharded(8, 2, 1000);
        for round in 0..500u64 {
            assert_eq!(q.dequeue(), None);
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round), "round {round}");
        }
    }

    #[test]
    fn batches_ride_one_shard_in_order() {
        let q = sharded(4, 2, 1);
        q.enqueue_batch(&[1, 2, 3, 4, 5]);
        let mut out = Vec::new();
        // One shard holds the whole batch, so a full drain through the
        // batch API preserves its internal order.
        assert_eq!(q.dequeue_batch(&mut out, 5), 5);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.dequeue_batch(&mut out, 1), 0);
    }

    #[test]
    fn close_fences_every_shard() {
        let q = sharded(3, 2, 1);
        q.enqueue(7);
        assert!(q.close());
        assert!(!q.close());
        assert!(q.is_closed());
        assert_eq!(q.try_enqueue(8), Err(8));
        assert_eq!(q.dequeue(), Some(7));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn len_estimate_tracks_occupancy() {
        let q = sharded(4, 2, 1);
        assert_eq!(q.len_estimate(), 0);
        for i in 0..100 {
            q.enqueue(i);
        }
        assert_eq!(q.len_estimate(), 100);
        for _ in 0..40 {
            q.dequeue().unwrap();
        }
        assert_eq!(q.len_estimate(), 60);
    }

    #[test]
    fn mpmc_delivery_is_exactly_once() {
        let q = sharded(4, 2, 8);
        testing::mpmc_stress_relaxed(&q, 3, 3, 2_000, q.rank_error_bound(6));
    }
}
