//! A minimal JSON reader for the `BENCH_*.json` artifacts.
//!
//! The workspace is dependency-free by design (DESIGN.md "Offline build"),
//! so the regression gate cannot lean on serde. This is a small recursive
//! parser covering the full JSON value grammar — the artifacts the harness
//! emits are plain objects of numbers, strings, and booleans, but parsing
//! the real grammar means a hand-edited baseline (or a future schema
//! revision) fails loudly with a position instead of silently misreading.
//!
//! Writing stays hand-rolled at each call site (the emitters only ever
//! print numbers and escape-free spec strings); this module is the *read*
//! half that the gate and the fixture tooling share.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (f64 — artifact seeds are stored as hex *strings*
    /// precisely because u64 does not survive the f64 round-trip).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (keys may legally repeat; lookups
    /// return the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a u64, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{s}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs don't occur in our artifacts;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            Some(&c) => {
                // Copy a full UTF-8 sequence starting at c.
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("invalid UTF-8 in string")?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            Value::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(
            r#"{"schema_version": 1, "rows": [{"contender": "lcrq", "mean_mops": 5.25,
                "ok": true}, {"contender": "sharded:shards=8,d=2,inner=lcrq",
                "mean_mops": 9.5, "ok": false}], "seed": "0xDEADBEEF"}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("seed").unwrap().as_str(), Some("0xDEADBEEF"));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].get("contender").unwrap().as_str(),
            Some("sharded:shards=8,d=2,inner=lcrq")
        );
        assert_eq!(rows[0].get("mean_mops").unwrap().as_f64(), Some(5.25));
        assert_eq!(rows[1].get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn accessors_are_type_strict() {
        let v = Value::parse(r#"{"n": 1.5, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "fractional is not u64");
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(3.0).get("k"), None, "get on non-object");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": }",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1}garbage",
            "[1 2]",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn round_trips_the_shard_artifact_shape() {
        // The committed BENCH_shard.json writer's exact shape must stay
        // readable by this parser (the arena gate reads its sibling).
        let doc = r#"{
  "bench": "shard_scaling",
  "preempt_ppm": 500,
  "within_bound": true,
  "rows": [
    {"spec": "lcrq", "producers": 8, "consumers": 8, "mops": 0.4047}
  ]
}
"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("shard_scaling"));
        assert_eq!(
            v.get("rows").unwrap().as_arr().unwrap()[0]
                .get("mops")
                .unwrap()
                .as_f64(),
            Some(0.4047)
        );
    }
}
