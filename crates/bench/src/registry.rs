//! Queue construction by *spec string*, so every harness binary sweeps the
//! same set and composed variants need no new registry entries.
//!
//! A spec is a self-describing name with optional `key=value` parameters:
//!
//! ```text
//! lcrq                              the paper's LCRQ, default ring
//! lcrq:ring=16                      2^16-entry rings
//! h-queue:clusters=4                hierarchical combining, 4 clusters
//! sharded:shards=8,d=2,inner=lcrq   d-choice front-end over 8 LCRQs
//! sharded:inner=lscq:ring=10        parameters nest through `inner=`
//! ```
//!
//! `inner=` consumes the rest of the string (it must be the last
//! parameter), which is what lets sharded specs wrap any other spec —
//! including another `sharded:` — without quoting or escaping. Lists of
//! specs on a command line are separated by `;` when any spec contains
//! parameters, or plain `,` for bare names (see [`QueueSpec::parse_list`]).

use lcrq_core::infinite::InfiniteArrayQueue;
use lcrq_core::{
    HierarchicalConfig, Lcrq, LcrqCas, LcrqConfig, Lscq, LscqCas, ShardedConfig, ShardedQueue, Wcq,
};
use lcrq_queues::{
    BasketsQueue, CcQueue, ConcurrentQueue, FcQueue, HQueue, MsQueue, OptimisticQueue, SimQueue,
    TwoLockQueue,
};

/// The backend queue algorithms the harness can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// LCRQ with hardware F&A (the paper's contribution).
    Lcrq,
    /// LCRQ with the hierarchical cluster optimization (LCRQ+H).
    LcrqH,
    /// LCRQ with CAS-loop F&A (LCRQ-CAS).
    LcrqCas,
    /// LSCQ: unbounded list of Nikolaev SCQ rings — single-word CAS only.
    Lscq,
    /// LSCQ with CAS-loop F&A (the portable family's ablation twin).
    LscqCas,
    /// wCQ: wait-free helping over the SCQ ring (Nikolaev, arXiv:2201.02179).
    Wcq,
    /// Michael & Scott nonblocking queue.
    Ms,
    /// Michael & Scott two-lock queue.
    TwoLock,
    /// CC-Queue (CC-Synch combining).
    Cc,
    /// H-Queue (H-Synch hierarchical combining).
    H,
    /// Flat-combining queue.
    Fc,
    /// The Figure-2 infinite-array queue (study only).
    Infinite,
    /// SimQueue: wait-free P-Sim combining (related work; extension).
    Sim,
    /// Ladan-Mozes & Shavit optimistic queue (related work; extension).
    Optimistic,
    /// Hoffman, Shalev & Shavit baskets queue (related work; extension).
    Baskets,
}

/// Every backend kind, in the order the paper's figures list them.
pub const ALL_KINDS: &[QueueKind] = &[
    QueueKind::LcrqH,
    QueueKind::Lcrq,
    QueueKind::LcrqCas,
    QueueKind::Lscq,
    QueueKind::LscqCas,
    QueueKind::Wcq,
    QueueKind::H,
    QueueKind::Cc,
    QueueKind::Fc,
    QueueKind::Ms,
    QueueKind::TwoLock,
    QueueKind::Infinite,
    QueueKind::Sim,
    QueueKind::Optimistic,
    QueueKind::Baskets,
];

impl QueueKind {
    /// Parses a bare backend name. This is the single name table — the
    /// spec parser and printer both go through it.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "lcrq" => Self::Lcrq,
            "lcrq+h" | "lcrq-h" => Self::LcrqH,
            "lcrq-cas" => Self::LcrqCas,
            "lscq" => Self::Lscq,
            "lscq-cas" => Self::LscqCas,
            "wcq" => Self::Wcq,
            "ms" => Self::Ms,
            "two-lock" => Self::TwoLock,
            "cc-queue" | "cc" => Self::Cc,
            "h-queue" | "h" => Self::H,
            "fc-queue" | "fc" => Self::Fc,
            "infinite" | "infinite-array" => Self::Infinite,
            "sim-queue" | "sim" => Self::Sim,
            "optimistic" => Self::Optimistic,
            "baskets" => Self::Baskets,
            _ => return None,
        })
    }

    /// Canonical display name (matches `ConcurrentQueue::name`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Lcrq => "lcrq",
            Self::LcrqH => "lcrq+h",
            Self::LcrqCas => "lcrq-cas",
            Self::Lscq => "lscq",
            Self::LscqCas => "lscq-cas",
            Self::Wcq => "wcq",
            Self::Ms => "ms",
            Self::TwoLock => "two-lock",
            Self::Cc => "cc-queue",
            Self::H => "h-queue",
            Self::Fc => "fc-queue",
            Self::Infinite => "infinite-array",
            Self::Sim => "sim-queue",
            Self::Optimistic => "optimistic",
            Self::Baskets => "baskets",
        }
    }

    /// Whether this kind participates in hierarchical (multi-cluster) runs
    /// in the paper's figures.
    pub fn is_hierarchical(&self) -> bool {
        matches!(self, Self::LcrqH | Self::H)
    }
}

/// Default ring order for ring-based backends (`LcrqConfig::new()`).
pub const DEFAULT_RING_ORDER: u32 = 12;
/// Default cluster count for hierarchical backends.
pub const DEFAULT_CLUSTERS: usize = 1;

const DEFAULT_SHARDED: ShardedConfig = ShardedConfig::new();

/// A complete, buildable queue description — the redesigned constructor
/// API. Parsed from spec strings (see the [module docs](self)), printed
/// back in canonical form (`parse(spec.to_string()) == spec`), and built
/// with [`build`](QueueSpec::build).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueSpec {
    /// A single backend algorithm.
    Backend {
        /// Which algorithm.
        kind: QueueKind,
        /// log2 ring size for the LCRQ/LSCQ variants (ignored by others).
        ring_order: u32,
        /// Cluster count for the hierarchical algorithms (ignored by
        /// others).
        clusters: usize,
    },
    /// A d-choice sharded front-end over `shards` copies of `inner`.
    Sharded {
        /// Number of shards.
        shards: usize,
        /// Shards sampled per operation.
        d: usize,
        /// Thread-local estimate refresh interval.
        refresh: u32,
        /// Spec each shard is built from.
        inner: Box<QueueSpec>,
    },
}

impl QueueSpec {
    /// A backend spec with default parameters.
    pub fn backend(kind: QueueKind) -> Self {
        Self::Backend {
            kind,
            ring_order: DEFAULT_RING_ORDER,
            clusters: DEFAULT_CLUSTERS,
        }
    }

    /// A sharded spec with default shards/d/refresh over `inner`.
    pub fn sharded(inner: QueueSpec) -> Self {
        Self::Sharded {
            shards: DEFAULT_SHARDED.shards,
            d: DEFAULT_SHARDED.d,
            refresh: DEFAULT_SHARDED.refresh,
            inner: Box::new(inner),
        }
    }

    /// Parses a spec string: a name, optionally followed by
    /// `:key=value,...`. See the [module docs](self) for the grammar.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let (name, params) = match s.split_once(':') {
            Some((n, p)) => (n.trim(), p),
            None => (s, ""),
        };
        if name == "sharded" {
            return Self::parse_sharded(params);
        }
        let kind = QueueKind::parse(name)
            .ok_or_else(|| format!("unknown queue '{name}' (in spec '{s}')"))?;
        let mut ring_order = DEFAULT_RING_ORDER;
        let mut clusters = DEFAULT_CLUSTERS;
        for tok in params.split(',').filter(|t| !t.trim().is_empty()) {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{tok}' (in spec '{s}')"))?;
            match key.trim() {
                "ring" => ring_order = parse_num(key, val)?,
                "clusters" => clusters = parse_num(key, val)?,
                other => {
                    return Err(format!(
                        "unknown parameter '{other}' for backend '{name}' \
                         (expected ring=, clusters=)"
                    ))
                }
            }
        }
        Ok(Self::Backend {
            kind,
            ring_order,
            clusters,
        })
    }

    /// Parses the parameter tail of a `sharded:` spec. `inner=` consumes
    /// the rest of the string, so it must come last.
    fn parse_sharded(params: &str) -> Result<Self, String> {
        let mut shards = DEFAULT_SHARDED.shards;
        let mut d = DEFAULT_SHARDED.d;
        let mut refresh = DEFAULT_SHARDED.refresh;
        let mut inner = QueueSpec::backend(QueueKind::Lcrq);
        let mut rest = params;
        while !rest.trim().is_empty() {
            if let Some(inner_spec) = rest.trim_start().strip_prefix("inner=") {
                inner = QueueSpec::parse(inner_spec)?;
                rest = "";
                continue;
            }
            let (tok, next) = match rest.split_once(',') {
                Some((a, b)) => (a, b),
                None => (rest, ""),
            };
            rest = next;
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{tok}' (in sharded spec)"))?;
            match key.trim() {
                "shards" => shards = parse_num(key, val)?,
                "d" => d = parse_num(key, val)?,
                "refresh" => refresh = parse_num(key, val)?,
                other => {
                    return Err(format!(
                        "unknown parameter '{other}' for sharded \
                         (expected shards=, d=, refresh=, inner=; inner= must be last)"
                    ))
                }
            }
        }
        Ok(Self::Sharded {
            shards,
            d,
            refresh,
            inner: Box::new(inner),
        })
    }

    /// Parses a command-line list of specs. Lists split on `;` when one is
    /// present; a single spec with parameters (contains `:`) is taken
    /// whole; otherwise bare names split on `,` (the historical syntax).
    /// Sharded specs contain commas, so multi-spec lists involving them
    /// use `;`.
    pub fn parse_list(s: &str) -> Result<Vec<Self>, String> {
        let parts: Vec<&str> = if s.contains(';') {
            s.split(';').collect()
        } else if s.contains(':') {
            vec![s]
        } else {
            s.split(',').collect()
        };
        parts
            .into_iter()
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(Self::parse)
            .collect()
    }

    /// Returns the spec with the ring order overridden, recursing through
    /// sharded wrappers to the backend (what the ring-size sweeps need).
    pub fn with_ring_order(self, ring_order: u32) -> Self {
        match self {
            Self::Backend { kind, clusters, .. } => Self::Backend {
                kind,
                ring_order,
                clusters,
            },
            Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            } => Self::Sharded {
                shards,
                d,
                refresh,
                inner: Box::new(inner.with_ring_order(ring_order)),
            },
        }
    }

    /// Returns the spec with the cluster count overridden, recursing
    /// through sharded wrappers to the backend.
    pub fn with_clusters(self, clusters: usize) -> Self {
        match self {
            Self::Backend {
                kind, ring_order, ..
            } => Self::Backend {
                kind,
                ring_order,
                clusters,
            },
            Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            } => Self::Sharded {
                shards,
                d,
                refresh,
                inner: Box::new(inner.with_clusters(clusters)),
            },
        }
    }

    /// Returns a sharded spec with the shard count overridden (no-op on
    /// backends).
    pub fn with_shards(self, shards: usize) -> Self {
        match self {
            Self::Sharded {
                d, refresh, inner, ..
            } => Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            },
            other => other,
        }
    }

    /// Returns a sharded spec with the sample width overridden (no-op on
    /// backends).
    pub fn with_d(self, d: usize) -> Self {
        match self {
            Self::Sharded {
                shards,
                refresh,
                inner,
                ..
            } => Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            },
            other => other,
        }
    }

    /// Returns a sharded spec with the refresh interval overridden (no-op
    /// on backends).
    pub fn with_refresh(self, refresh: u32) -> Self {
        match self {
            Self::Sharded {
                shards, d, inner, ..
            } => Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            },
            other => other,
        }
    }

    /// Short family name for harness output — matches what
    /// `ConcurrentQueue::name` reports on the built queue.
    pub fn family(&self) -> &'static str {
        match self {
            Self::Backend { kind, .. } => kind.name(),
            Self::Sharded { .. } => "sharded",
        }
    }

    /// Whether the (innermost) backend participates in hierarchical
    /// multi-cluster runs.
    pub fn is_hierarchical(&self) -> bool {
        match self {
            Self::Backend { kind, .. } => kind.is_hierarchical(),
            Self::Sharded { inner, .. } => inner.is_hierarchical(),
        }
    }

    /// The analytic rank-error envelope for histories run at the given
    /// concurrency: 0 for any strict backend; the d-choice envelope
    /// (compounded through nesting) for sharded specs. See
    /// [`lcrq_core::sharded::rank_error_bound_for`].
    pub fn rank_error_bound(&self, threads: usize) -> u64 {
        match self {
            Self::Backend { .. } => 0,
            Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            } => lcrq_core::rank_error_bound_for(*shards, *d, *refresh, threads)
                .saturating_add((*shards as u64).saturating_mul(inner.rank_error_bound(threads))),
        }
    }

    /// Builds the queue this spec describes.
    pub fn build(&self) -> Box<dyn ConcurrentQueue> {
        match self {
            Self::Backend {
                kind,
                ring_order,
                clusters,
            } => {
                let cfg = LcrqConfig::new().with_ring_order(*ring_order);
                match kind {
                    QueueKind::Lcrq => Box::new(Lcrq::with_config(cfg)),
                    QueueKind::LcrqH => Box::new(Lcrq::with_config(
                        cfg.with_hierarchical(HierarchicalConfig::default()),
                    )),
                    QueueKind::LcrqCas => Box::new(LcrqCas::with_config(cfg)),
                    QueueKind::Lscq => Box::new(Lscq::with_config(cfg)),
                    QueueKind::LscqCas => Box::new(LscqCas::with_config(cfg)),
                    QueueKind::Wcq => Box::new(Wcq::with_config(cfg)),
                    QueueKind::Ms => Box::new(MsQueue::new()),
                    QueueKind::TwoLock => Box::new(TwoLockQueue::new()),
                    QueueKind::Cc => Box::new(CcQueue::new()),
                    QueueKind::H => Box::new(HQueue::new((*clusters).max(1))),
                    QueueKind::Fc => Box::new(FcQueue::new()),
                    QueueKind::Infinite => {
                        Box::new(InfiniteArrayQueue::<lcrq_atomic::HardwareFaa>::new())
                    }
                    QueueKind::Sim => Box::new(SimQueue::new()),
                    QueueKind::Optimistic => Box::new(OptimisticQueue::new()),
                    QueueKind::Baskets => Box::new(BasketsQueue::new()),
                }
            }
            Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            } => {
                let cfg = ShardedConfig::new()
                    .with_shards(*shards)
                    .with_d(*d)
                    .with_refresh(*refresh);
                Box::new(ShardedQueue::from_factory(&cfg, |_| inner.build()))
            }
        }
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
    val.trim()
        .parse()
        .map_err(|_| format!("parameter '{key}' has a non-numeric value '{val}'"))
}

impl core::fmt::Display for QueueSpec {
    /// Canonical form: parameters at their defaults are omitted for
    /// backends; sharded specs always spell out `shards`, `d`, and
    /// `inner` (self-description beats brevity there), omitting only a
    /// default `refresh`. `parse(x.to_string()) == x` in all cases.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Backend {
                kind,
                ring_order,
                clusters,
            } => {
                write!(f, "{}", kind.name())?;
                let mut sep = ':';
                if *ring_order != DEFAULT_RING_ORDER {
                    write!(f, "{sep}ring={ring_order}")?;
                    sep = ',';
                }
                if *clusters != DEFAULT_CLUSTERS {
                    write!(f, "{sep}clusters={clusters}")?;
                }
                Ok(())
            }
            Self::Sharded {
                shards,
                d,
                refresh,
                inner,
            } => {
                write!(f, "sharded:shards={shards},d={d}")?;
                if *refresh != DEFAULT_SHARDED.refresh {
                    write!(f, ",refresh={refresh}")?;
                }
                write!(f, ",inner={inner}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for &k in ALL_KINDS {
            assert_eq!(QueueKind::parse(k.name()), Some(k), "{}", k.name());
        }
        assert_eq!(QueueKind::parse("nope"), None);
    }

    #[test]
    fn every_kind_constructs_and_works() {
        for &k in ALL_KINDS {
            let q = QueueSpec::backend(k).with_ring_order(8).build();
            q.enqueue(1);
            q.enqueue(2);
            assert_eq!(q.dequeue(), Some(1), "{}", k.name());
            assert_eq!(q.dequeue(), Some(2));
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    fn trait_names_match_registry_names() {
        for &k in ALL_KINDS {
            let q = QueueSpec::backend(k).build();
            assert_eq!(q.name(), k.name());
        }
        let q = QueueSpec::parse("sharded:inner=lcrq").unwrap().build();
        assert_eq!(q.name(), "sharded");
    }

    #[test]
    fn spec_strings_round_trip_canonically() {
        for s in [
            "lcrq",
            "lcrq:ring=16",
            "h-queue:clusters=4",
            "lcrq:ring=16,clusters=2",
            "sharded:shards=8,d=2,inner=lcrq",
            "sharded:shards=4,d=3,refresh=32,inner=lscq:ring=10",
            "sharded:shards=2,d=2,inner=sharded:shards=3,d=1,inner=ms",
        ] {
            let spec = QueueSpec::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "canonical form");
            assert_eq!(QueueSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // Non-canonical inputs still round-trip through one print cycle.
        for s in ["lcrq:ring=12", "sharded", "sharded:refresh=64,inner=lcrq"] {
            let spec = QueueSpec::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(QueueSpec::parse(&spec.to_string()).unwrap(), spec, "{s}");
        }
    }

    #[test]
    fn randomized_specs_round_trip() {
        // Deterministic randomized round-trip sweep (proptest is an
        // optional feature and off in offline builds; see
        // tests/proptest_queues.rs for the feature-gated variant).
        let mut rng = lcrq_util::XorShift64Star::new(0x5bec);
        for _ in 0..500 {
            let spec = random_spec(&mut rng, 2);
            let printed = spec.to_string();
            let reparsed = QueueSpec::parse(&printed)
                .unwrap_or_else(|e| panic!("printed spec '{printed}' must reparse: {e}"));
            assert_eq!(reparsed, spec, "'{printed}'");
        }
    }

    fn random_spec(rng: &mut lcrq_util::XorShift64Star, depth: usize) -> QueueSpec {
        if depth > 0 && rng.chance(1, 3) {
            QueueSpec::Sharded {
                shards: 1 + rng.next_below(9) as usize,
                d: 1 + rng.next_below(4) as usize,
                refresh: 1 + rng.next_below(128) as u32,
                inner: Box::new(random_spec(rng, depth - 1)),
            }
        } else {
            QueueSpec::Backend {
                kind: ALL_KINDS[rng.next_below(ALL_KINDS.len() as u64) as usize],
                ring_order: 1 + rng.next_below(20) as u32,
                clusters: 1 + rng.next_below(4) as usize,
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nope",
            "lcrq:bogus=1",
            "lcrq:ring=abc",
            "sharded:shards=x,inner=lcrq",
            "sharded:inner=nope",
            "sharded:wat=1",
            "lcrq:ring",
        ] {
            assert!(QueueSpec::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn parse_list_handles_all_three_syntaxes() {
        // Bare-name comma lists (the historical CLI syntax).
        let l = QueueSpec::parse_list("lcrq,ms").unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0], QueueSpec::backend(QueueKind::Lcrq));
        // A single parameterized spec is taken whole despite its commas.
        let l = QueueSpec::parse_list("sharded:shards=4,d=2,inner=lcrq").unwrap();
        assert_eq!(l.len(), 1);
        // Semicolons separate parameterized specs.
        let l = QueueSpec::parse_list("lcrq:ring=16; sharded:shards=4,d=2,inner=lcrq; ms").unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l[2], QueueSpec::backend(QueueKind::Ms));
    }

    #[test]
    fn sharded_spec_builds_a_working_queue() {
        let spec = QueueSpec::parse("sharded:shards=4,d=2,inner=lscq:ring=6").unwrap();
        let q = spec.build();
        for i in 0..100 {
            q.enqueue(i);
        }
        let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(spec.rank_error_bound(4) > 0);
        assert_eq!(QueueSpec::backend(QueueKind::Lcrq).rank_error_bound(4), 0);
    }

    #[test]
    fn overrides_recurse_through_sharded_wrappers() {
        let spec = QueueSpec::parse("sharded:shards=2,d=1,inner=lcrq")
            .unwrap()
            .with_ring_order(4);
        assert_eq!(
            spec.to_string(),
            "sharded:shards=2,d=1,inner=lcrq:ring=4",
            "ring override must reach the backend"
        );
        assert!(!spec.is_hierarchical());
        assert!(QueueSpec::parse("sharded:inner=h-queue")
            .unwrap()
            .is_hierarchical());
    }
}
