//! Queue construction by name, so every harness binary sweeps the same set.

use lcrq_core::infinite::InfiniteArrayQueue;
use lcrq_core::{HierarchicalConfig, Lcrq, LcrqCas, LcrqConfig, Lscq, LscqCas};
use lcrq_queues::{
    BasketsQueue, CcQueue, ConcurrentQueue, FcQueue, HQueue, MsQueue, OptimisticQueue, SimQueue,
    TwoLockQueue,
};

/// The queue algorithms the harness can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// LCRQ with hardware F&A (the paper's contribution).
    Lcrq,
    /// LCRQ with the hierarchical cluster optimization (LCRQ+H).
    LcrqH,
    /// LCRQ with CAS-loop F&A (LCRQ-CAS).
    LcrqCas,
    /// LSCQ: unbounded list of Nikolaev SCQ rings — single-word CAS only.
    Lscq,
    /// LSCQ with CAS-loop F&A (the portable family's ablation twin).
    LscqCas,
    /// Michael & Scott nonblocking queue.
    Ms,
    /// Michael & Scott two-lock queue.
    TwoLock,
    /// CC-Queue (CC-Synch combining).
    Cc,
    /// H-Queue (H-Synch hierarchical combining).
    H,
    /// Flat-combining queue.
    Fc,
    /// The Figure-2 infinite-array queue (study only).
    Infinite,
    /// SimQueue: wait-free P-Sim combining (related work; extension).
    Sim,
    /// Ladan-Mozes & Shavit optimistic queue (related work; extension).
    Optimistic,
    /// Hoffman, Shalev & Shavit baskets queue (related work; extension).
    Baskets,
}

/// Every kind, in the order the paper's figures list them.
pub const ALL_KINDS: &[QueueKind] = &[
    QueueKind::LcrqH,
    QueueKind::Lcrq,
    QueueKind::LcrqCas,
    QueueKind::Lscq,
    QueueKind::LscqCas,
    QueueKind::H,
    QueueKind::Cc,
    QueueKind::Fc,
    QueueKind::Ms,
    QueueKind::TwoLock,
    QueueKind::Infinite,
    QueueKind::Sim,
    QueueKind::Optimistic,
    QueueKind::Baskets,
];

impl QueueKind {
    /// Parses a queue name as used on harness command lines.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "lcrq" => Self::Lcrq,
            "lcrq+h" | "lcrq-h" => Self::LcrqH,
            "lcrq-cas" => Self::LcrqCas,
            "lscq" => Self::Lscq,
            "lscq-cas" => Self::LscqCas,
            "ms" => Self::Ms,
            "two-lock" => Self::TwoLock,
            "cc-queue" | "cc" => Self::Cc,
            "h-queue" | "h" => Self::H,
            "fc-queue" | "fc" => Self::Fc,
            "infinite" | "infinite-array" => Self::Infinite,
            "sim-queue" | "sim" => Self::Sim,
            "optimistic" => Self::Optimistic,
            "baskets" => Self::Baskets,
            _ => return None,
        })
    }

    /// Canonical display name (matches `ConcurrentQueue::name`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Lcrq => "lcrq",
            Self::LcrqH => "lcrq+h",
            Self::LcrqCas => "lcrq-cas",
            Self::Lscq => "lscq",
            Self::LscqCas => "lscq-cas",
            Self::Ms => "ms",
            Self::TwoLock => "two-lock",
            Self::Cc => "cc-queue",
            Self::H => "h-queue",
            Self::Fc => "fc-queue",
            Self::Infinite => "infinite-array",
            Self::Sim => "sim-queue",
            Self::Optimistic => "optimistic",
            Self::Baskets => "baskets",
        }
    }

    /// Whether this kind participates in hierarchical (multi-cluster) runs
    /// in the paper's figures.
    pub fn is_hierarchical(&self) -> bool {
        matches!(self, Self::LcrqH | Self::H)
    }
}

/// Instantiates a queue. `ring_order` applies to the LCRQ/LSCQ variants;
/// `clusters` to the hierarchical algorithms.
pub fn make_queue(kind: QueueKind, ring_order: u32, clusters: usize) -> Box<dyn ConcurrentQueue> {
    let cfg = LcrqConfig::new().with_ring_order(ring_order);
    match kind {
        QueueKind::Lcrq => Box::new(Lcrq::with_config(cfg)),
        QueueKind::LcrqH => Box::new(Lcrq::with_config(
            cfg.with_hierarchical(HierarchicalConfig::default()),
        )),
        QueueKind::LcrqCas => Box::new(LcrqCas::with_config(cfg)),
        QueueKind::Lscq => Box::new(Lscq::with_config(cfg)),
        QueueKind::LscqCas => Box::new(LscqCas::with_config(cfg)),
        QueueKind::Ms => Box::new(MsQueue::new()),
        QueueKind::TwoLock => Box::new(TwoLockQueue::new()),
        QueueKind::Cc => Box::new(CcQueue::new()),
        QueueKind::H => Box::new(HQueue::new(clusters.max(1))),
        QueueKind::Fc => Box::new(FcQueue::new()),
        QueueKind::Infinite => Box::new(InfiniteArrayQueue::<lcrq_atomic::HardwareFaa>::new()),
        QueueKind::Sim => Box::new(SimQueue::new()),
        QueueKind::Optimistic => Box::new(OptimisticQueue::new()),
        QueueKind::Baskets => Box::new(BasketsQueue::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for &k in ALL_KINDS {
            assert_eq!(QueueKind::parse(k.name()), Some(k), "{}", k.name());
        }
        assert_eq!(QueueKind::parse("nope"), None);
    }

    #[test]
    fn every_kind_constructs_and_works() {
        for &k in ALL_KINDS {
            let q = make_queue(k, 8, 2);
            q.enqueue(1);
            q.enqueue(2);
            assert_eq!(q.dequeue(), Some(1), "{}", k.name());
            assert_eq!(q.dequeue(), Some(2));
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    fn trait_names_match_registry_names() {
        for &k in ALL_KINDS {
            let q = make_queue(k, 8, 2);
            assert_eq!(q.name(), k.name());
        }
    }
}
