//! Minimal self-contained timing harness for the `benches/` targets.
//!
//! The workspace must build with no registry access (DESIGN.md "Offline
//! build"), so the `cargo bench` targets cannot depend on criterion. This
//! module reproduces the part we used: auto-calibrated iteration counts and
//! median-of-samples reporting for closures that time themselves (the
//! equivalent of criterion's `iter_custom`).

use std::time::Duration;

/// An auto-calibrating benchmark runner. Each measurement closure receives
/// an iteration count and returns the wall time those iterations took.
pub struct Runner {
    samples: usize,
    target: Duration,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// Default: 5 samples per benchmark, ~200 ms of work per sample.
    /// `LCRQ_BENCH_QUICK=1` drops to 2 samples of ~20 ms for smoke runs.
    pub fn new() -> Self {
        if std::env::var_os("LCRQ_BENCH_QUICK").is_some() {
            Self {
                samples: 2,
                target: Duration::from_millis(20),
            }
        } else {
            Self {
                samples: 5,
                target: Duration::from_millis(200),
            }
        }
    }

    /// Measures `f` and prints one result line.
    ///
    /// `elements` is the number of logical operations one iteration
    /// performs (e.g. `2 * threads` for an enqueue/dequeue-pair workload);
    /// the report is in nanoseconds per element and million elements per
    /// second, matching what criterion's `Throughput::Elements` showed.
    pub fn bench(
        &self,
        group: &str,
        label: &str,
        elements: u64,
        mut f: impl FnMut(u64) -> Duration,
    ) {
        assert!(elements > 0);
        // Calibrate: double the iteration count until one run is long
        // enough to dominate timer noise.
        let mut iters = 1u64;
        loop {
            let d = f(iters);
            if d * 5 >= self.target || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_elem: Vec<f64> = (0..self.samples)
            .map(|_| f(iters).as_nanos() as f64 / (iters * elements) as f64)
            .collect();
        per_elem.sort_by(f64::total_cmp);
        let median = per_elem[per_elem.len() / 2];
        println!(
            "{group}/{label:<24} {median:>10.1} ns/op {:>10.2} Mops ({iters} iters x {} samples)",
            1e3 / median,
            self.samples,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn bench_runs_and_scales_iterations() {
        let runner = Runner {
            samples: 2,
            target: Duration::from_micros(200),
        };
        let mut max_iters = 0u64;
        runner.bench("test", "spin", 1, |iters| {
            max_iters = max_iters.max(iters);
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(Instant::now());
            }
            start.elapsed()
        });
        assert!(max_iters >= 1, "calibration must run at least once");
    }
}
