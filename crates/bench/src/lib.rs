//! Benchmark harness for the LCRQ paper reproduction.
//!
//! Reimplements the methodology of §5 (itself following Fatourou &
//! Kallimanis's benchmark framework): every thread executes `pairs`
//! enqueue/dequeue pairs with a random ≤100 ns pause between operations
//! (defeating artificial "long runs"), threads are pinned when the host has
//! multiple CPUs, results are averaged over repeated runs, and software
//! event counters stand in for the paper's hardware performance counters
//! (DESIGN.md substitution P3).
//!
//! The `src/bin/` binaries regenerate the paper's figures and tables:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig1_counter` | Figure 1 — contended counter, F&A vs CAS loop |
//! | `table1_primitives` | Table 1 — primitive availability |
//! | `fig6_throughput` | Figure 6a/6b — single-processor + oversubscribed |
//! | `fig7_multiprocessor` | Figure 7a/7b — clustered runs, empty/prefilled |
//! | `fig8_latency` | Figure 8 — latency CDFs at max concurrency |
//! | `fig9_ringsize` | Figure 9 — ring-size sensitivity |
//! | `table2_stats` | Table 2 — per-op stats, 1 and 20 threads |
//! | `table3_stats` | Table 3 — per-op stats, 80 threads, empty & full |
//!
//! Beyond the paper, `pairwise` runs the cross-library arena (chaoran's
//! fast-wait-free-queue methodology): every registry spec plus external
//! baselines behind the [`arena::Contender`] trait, multi-run
//! mean/stddev/margin-of-error statistics from [`stats`], and a
//! schema-versioned `results/BENCH_arena.json` that ci.sh's regression
//! gate diffs against the committed baseline. Every binary accepts
//! `--smoke` for a seconds-long bit-rot check (ci.sh runs them all).

#![warn(missing_docs)]

pub mod arena;
pub mod cli;
pub mod json;
pub mod microbench;
pub mod registry;
pub mod stats;
pub mod workload;

pub use arena::{ArenaArtifact, ArenaConfig, Contender};
pub use registry::{QueueKind, QueueSpec, ALL_KINDS};
pub use stats::Summary;
pub use workload::{run_averaged, run_workload, RunConfig, RunResult};
