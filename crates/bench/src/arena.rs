//! Cross-library pairwise arena: every registry backend raced against
//! external baselines under one adapter trait, with chaoran-style
//! multi-run statistics.
//!
//! The harness behind "A Wait-free Queue as Fast as Fetch-and-Add"
//! (SNIPPETS.md snippet 2) races queue implementations through a
//! `pairwise` benchmark — every thread repeatedly executes an
//! enqueue/dequeue pair with an arbitrary 50–150 ns delay between
//! operations to defeat artificial long-run scenarios — and its driver
//! reports the mean of up to ten runs with standard deviation and margin
//! of error. This module is that arena for this repo: a [`Contender`]
//! adapter trait wraps every [`QueueSpec`] the registry can build *and*
//! external baselines, a seeded multi-run driver produces Mops/s samples,
//! and the results serialize into a schema-versioned
//! `results/BENCH_arena.json` that `ci.sh` diffs against the committed
//! baseline (see [`regression_gate`]).
//!
//! ## External contenders
//!
//! The workspace builds offline with no registry dependencies, so the
//! always-available baselines come from `std` (whose `mpsc` has been
//! crossbeam-channel's implementation since Rust 1.67 — racing it *is*
//! racing crossbeam's channel algorithm) plus a classic `Mutex<VecDeque>`
//! and the chaoran `faa` synthetic, which emulates both operations with a
//! single fetch-and-add and upper-bounds what any real queue on the F&A
//! hot path can reach. The genuine `crossbeam-channel` /
//! `crossbeam-queue` adapters are feature-gated behind `crossbeam`
//! (re-add the commented dev-dependencies in `crates/bench/Cargo.toml` on
//! a networked host, same workflow as the root `proptest` feature).
//!
//! ## Delivery validation
//!
//! Arena numbers are only meaningful if the adapter is honest: after
//! every run the driver reconciles dequeue count *and* a wrapping value
//! checksum against what the producers enqueued, then drains the queue
//! dry. A lossy or duplicating adapter fails the run instead of posting a
//! fast-looking number (`tests/contender_contract.rs` holds the
//! per-adapter contract suite).

use crate::registry::QueueSpec;
use crate::stats::Summary;
use lcrq_queues::ConcurrentQueue;
use lcrq_util::spin::spin_for_ns;
use lcrq_util::{CachePadded, XorShift64Star};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Barrier, Mutex};
use std::time::Instant;

/// A queue implementation entered in the arena. The adapter surface is
/// deliberately the minimal MPMC contract every library shares: blocking
/// semantics, value types, and batch APIs all stay outside so external
/// libraries can compete without shims changing their algorithm.
pub trait Contender: Send + Sync {
    /// Enqueues one value (may block for bounded contenders; the pairwise
    /// workload keeps occupancy at most `threads` so bounded contenders
    /// with reasonable capacity never do).
    fn enqueue(&self, value: u64);
    /// Attempts to dequeue; `None` means observed-empty.
    fn dequeue(&self) -> Option<u64>;
    /// `true` for synthetic contenders (the `faa` upper bound) whose
    /// dequeues fabricate values: the driver skips delivery validation
    /// and draining for them.
    fn is_synthetic(&self) -> bool {
        false
    }
}

/// Any registry-built queue competes through its `ConcurrentQueue` vtable
/// unchanged.
impl Contender for Box<dyn ConcurrentQueue> {
    fn enqueue(&self, value: u64) {
        (**self).enqueue(value);
    }

    fn dequeue(&self) -> Option<u64> {
        (**self).dequeue()
    }
}

/// `std::sync::mpsc::channel` — since Rust 1.67 this *is* the
/// crossbeam-channel unbounded algorithm (block-linked segments), making
/// it the portable stand-in for the crossbeam baseline in offline builds.
/// MPMC-ified the standard way: consumers share the `Receiver` behind a
/// mutex (the cost a real deployment of an MPSC channel in an MPMC role
/// pays too).
pub struct StdMpsc {
    tx: mpsc::Sender<u64>,
    rx: Mutex<mpsc::Receiver<u64>>,
}

impl Default for StdMpsc {
    fn default() -> Self {
        let (tx, rx) = mpsc::channel();
        Self {
            tx,
            rx: Mutex::new(rx),
        }
    }
}

impl Contender for StdMpsc {
    fn enqueue(&self, value: u64) {
        // The receiver lives as long as `self`; send cannot fail.
        self.tx.send(value).expect("receiver alive");
    }

    fn dequeue(&self) -> Option<u64> {
        self.rx.lock().unwrap().try_recv().ok()
    }
}

/// `std::sync::mpsc::sync_channel` — the bounded rendezvous-buffer
/// variant (crossbeam's bounded array channel since Rust 1.67).
pub struct StdMpscBounded {
    tx: mpsc::SyncSender<u64>,
    rx: Mutex<mpsc::Receiver<u64>>,
}

impl StdMpscBounded {
    /// Creates the contender with the given buffer capacity. The pairwise
    /// workload holds at most `threads` items in flight, so any capacity
    /// above the thread count never blocks a producer.
    pub fn new(capacity: usize) -> Self {
        let (tx, rx) = mpsc::sync_channel(capacity);
        Self {
            tx,
            rx: Mutex::new(rx),
        }
    }
}

impl Contender for StdMpscBounded {
    fn enqueue(&self, value: u64) {
        self.tx.send(value).expect("receiver alive");
    }

    fn dequeue(&self) -> Option<u64> {
        self.rx.lock().unwrap().try_recv().ok()
    }
}

/// The classic coarse-grained baseline every lock-free paper races: one
/// mutex around a `VecDeque`.
#[derive(Default)]
pub struct MutexDeque {
    inner: Mutex<VecDeque<u64>>,
}

impl Contender for MutexDeque {
    fn enqueue(&self, value: u64) {
        self.inner.lock().unwrap().push_back(value);
    }

    fn dequeue(&self) -> Option<u64> {
        self.inner.lock().unwrap().pop_front()
    }
}

/// The chaoran `faa` synthetic: enqueue and dequeue are each one
/// fetch-and-add on a dedicated cache line. No data moves, so this is the
/// throughput ceiling for any queue that pays at least one F&A per
/// operation — the paper's own cost model for the LCRQ hot path.
#[derive(Default)]
pub struct FaaBound {
    tail: CachePadded<AtomicU64>,
    head: CachePadded<AtomicU64>,
}

impl Contender for FaaBound {
    fn enqueue(&self, _value: u64) {
        self.tail.fetch_add(1, Ordering::AcqRel);
    }

    fn dequeue(&self) -> Option<u64> {
        Some(self.head.fetch_add(1, Ordering::AcqRel))
    }

    fn is_synthetic(&self) -> bool {
        true
    }
}

/// Adapters for the real crossbeam crates. Compiled only with the
/// `crossbeam` feature; enabling it requires re-adding the commented
/// optional dependencies in `crates/bench/Cargo.toml` on a networked host
/// (the default build must resolve offline — see DESIGN.md "Offline
/// build").
#[cfg(feature = "crossbeam")]
pub mod crossbeam_adapters {
    use super::{Contender, Mutex};

    /// `crossbeam_channel::unbounded` (natively MPMC — no receiver lock).
    pub struct CbChannel {
        tx: crossbeam_channel::Sender<u64>,
        rx: crossbeam_channel::Receiver<u64>,
    }

    impl Default for CbChannel {
        fn default() -> Self {
            let (tx, rx) = crossbeam_channel::unbounded();
            Self { tx, rx }
        }
    }

    impl Contender for CbChannel {
        fn enqueue(&self, value: u64) {
            self.tx.send(value).expect("receiver alive");
        }

        fn dequeue(&self) -> Option<u64> {
            self.rx.try_recv().ok()
        }
    }

    /// `crossbeam_queue::SegQueue` — unbounded segmented MPMC queue.
    #[derive(Default)]
    pub struct CbSegQueue(crossbeam_queue::SegQueue<u64>);

    impl Contender for CbSegQueue {
        fn enqueue(&self, value: u64) {
            self.0.push(value);
        }

        fn dequeue(&self) -> Option<u64> {
            self.0.pop()
        }
    }

    /// `crossbeam_queue::ArrayQueue` — bounded MPMC ring. Push spins on
    /// full (cannot happen in the pairwise workload with capacity above
    /// the thread count).
    pub struct CbArrayQueue(crossbeam_queue::ArrayQueue<u64>);

    impl CbArrayQueue {
        /// Creates the contender with the given ring capacity.
        pub fn new(capacity: usize) -> Self {
            Self(crossbeam_queue::ArrayQueue::new(capacity))
        }
    }

    impl Contender for CbArrayQueue {
        fn enqueue(&self, value: u64) {
            let mut v = value;
            while let Err(back) = self.0.push(v) {
                v = back;
                std::hint::spin_loop();
            }
        }

        fn dequeue(&self) -> Option<u64> {
            self.0.pop()
        }
    }

    // Referenced so the module is not dead code when the feature is on
    // but no roster includes the adapters yet.
    #[allow(dead_code)]
    fn _assert_contender(_: &dyn Contender, _: &Mutex<()>) {}
}

/// One arena entrant: a display name plus a factory (each measured run
/// gets a fresh instance, so no state leaks between runs).
pub struct Entry {
    /// Canonical display name (registry entries use the `QueueSpec`
    /// canonical string, so gate configs and CLI filters share one
    /// vocabulary).
    pub name: String,
    /// `true` for non-registry baselines.
    pub external: bool,
    /// `true` for the synthetic upper bound (skips delivery validation).
    pub synthetic: bool,
    make: Box<dyn Fn() -> Box<dyn Contender>>,
}

impl Entry {
    /// An entry wrapping a registry spec.
    pub fn from_spec(spec: &QueueSpec) -> Self {
        let spec = spec.clone();
        Self {
            name: spec.to_string(),
            external: false,
            synthetic: false,
            make: Box::new(move || Box::new(spec.build())),
        }
    }

    /// An external (non-registry) entry built by `make`.
    pub fn external(
        name: &str,
        synthetic: bool,
        make: impl Fn() -> Box<dyn Contender> + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            external: true,
            synthetic,
            make: Box::new(make),
        }
    }

    /// Builds a fresh contender instance.
    pub fn build(&self) -> Box<dyn Contender> {
        (self.make)()
    }
}

/// Capacity for bounded external contenders: far above any in-flight
/// population the pairwise workload can create, so bounded semantics
/// never distort the comparison.
pub const BOUNDED_CAPACITY: usize = 4096;

/// The registry side of the default roster: all 15 backend kinds plus the
/// flagship sharded composition, at the given ring order.
pub fn registry_entries(ring_order: u32) -> Vec<Entry> {
    let mut entries: Vec<Entry> = crate::registry::ALL_KINDS
        .iter()
        .map(|&k| Entry::from_spec(&QueueSpec::backend(k).with_ring_order(ring_order)))
        .collect();
    let flagship = QueueSpec::parse(SHARDED_FLAGSHIP)
        .expect("flagship spec parses")
        .with_ring_order(ring_order);
    entries.push(Entry::from_spec(&flagship));
    entries
}

/// The external baselines available in every (offline) build.
pub fn external_entries() -> Vec<Entry> {
    // `mut` is only exercised when the crossbeam feature appends adapters.
    #[cfg_attr(not(feature = "crossbeam"), allow(unused_mut))]
    let mut entries = vec![
        Entry::external("std-mpsc", false, || Box::new(StdMpsc::default())),
        Entry::external("std-mpsc-bounded", false, || {
            Box::new(StdMpscBounded::new(BOUNDED_CAPACITY))
        }),
        Entry::external("mutex-deque", false, || Box::new(MutexDeque::default())),
        Entry::external("faa", true, || Box::new(FaaBound::default())),
    ];
    #[cfg(feature = "crossbeam")]
    {
        entries.push(Entry::external("crossbeam-channel", false, || {
            Box::new(crossbeam_adapters::CbChannel::default())
        }));
        entries.push(Entry::external("crossbeam-seg", false, || {
            Box::new(crossbeam_adapters::CbSegQueue::default())
        }));
        entries.push(Entry::external("crossbeam-array", false, || {
            Box::new(crossbeam_adapters::CbArrayQueue::new(BOUNDED_CAPACITY))
        }));
    }
    entries
}

/// The full default roster: registry entries then external baselines.
pub fn default_roster(ring_order: u32) -> Vec<Entry> {
    let mut r = registry_entries(ring_order);
    r.extend(external_entries());
    r
}

/// Parameters of one arena cell (contender × threads).
#[derive(Debug, Clone)]
pub struct ArenaConfig {
    /// Worker threads, each running enqueue/dequeue pairs.
    pub threads: usize,
    /// Pairs per thread per run.
    pub pairs: u64,
    /// Inclusive randomized inter-operation delay range (chaoran uses
    /// 50–150 ns).
    pub delay_ns: (u64, u64),
    /// Measured runs (samples for the statistics).
    pub runs: usize,
    /// Warmup runs discarded before measuring.
    pub warmup: usize,
    /// Base RNG seed: thread/run streams derive from it, so
    /// `LCRQ_TEST_SEED` replays the exact delay schedule.
    pub seed: u64,
}

impl ArenaConfig {
    /// The default arena cell shape (seed still comes from
    /// [`lcrq_util::rng::test_seed`] at the call site).
    pub fn new(threads: usize, seed: u64) -> Self {
        Self {
            threads,
            pairs: 5_000,
            delay_ns: (50, 150),
            runs: 6,
            warmup: 1,
            seed,
        }
    }
}

/// splitmix64 — decorrelates per-(run, thread) RNG streams from the base
/// seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one pairwise measurement: `threads` workers each execute `pairs`
/// enqueue/dequeue pairs with the seeded randomized delay between
/// operations. Returns Mops/s, after reconciling delivery (count and
/// wrapping value checksum, queue drained dry) for non-synthetic
/// contenders — a broken adapter is an `Err`, not a fast number.
pub fn pairwise_run(c: &dyn Contender, cfg: &ArenaConfig, run_idx: usize) -> Result<f64, String> {
    let threads = cfg.threads;
    let (lo, hi) = cfg.delay_ns;
    assert!(threads > 0 && cfg.pairs > 0 && lo <= hi);
    let produced = threads as u64 * cfg.pairs;
    let deq_count = AtomicU64::new(0);
    let deq_sum = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let (deq_count_ref, deq_sum_ref, barrier_ref) = (&deq_count, &deq_sum, &barrier);

    let start = std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut rng =
                    XorShift64Star::new(mix(cfg.seed ^ mix(run_idx as u64) ^ mix(t as u64)));
                let mut count = 0u64;
                let mut sum = 0u64;
                barrier_ref.wait();
                for i in 0..cfg.pairs {
                    c.enqueue(((t as u64) << 40) | i);
                    spin_for_ns(lo + rng.next_below(hi - lo + 1));
                    if let Some(v) = c.dequeue() {
                        count += 1;
                        sum = sum.wrapping_add(v);
                    }
                    spin_for_ns(lo + rng.next_below(hi - lo + 1));
                }
                deq_count_ref.fetch_add(count, Ordering::Relaxed);
                deq_sum_ref.fetch_add(sum, Ordering::Relaxed);
            });
        }
        let start = Instant::now();
        barrier_ref.wait();
        start
    });
    let wall = start.elapsed();

    if !c.is_synthetic() {
        // Every produced value must come out exactly once: what the
        // workers didn't dequeue must still be in the queue, and the
        // wrapping sum over both must reconcile.
        let mut count = deq_count.load(Ordering::Relaxed);
        let mut sum = deq_sum.load(Ordering::Relaxed);
        while let Some(v) = c.dequeue() {
            count += 1;
            sum = sum.wrapping_add(v);
        }
        let mut expect_sum = 0u64;
        for t in 0..threads as u64 {
            // Σ_i ((t<<40) | i) for i < pairs, with i < 2^40 so | is +.
            expect_sum = expect_sum
                .wrapping_add((t << 40).wrapping_mul(cfg.pairs))
                .wrapping_add(cfg.pairs.wrapping_mul(cfg.pairs - 1) / 2);
        }
        if count != produced || sum != expect_sum {
            return Err(format!(
                "delivery violation: {count} of {produced} values accounted for \
                 (checksum {sum:#x}, expected {expect_sum:#x}) — \
                 replay with LCRQ_TEST_SEED={:#x}",
                cfg.seed
            ));
        }
    }

    let ops = 2 * produced;
    Ok(ops as f64 / wall.as_secs_f64() / 1e6)
}

/// Runs one entry through warmup + measured runs with a fresh contender
/// instance per run. Returns the measured Mops/s samples.
pub fn run_entry(entry: &Entry, cfg: &ArenaConfig) -> Result<Vec<f64>, String> {
    for w in 0..cfg.warmup {
        let c = entry.build();
        pairwise_run(&*c, cfg, w).map_err(|e| format!("{} (warmup): {e}", entry.name))?;
    }
    (0..cfg.runs)
        .map(|r| {
            let c = entry.build();
            pairwise_run(&*c, cfg, cfg.warmup + r).map_err(|e| format!("{}: {e}", entry.name))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Artifact: schema-versioned machine-readable results.
// ---------------------------------------------------------------------------

/// Artifact schema identifier (`"schema"` field).
pub const ARENA_SCHEMA: &str = "lcrq-bench/arena";
/// Current artifact schema version; [`ArenaArtifact::parse`] rejects
/// anything else so gate comparisons never cross schema revisions
/// silently.
pub const ARENA_SCHEMA_VERSION: u64 = 1;

/// The flagship configurations the ci.sh regression gate protects.
pub const FLAGSHIPS: &[&str] = &["lcrq", "wcq", SHARDED_FLAGSHIP];
/// Canonical spec string of the flagship sharded composition.
pub const SHARDED_FLAGSHIP: &str = "sharded:shards=8,d=2,inner=lcrq";
/// Throughput may drop this much (percent) before the gate fails; noisier
/// cells additionally get their combined margins of error as slack (a
/// drop must be both large *and* statistically real to fail).
pub const GATE_DROP_PCT: f64 = 10.0;

/// One measured arena cell.
#[derive(Debug, Clone)]
pub struct ArenaRow {
    /// Contender display name ([`Entry::name`]).
    pub contender: String,
    /// Whether the contender is an external baseline.
    pub external: bool,
    /// Whether the contender is synthetic (skips delivery validation).
    pub synthetic: bool,
    /// Worker thread count.
    pub threads: usize,
    /// Raw per-run Mops/s samples (post-warmup).
    pub samples: Vec<f64>,
    /// Summary statistics over `samples`.
    pub summary: Summary,
}

/// A complete arena artifact (one `BENCH_arena.json`).
#[derive(Debug, Clone)]
pub struct ArenaArtifact {
    /// Base seed the delay RNG streams derive from.
    pub seed: u64,
    /// Pairs per thread per run.
    pub pairs: u64,
    /// Measured runs per cell.
    pub runs: usize,
    /// Discarded warmup runs per cell.
    pub warmup: usize,
    /// Inclusive inter-operation delay range in ns.
    pub delay_ns: (u64, u64),
    /// CAS2 path the producing build routed `AtomicPair` through
    /// (`lcrq_atomic::cas2_backend()`): numbers from a `force-fallback`
    /// or portable run must never be confused with native ones.
    /// `"unknown"` when read from a pre-field artifact.
    pub cas2_backend: String,
    /// Measured cells.
    pub rows: Vec<ArenaRow>,
}

impl ArenaArtifact {
    /// Finds the row for a (contender, threads) cell.
    pub fn row(&self, contender: &str, threads: usize) -> Option<&ArenaRow> {
        self.rows
            .iter()
            .find(|r| r.contender == contender && r.threads == threads)
    }

    /// Serializes to the schema-versioned JSON document. Hand-rolled like
    /// the other emitters: every value is a number, bool, or an
    /// escape-free spec string.
    pub fn render(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"schema\": \"{ARENA_SCHEMA}\",\n  \
             \"schema_version\": {ARENA_SCHEMA_VERSION},\n  \
             \"bench\": \"pairwise\",\n  \
             \"seed\": \"{:#x}\",\n  \
             \"pairs\": {},\n  \"runs\": {},\n  \"warmup_runs\": {},\n  \
             \"delay_ns\": [{}, {}],\n  \
             \"cas2_backend\": \"{}\",\n  \"rows\": [\n",
            self.seed,
            self.pairs,
            self.runs,
            self.warmup,
            self.delay_ns.0,
            self.delay_ns.1,
            self.cas2_backend
        ));
        for (i, r) in self.rows.iter().enumerate() {
            let samples = r
                .samples
                .iter()
                .map(|x| format!("{x:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "    {{\"contender\": \"{}\", \"external\": {}, \"synthetic\": {}, \
                 \"threads\": {}, \"runs\": {}, \"mean_mops\": {:.6}, \
                 \"stddev_mops\": {:.6}, \"moe_mops\": {:.6}, \"moe_pct\": {:.3}, \
                 \"samples\": [{}]}}{}\n",
                r.contender,
                r.external,
                r.synthetic,
                r.threads,
                r.summary.n,
                r.summary.mean,
                r.summary.stddev,
                r.summary.moe,
                r.summary.moe_pct(),
                samples,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses and validates an artifact document. Rejects wrong schema
    /// identifiers and versions outright.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = crate::json::Value::parse(text)?;
        let schema = v.get("schema").and_then(|s| s.as_str()).unwrap_or("");
        if schema != ARENA_SCHEMA {
            return Err(format!(
                "not an arena artifact (schema '{schema}', expected '{ARENA_SCHEMA}')"
            ));
        }
        let version = v
            .get("schema_version")
            .and_then(|n| n.as_u64())
            .ok_or("missing schema_version")?;
        if version != ARENA_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {ARENA_SCHEMA_VERSION})"
            ));
        }
        let seed_str = v.get("seed").and_then(|s| s.as_str()).unwrap_or("0");
        let seed = parse_seed(seed_str)?;
        let get_u64 = |key: &str| {
            v.get(key)
                .and_then(|n| n.as_u64())
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let delay = v
            .get("delay_ns")
            .and_then(|d| d.as_arr())
            .filter(|a| a.len() == 2)
            .ok_or("missing delay_ns [lo, hi]")?;
        let delay_ns = (
            delay[0].as_u64().ok_or("bad delay_ns[0]")?,
            delay[1].as_u64().ok_or("bad delay_ns[1]")?,
        );
        let rows = v
            .get("rows")
            .and_then(|r| r.as_arr())
            .ok_or("missing rows array")?
            .iter()
            .map(parse_row)
            .collect::<Result<Vec<_>, _>>()?;
        // Absent in schema-v1 artifacts written before the field existed;
        // lenient so the committed baseline stays readable.
        let cas2_backend = v
            .get("cas2_backend")
            .and_then(|s| s.as_str())
            .unwrap_or("unknown")
            .to_string();
        Ok(Self {
            seed,
            pairs: get_u64("pairs")?,
            runs: get_u64("runs")? as usize,
            warmup: get_u64("warmup_runs")? as usize,
            delay_ns,
            cas2_backend,
            rows,
        })
    }
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    }
    .map_err(|_| format!("bad seed '{s}'"))
}

fn parse_row(v: &crate::json::Value) -> Result<ArenaRow, String> {
    let contender = v
        .get("contender")
        .and_then(|s| s.as_str())
        .ok_or("row missing contender")?
        .to_string();
    let num = |key: &str| {
        v.get(key)
            .and_then(|n| n.as_f64())
            .ok_or_else(|| format!("row '{contender}' missing numeric '{key}'"))
    };
    let samples = v
        .get("samples")
        .and_then(|s| s.as_arr())
        .map(|a| a.iter().filter_map(|x| x.as_f64()).collect())
        .unwrap_or_default();
    Ok(ArenaRow {
        external: v.get("external").and_then(|b| b.as_bool()).unwrap_or(false),
        synthetic: v
            .get("synthetic")
            .and_then(|b| b.as_bool())
            .unwrap_or(false),
        threads: num("threads")? as usize,
        summary: Summary {
            n: num("runs")? as usize,
            mean: num("mean_mops")?,
            stddev: num("stddev_mops")?,
            moe: num("moe_mops")?,
        },
        samples,
        contender,
    })
}

// ---------------------------------------------------------------------------
// Regression gate.
// ---------------------------------------------------------------------------

/// Result of one gate evaluation: human-readable per-cell lines plus the
/// failures (empty = gate passes).
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// One line per compared cell (for the gate's report output).
    pub lines: Vec<String>,
    /// Failure descriptions; non-empty fails the gate.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Diffs `candidate` against `baseline` for the flagship contenders:
/// every candidate cell naming a flagship is matched to the baseline cell
/// with the same (contender, threads) key, and fails the gate if its mean
/// throughput dropped more than `max(`[`GATE_DROP_PCT`]`, moe_b% + moe_c%)`
/// — i.e. the drop must be both over threshold and outside the combined
/// 95 % noise margins. A flagship with no comparable cell at all is a
/// failure too (a gate that silently skips is no gate; the self-test in
/// `tests/arena_gate.rs` mutation-checks both paths).
pub fn regression_gate(
    baseline: &ArenaArtifact,
    candidate: &ArenaArtifact,
    flagships: &[String],
) -> GateOutcome {
    let mut out = GateOutcome::default();
    for flagship in flagships {
        let mut compared = 0;
        for cand in candidate.rows.iter().filter(|r| &r.contender == flagship) {
            let Some(base) = baseline.row(&cand.contender, cand.threads) else {
                continue;
            };
            compared += 1;
            let drop_pct = if base.summary.mean > 0.0 {
                100.0 * (1.0 - cand.summary.mean / base.summary.mean)
            } else {
                0.0
            };
            let allowed = GATE_DROP_PCT.max(base.summary.moe_pct() + cand.summary.moe_pct());
            let verdict = if drop_pct > allowed { "FAIL" } else { "ok" };
            out.lines.push(format!(
                "{} @{}t: baseline {:.3} ±{:.3} Mops/s, candidate {:.3} ±{:.3} → \
                 drop {:+.1}% (allowed {:.1}%) {}",
                cand.contender,
                cand.threads,
                base.summary.mean,
                base.summary.moe,
                cand.summary.mean,
                cand.summary.moe,
                drop_pct,
                allowed,
                verdict
            ));
            if drop_pct > allowed {
                out.failures.push(format!(
                    "{} @{}t dropped {:.1}% (> {:.1}% allowed)",
                    cand.contender, cand.threads, drop_pct, allowed
                ));
            }
        }
        if compared == 0 {
            out.failures.push(format!(
                "flagship '{flagship}' has no comparable cells in both artifacts"
            ));
        }
    }
    out
}

/// Returns a copy of `artifact` with the flagship rows' throughput scaled
/// by `factor` (samples and summary together, so the fixture stays
/// internally consistent). `factor = 0.8` plants the 20 % drop the gate
/// self-test must catch; `factor = 1.0` is the must-pass twin.
pub fn plant_drop(artifact: &ArenaArtifact, flagships: &[String], factor: f64) -> ArenaArtifact {
    let mut out = artifact.clone();
    for row in &mut out.rows {
        if flagships.contains(&row.contender) {
            for s in &mut row.samples {
                *s *= factor;
            }
            row.summary.mean *= factor;
            row.summary.stddev *= factor;
            row.summary.moe *= factor;
        }
    }
    out
}

/// Owned-string copy of [`FLAGSHIPS`] (gate entry points take `&[String]`
/// so CLI overrides slot in).
pub fn flagship_names() -> Vec<String> {
    FLAGSHIPS.iter().map(|s| s.to_string()).collect()
}

/// Derives the gate self-test fixture pair from `baseline`: the planted
/// `_drop` twin (flagship throughput × 0.8) and the identity `_pass`
/// twin. The pair is verified on the spot — the drop must fail the gate
/// on **every** flagship and the identity must pass — so a baseline too
/// noisy for its own gate (combined margins of error swallowing a 20 %
/// drop) is rejected here, at refresh time, instead of silently shipping
/// a self-test that can't catch anything.
pub fn make_fixtures(
    baseline: &ArenaArtifact,
    flagships: &[String],
) -> Result<(ArenaArtifact, ArenaArtifact), String> {
    let drop = plant_drop(baseline, flagships, 0.8);
    let outcome = regression_gate(baseline, &drop, flagships);
    for flagship in flagships {
        if !outcome
            .failures
            .iter()
            .any(|f| f.starts_with(&format!("{flagship} @")))
        {
            return Err(format!(
                "baseline is too noisy to gate '{flagship}': a planted 20% drop stays \
                 inside the combined margins of error — re-measure the baseline with \
                 more runs (seed {:#x})",
                baseline.seed
            ));
        }
    }
    let identity = regression_gate(baseline, baseline, flagships);
    if !identity.passed() {
        return Err(format!(
            "baseline does not pass its own gate: {:?}",
            identity.failures
        ));
    }
    Ok((drop, baseline.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::QueueKind;

    fn tiny_cfg() -> ArenaConfig {
        ArenaConfig {
            threads: 2,
            pairs: 300,
            delay_ns: (0, 10),
            runs: 2,
            warmup: 0,
            seed: 0x5EED,
        }
    }

    #[test]
    fn registry_roster_covers_all_kinds_plus_flagship() {
        let entries = registry_entries(6);
        assert_eq!(entries.len(), crate::registry::ALL_KINDS.len() + 1);
        assert_eq!(
            entries.last().unwrap().name,
            "sharded:shards=8,d=2,inner=lcrq:ring=6"
        );
        assert!(entries.iter().all(|e| !e.external && !e.synthetic));
        // At the default ring order the flagship name matches the gate's
        // canonical FLAGSHIPS entry exactly.
        assert_eq!(
            registry_entries(crate::registry::DEFAULT_RING_ORDER)
                .last()
                .unwrap()
                .name,
            SHARDED_FLAGSHIP
        );
    }

    #[test]
    fn external_roster_has_at_least_four_contenders() {
        let ext = external_entries();
        assert!(ext.len() >= 4, "{} externals", ext.len());
        assert!(ext.iter().all(|e| e.external));
        assert_eq!(ext.iter().filter(|e| e.synthetic).count(), 1, "only faa");
    }

    #[test]
    fn pairwise_run_measures_registry_and_external_contenders() {
        let cfg = tiny_cfg();
        for entry in [
            Entry::from_spec(&QueueSpec::backend(QueueKind::Lcrq).with_ring_order(6)),
            Entry::external("std-mpsc", false, || Box::new(StdMpsc::default())),
            Entry::external("mutex-deque", false, || Box::new(MutexDeque::default())),
            Entry::external("faa", true, || Box::new(FaaBound::default())),
        ] {
            let samples = run_entry(&entry, &cfg).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(samples.len(), cfg.runs, "{}", entry.name);
            assert!(samples.iter().all(|&m| m > 0.0), "{}", entry.name);
        }
    }

    /// A deliberately broken adapter: drops every 7th dequeued value. The
    /// driver's delivery reconciliation must refuse to report a number
    /// for it — this is the meter-mutant for the arena itself.
    struct Lossy {
        inner: MutexDeque,
        drops: AtomicU64,
    }

    impl Contender for Lossy {
        fn enqueue(&self, value: u64) {
            self.inner.enqueue(value);
        }

        fn dequeue(&self) -> Option<u64> {
            let v = self.inner.dequeue()?;
            if self.drops.fetch_add(1, Ordering::Relaxed) % 7 == 6 {
                return self.inner.dequeue(); // swallow v: lost forever
            }
            Some(v)
        }
    }

    #[test]
    fn lossy_adapter_is_rejected_not_measured() {
        let entry = Entry::external("lossy", false, || {
            Box::new(Lossy {
                inner: MutexDeque::default(),
                drops: AtomicU64::new(0),
            })
        });
        let err = run_entry(&entry, &tiny_cfg()).unwrap_err();
        assert!(err.contains("delivery violation"), "{err}");
        assert!(err.contains("LCRQ_TEST_SEED"), "must print the seed: {err}");
    }

    fn sample_artifact() -> ArenaArtifact {
        let mk = |name: &str, threads: usize, samples: &[f64]| ArenaRow {
            contender: name.to_string(),
            external: false,
            synthetic: false,
            threads,
            samples: samples.to_vec(),
            summary: Summary::from_samples(samples).unwrap(),
        };
        ArenaArtifact {
            seed: 0xDEAD_BEEF,
            pairs: 5000,
            runs: 3,
            warmup: 1,
            delay_ns: (50, 150),
            cas2_backend: lcrq_atomic::cas2_backend().to_string(),
            // Tight samples (moe ≈ 2–3 % of the mean): the gate's noise
            // allowance stays below the planted 20 % drop, as a usable
            // committed baseline's must (make_fixtures verifies this for
            // the real artifact).
            rows: vec![
                mk("lcrq", 4, &[5.0, 5.05, 4.95]),
                mk("wcq", 4, &[4.0, 4.02, 3.98]),
                mk(SHARDED_FLAGSHIP, 4, &[6.0, 6.06, 5.94]),
                mk("ms", 4, &[2.0, 2.1, 1.9]),
            ],
        }
    }

    #[test]
    fn artifact_renders_and_parses_round_trip() {
        let a = sample_artifact();
        let text = a.render();
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"seed\": \"0xdeadbeef\""));
        let b = ArenaArtifact::parse(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(b.seed, a.seed);
        assert_eq!((b.pairs, b.runs, b.warmup), (a.pairs, a.runs, a.warmup));
        assert_eq!(b.delay_ns, a.delay_ns);
        assert_eq!(b.cas2_backend, a.cas2_backend);
        assert!(!b.cas2_backend.is_empty());
        assert_eq!(b.rows.len(), a.rows.len());
        let (ra, rb) = (&a.rows[0], &b.rows[0]);
        assert_eq!(rb.contender, ra.contender);
        assert!((rb.summary.mean - ra.summary.mean).abs() < 1e-6);
        assert!((rb.summary.moe - ra.summary.moe).abs() < 1e-6);
        assert_eq!(rb.samples.len(), ra.samples.len());
    }

    #[test]
    fn parse_defaults_cas2_backend_for_pre_field_artifacts() {
        // Committed schema-v1 baselines predate the field; they must stay
        // readable, reporting "unknown" rather than failing the gate.
        let a = sample_artifact().render();
        let legacy: String = a
            .lines()
            .filter(|l| !l.contains("cas2_backend"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = ArenaArtifact::parse(&legacy).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(parsed.cas2_backend, "unknown");
    }

    #[test]
    fn parse_rejects_foreign_and_future_schemas() {
        let a = sample_artifact().render();
        let wrong_schema = a.replace("lcrq-bench/arena", "somebody-else/arena");
        assert!(ArenaArtifact::parse(&wrong_schema).is_err());
        let future = a.replace("\"schema_version\": 1", "\"schema_version\": 2");
        let err = ArenaArtifact::parse(&future).unwrap_err();
        assert!(err.contains("schema_version 2"), "{err}");
        assert!(ArenaArtifact::parse("{}").is_err());
    }

    #[test]
    fn gate_passes_identical_artifacts() {
        let a = sample_artifact();
        let out = regression_gate(&a, &a.clone(), &flagship_names());
        assert!(out.passed(), "{:?}", out.failures);
        assert_eq!(out.lines.len(), 3, "three flagship cells compared");
    }

    #[test]
    fn gate_fails_on_planted_twenty_percent_drop() {
        let a = sample_artifact();
        let dropped = plant_drop(&a, &flagship_names(), 0.8);
        let out = regression_gate(&a, &dropped, &flagship_names());
        assert_eq!(out.failures.len(), 3, "{:?}", out.failures);
        // And the parse→gate path (what ci.sh runs) agrees.
        let reparsed = ArenaArtifact::parse(&dropped.render()).unwrap();
        assert!(!regression_gate(&a, &reparsed, &flagship_names()).passed());
    }

    #[test]
    fn gate_tolerates_small_drops_and_noise() {
        let a = sample_artifact();
        // 5% < the 10% threshold: must pass.
        let small = plant_drop(&a, &flagship_names(), 0.95);
        assert!(regression_gate(&a, &small, &flagship_names()).passed());
        // Non-flagship rows may tank freely.
        let mut ms_tanked = a.clone();
        ms_tanked.rows[3].summary.mean *= 0.1;
        assert!(regression_gate(&a, &ms_tanked, &flagship_names()).passed());
    }

    #[test]
    fn gate_fails_when_a_flagship_is_missing() {
        let a = sample_artifact();
        let mut missing = a.clone();
        missing.rows.retain(|r| r.contender != "wcq");
        let out = regression_gate(&a, &missing, &flagship_names());
        assert!(!out.passed());
        assert!(
            out.failures.iter().any(|f| f.contains("wcq")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn gate_widens_allowance_for_noisy_cells() {
        let mut a = sample_artifact();
        // Make the lcrq baseline cell very noisy: moe_pct ≈ 30%.
        a.rows[0].summary.moe = a.rows[0].summary.mean * 0.30;
        let dropped = plant_drop(&a, &flagship_names(), 0.80);
        let out = regression_gate(&a, &dropped, &flagship_names());
        // wcq and sharded still fail; the noisy lcrq cell is within margin
        // (starts_with: the sharded flagship's name contains "lcrq" too).
        assert_eq!(out.failures.len(), 2, "{:?}", out.failures);
        assert!(
            out.failures.iter().all(|f| !f.starts_with("lcrq @")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn make_fixtures_verifies_the_pair_and_rejects_noisy_baselines() {
        let a = sample_artifact();
        let (drop, pass) = make_fixtures(&a, &flagship_names()).unwrap();
        assert!(!regression_gate(&a, &drop, &flagship_names()).passed());
        assert!(regression_gate(&a, &pass, &flagship_names()).passed());
        // A baseline whose wcq cell is noisy enough to swallow 20% must be
        // rejected at fixture time, naming the culprit.
        let mut noisy = a.clone();
        noisy.rows[1].summary.moe = noisy.rows[1].summary.mean * 0.15;
        let err = make_fixtures(&noisy, &flagship_names()).unwrap_err();
        assert!(err.contains("wcq") && err.contains("more runs"), "{err}");
    }

    #[test]
    fn seed_strings_parse_in_hex_and_decimal() {
        assert_eq!(parse_seed("0xBEEF").unwrap(), 0xBEEF);
        assert_eq!(parse_seed("48879").unwrap(), 48879);
        assert!(parse_seed("zork").is_err());
    }
}
