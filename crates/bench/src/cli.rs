//! A tiny `--flag value` argument parser shared by the harness binaries
//! (keeping the workspace dependency-free beyond the approved dev tools).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Cli {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args()` (skipping the binary name). `--key value`
    /// becomes a flag; a `--key` followed by another `--…` (or nothing) is a
    /// boolean switch.
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests).
    pub fn parse_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = Cli::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    cli.flags.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    cli.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        cli
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Raw string value of `--key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Whether the boolean switch `--key` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key) || self.flags.contains_key(key)
    }

    /// Parses a comma-separated list flag, e.g. `--threads 1,2,4,8`.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.flags.get(key) {
            Some(v) => v.split(',').filter_map(|p| p.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }

    /// Whether `--smoke` was given. Every harness binary honors it by
    /// shrinking its defaults to a seconds-long configuration — ci.sh runs
    /// each bin once in smoke mode so bench code cannot bit-rot between
    /// release benchmarking sessions. Explicit flags still win over the
    /// smoke defaults.
    pub fn smoke(&self) -> bool {
        self.has("smoke")
    }

    /// Like [`get`](Cli::get), but defaulting to `smoke_default` when
    /// `--smoke` is set (and `--key` is absent).
    pub fn get_smoke<T: std::str::FromStr>(&self, key: &str, default: T, smoke_default: T) -> T {
        let d = if self.smoke() { smoke_default } else { default };
        self.get(key, d)
    }

    /// Like [`get_list`](Cli::get_list), but defaulting to `smoke_default`
    /// when `--smoke` is set (and `--key` is absent).
    pub fn get_list_smoke(
        &self,
        key: &str,
        default: &[usize],
        smoke_default: &[usize],
    ) -> Vec<usize> {
        let d = if self.smoke() { smoke_default } else { default };
        self.get_list(key, d)
    }
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_switches() {
        let c = cli(&["--pairs", "5000", "--oversubscribed", "--ring-order", "14"]);
        assert_eq!(c.get("pairs", 0u64), 5000);
        assert_eq!(c.get("ring-order", 0u32), 14);
        assert!(c.has("oversubscribed"));
        assert!(!c.has("missing"));
        assert_eq!(c.get("missing", 7u32), 7);
    }

    #[test]
    fn parses_lists() {
        let c = cli(&["--threads", "1,2, 4,8"]);
        assert_eq!(c.get_list("threads", &[]), vec![1, 2, 4, 8]);
        assert_eq!(c.get_list("absent", &[3]), vec![3]);
    }

    #[test]
    fn bad_values_fall_back_to_default() {
        let c = cli(&["--pairs", "abc"]);
        assert_eq!(c.get("pairs", 42u64), 42);
    }

    #[test]
    fn smoke_swaps_defaults_but_never_explicit_flags() {
        let quiet = cli(&["--pairs", "777"]);
        assert!(!quiet.smoke());
        assert_eq!(quiet.get_smoke("pairs", 10_000u64, 100), 777);
        assert_eq!(quiet.get_smoke("runs", 3usize, 1), 3);

        let smoke = cli(&["--smoke", "--pairs", "777"]);
        assert!(smoke.smoke());
        assert_eq!(smoke.get_smoke("pairs", 10_000u64, 100), 777, "flag wins");
        assert_eq!(smoke.get_smoke("runs", 3usize, 1), 1, "smoke default");
        assert_eq!(smoke.get_list_smoke("threads", &[8, 16], &[2]), vec![2]);
        assert_eq!(
            cli(&["--smoke", "--threads", "4"]).get_list_smoke("threads", &[8], &[2]),
            vec![4]
        );
    }
}
