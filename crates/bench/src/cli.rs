//! A tiny `--flag value` argument parser shared by the harness binaries
//! (keeping the workspace dependency-free beyond the approved dev tools).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Cli {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args()` (skipping the binary name). `--key value`
    /// becomes a flag; a `--key` followed by another `--…` (or nothing) is a
    /// boolean switch.
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests).
    pub fn parse_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = Cli::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    cli.flags.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    cli.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        cli
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Raw string value of `--key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Whether the boolean switch `--key` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key) || self.flags.contains_key(key)
    }

    /// Parses a comma-separated list flag, e.g. `--threads 1,2,4,8`.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.flags.get(key) {
            Some(v) => v.split(',').filter_map(|p| p.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_switches() {
        let c = cli(&["--pairs", "5000", "--oversubscribed", "--ring-order", "14"]);
        assert_eq!(c.get("pairs", 0u64), 5000);
        assert_eq!(c.get("ring-order", 0u32), 14);
        assert!(c.has("oversubscribed"));
        assert!(!c.has("missing"));
        assert_eq!(c.get("missing", 7u32), 7);
    }

    #[test]
    fn parses_lists() {
        let c = cli(&["--threads", "1,2, 4,8"]);
        assert_eq!(c.get_list("threads", &[]), vec![1, 2, 4, 8]);
        assert_eq!(c.get_list("absent", &[3]), vec![3]);
    }

    #[test]
    fn bad_values_fall_back_to_default() {
        let c = cli(&["--pairs", "abc"]);
        assert_eq!(c.get("pairs", 42u64), 42);
    }
}
