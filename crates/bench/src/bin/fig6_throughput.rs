//! Figure 6: enqueue/dequeue throughput on a single processor.
//!
//! * Part (a): thread sweep at or below the hardware thread count.
//! * Part (b) (`--oversubscribed`): more software threads than hardware
//!   threads. The paper's shape: the lock-based combining queues (FC,
//!   CC-Queue) collapse by 15–40× when a combiner can be preempted while
//!   holding the lock; the nonblocking LCRQ and MS queue hold steady,
//!   putting LCRQ >20× ahead of CC-Queue.
//!
//! NOTE (DESIGN.md P1): this reproduction host has a single hardware
//! thread, so *every* multi-thread point is effectively oversubscribed —
//! the part-(b) effect applies across the whole sweep, which is the regime
//! this machine reproduces most faithfully.
//!
//! Usage: `fig6_throughput [--threads 1,2,4,8,16,20] [--pairs 20000]
//!         [--runs 3] [--ring-order 12] [--oversubscribed]
//!         [--queues lcrq,lcrq-cas,lscq,wcq,cc-queue,fc-queue,ms] [--smoke]`
//!
//! `--queues` takes spec strings (`sharded:shards=8,d=2,inner=lcrq` works;
//! separate parameterized specs with `;`).

use lcrq_bench::cli::Cli;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};
use lcrq_util::{set_wait_mode, WaitMode};

fn main() {
    let cli = Cli::from_env();
    let over = cli.has("oversubscribed");
    // Part (b) reproduces the paper's *spinning* waiters (its C baselines
    // never yield), which is what makes a preempted combiner catastrophic.
    // Part (a) uses spin-then-yield, approximating a non-oversubscribed
    // multicore where a waiter's spinning never starves the combiner.
    // Override with --wait-mode spin|yield.
    let mode = match cli.get_str("wait-mode") {
        Some("spin") => WaitMode::Spin,
        Some("yield") => WaitMode::SpinThenYield,
        _ if over => WaitMode::Spin,
        _ => WaitMode::SpinThenYield,
    };
    set_wait_mode(mode);
    // In oversubscribed mode, also arm the scheduler adversary so
    // preemptions land inside critical windows at a realistic rate for an
    // oversubscribed multicore (natural preemption on this 1-core host is
    // too coarse to ever hit a ~100 ns window; DESIGN.md P1).
    let ppm: u32 = cli.get("preempt-ppm", if over { 1000 } else { 0 });
    lcrq_util::adversary::set_preempt_ppm(ppm);
    let default_threads: &[usize] = if over {
        &[4, 8, 16, 32, 64, 128]
    } else {
        &[1, 2, 4, 8, 12, 16, 20]
    };
    let threads = cli.get_list_smoke("threads", default_threads, &[1, 2]);
    let pairs: u64 = cli.get_smoke("pairs", if over { 5_000 } else { 20_000 }, 300);
    let runs: usize = cli.get_smoke("runs", 3usize, 1);
    let ring_order: u32 = cli.get("ring-order", 12u32);
    let specs: Vec<QueueSpec> = match cli.get_str("queues") {
        Some(s) => QueueSpec::parse_list(s).unwrap_or_else(|e| panic!("--queues: {e}")),
        None => [
            QueueKind::Lcrq,
            QueueKind::LcrqCas,
            QueueKind::Lscq,
            QueueKind::Wcq,
            QueueKind::Cc,
            QueueKind::Fc,
            QueueKind::Ms,
        ]
        .into_iter()
        .map(QueueSpec::backend)
        .collect(),
    };
    // An explicit --ring-order overrides every spec; otherwise each spec's
    // own ring= (or the default) stands.
    let specs: Vec<QueueSpec> = if cli.get_str("ring-order").is_some() {
        specs
            .into_iter()
            .map(|s| s.with_ring_order(ring_order))
            .collect()
    } else {
        specs
    };

    println!(
        "# Figure 6{}: single-processor throughput (Mops/s){}",
        if over { "b" } else { "a" },
        if over { ", oversubscribed" } else { "" }
    );
    println!("# pairs/thread = {pairs}, runs = {runs} (median), ring R = 2^{ring_order}");
    print!("| threads |");
    for s in &specs {
        print!(" {s} |");
    }
    println!();
    print!("|---------|");
    for _ in &specs {
        print!("---|");
    }
    println!();
    for &t in &threads {
        print!("| {t} |");
        for spec in &specs {
            let mut cfg = RunConfig::new(t);
            cfg.pairs = pairs;
            let mut best = 0.0f64;
            let mut all = Vec::new();
            for _ in 0..runs {
                let q = spec.build();
                let r = run_workload(&q, &cfg);
                all.push(r.mops);
                best = best.max(r.mops);
            }
            all.sort_by(f64::total_cmp);
            let median = all[all.len() / 2];
            print!(" {median:.3} |");
        }
        println!();
    }
}
