//! Figure 8: cumulative distribution of per-operation latency at maximum
//! concurrency.
//!
//! Paper's shape: LCRQ's latency distribution stochastically dominates the
//! combining queues' — e.g. on one processor 42% of LCRQ operations finish
//! in ≤0.24 µs while *no* combining operation does (combining operations
//! either serve everyone else or wait for a combiner). LCRQ+H has a heavy
//! but rare tail from its cluster-gate timeout.
//!
//! Usage: `fig8_latency [--threads 20] [--pairs 5000] [--ring-order 12]
//!         [--clusters 1] [--queues lcrq,cc-queue,fc-queue,ms] [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};

fn main() {
    let cli = Cli::from_env();
    let threads: usize = cli.get_smoke("threads", 20usize, 4);
    let pairs: u64 = cli.get_smoke("pairs", 5_000u64, 300);
    let ring_order: u32 = cli.get("ring-order", 12u32);
    let clusters: usize = cli.get("clusters", 1usize);
    // Optional scheduler adversary (see lcrq_util::adversary and DESIGN.md
    // P1): emulates preemption landing inside critical windows, which this
    // 1-core host's natural scheduling cannot produce.
    lcrq_util::adversary::set_preempt_ppm(cli.get("preempt-ppm", 0u32));
    let specs: Vec<QueueSpec> = match cli.get_str("queues") {
        Some(s) => QueueSpec::parse_list(s).unwrap_or_else(|e| panic!("--queues: {e}")),
        None => [QueueKind::Lcrq, QueueKind::Cc, QueueKind::Fc, QueueKind::Ms]
            .into_iter()
            .map(QueueSpec::backend)
            .collect(),
    };
    let specs: Vec<QueueSpec> = specs
        .into_iter()
        .map(|s| s.with_ring_order(ring_order).with_clusters(clusters))
        .collect();

    println!("# Figure 8: operation latency CDF at {threads} threads");
    println!("# pairs/thread = {pairs}, ring R = 2^{ring_order}, clusters = {clusters}");

    // Percentile table (transposed CDF — easier to read in text).
    let percentiles = [10.0, 25.0, 50.0, 75.0, 80.0, 90.0, 95.0, 97.0, 99.0, 99.9];
    print!("| percentile |");
    let mut hists = Vec::new();
    for spec in &specs {
        print!(" {} (ns) |", spec.family());
        let mut cfg = RunConfig::new(threads);
        cfg.pairs = pairs;
        cfg.clusters = clusters;
        cfg.record_latency = true;
        let q = spec.build();
        let r = run_workload(&q, &cfg);
        hists.push(r.latency.expect("latency requested"));
    }
    println!();
    print!("|------------|");
    for _ in &specs {
        print!("---|");
    }
    println!();
    for &p in &percentiles {
        print!("| p{p} |");
        for h in &hists {
            print!(" {} |", h.percentile(p));
        }
        println!();
    }
    println!();
    println!("## CDF points (fraction of ops completing within bound)");
    print!("| bound |");
    for s in &specs {
        print!(" {} |", s.family());
    }
    println!();
    print!("|-------|");
    for _ in &specs {
        print!("---|");
    }
    println!();
    for bound_ns in [
        100u64, 240, 500, 1_000, 2_000, 5_000, 10_000, 100_000, 1_000_000,
    ] {
        print!("| {bound_ns} ns |");
        for h in &hists {
            print!(" {:.1}% |", 100.0 * h.fraction_at_or_below(bound_ns));
        }
        println!();
    }
}
