//! Figure 9: impact of the CRQ ring size R on LCRQ throughput (CC-Queue
//! shown for reference, as in the paper).
//!
//! Paper's shape: tiny rings close constantly (every close allocates and
//! links a fresh ring), so throughput climbs with R and saturates once the
//! ring comfortably exceeds the number of running threads — "as long as an
//! individual CRQ has room for all running threads, LCRQ obtains excellent
//! performance" (on one processor R ≥ 32 already beats CC-Queue; on four
//! processors R = 1024 gives the full ≈1.5× advantage).
//!
//! Usage: `fig9_ringsize [--threads 16] [--pairs 10000] [--runs 3]
//!         [--orders 3,5,7,9,11,13,15,17] [--clusters 1] [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};

fn main() {
    let cli = Cli::from_env();
    let threads: usize = cli.get_smoke("threads", 16usize, 2);
    let pairs: u64 = cli.get_smoke("pairs", 10_000u64, 300);
    let runs: usize = cli.get_smoke("runs", 3usize, 1);
    let orders = cli.get_list_smoke("orders", &[3, 5, 7, 9, 11, 13, 15, 17], &[3, 7]);
    let clusters: usize = cli.get("clusters", 1usize);
    // Optional scheduler adversary (see lcrq_util::adversary and DESIGN.md
    // P1): emulates preemption landing inside critical windows, which this
    // 1-core host's natural scheduling cannot produce.
    lcrq_util::adversary::set_preempt_ppm(cli.get("preempt-ppm", 0u32));
    let hierarchical = clusters > 1;

    println!("# Figure 9: ring-size sensitivity at {threads} threads (Mops/s)");
    println!("# pairs/thread = {pairs}, runs = {runs} (median), clusters = {clusters}");

    // Reference line: CC-Queue (or H-Queue in clustered mode) is R-independent.
    let ref_kind = if hierarchical {
        QueueKind::H
    } else {
        QueueKind::Cc
    };
    let mut cfg = RunConfig::new(threads);
    cfg.pairs = pairs;
    cfg.clusters = clusters;
    let ref_spec = QueueSpec::backend(ref_kind).with_clusters(clusters);
    let mut ref_runs: Vec<f64> = (0..runs)
        .map(|_| {
            let q = ref_spec.build();
            run_workload(&q, &cfg).mops
        })
        .collect();
    ref_runs.sort_by(f64::total_cmp);
    let reference = ref_runs[runs / 2];
    println!(
        "# reference {} throughput: {reference:.3} Mops/s",
        ref_kind.name()
    );

    let kind = if hierarchical {
        QueueKind::LcrqH
    } else {
        QueueKind::Lcrq
    };
    println!(
        "| ring order | R | {} Mops/s | vs {} |",
        kind.name(),
        ref_kind.name()
    );
    println!("|-----------|---|-----------|-------|");
    for &order in &orders {
        let spec = QueueSpec::backend(kind)
            .with_ring_order(order as u32)
            .with_clusters(clusters);
        let mut all: Vec<f64> = (0..runs)
            .map(|_| {
                let q = spec.build();
                run_workload(&q, &cfg).mops
            })
            .collect();
        all.sort_by(f64::total_cmp);
        let median = all[runs / 2];
        println!(
            "| {order} | {} | {median:.3} | {:.2}x |",
            1u64 << order,
            median / reference
        );
    }
}
