//! Figure 1: time to increment a contended counter — hardware F&A vs a CAS
//! loop — plus the number of CAS attempts per increment (right axis of the
//! paper's figure).
//!
//! Paper's shape: F&A stays flat-ish and cheap; the CAS loop's per-increment
//! cost grows with concurrency because a growing fraction of CAS attempts
//! fail and must retry (4–6× slower at high thread counts on the paper's
//! machine).
//!
//! Usage: `fig1_counter [--threads 1,2,4,8,16] [--increments 200000] [--runs 3]
//!         [--smoke]`

use lcrq_atomic::{ops, CasLoopFaa, FaaPolicy, HardwareFaa};
use lcrq_bench::cli::Cli;
use lcrq_util::metrics::{self, Event};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Adversarial-schedule variants (DESIGN.md substitution P1): this host has
/// one hardware thread, so software threads are only preempted every few
/// milliseconds and essentially never inside the ~10 ns read→CAS window —
/// the CAS failure rate collapses to zero and Figure 1's effect vanishes.
/// These variants insert a scheduler yield *inside* the window (between the
/// read and the CAS), emulating the mid-window interleaving that true
/// parallel cores produce constantly. Crucially, F&A has no such window —
/// there is nothing to interleave with — which is precisely the paper's
/// point; its yield happens outside the atomic so both variants pay the
/// same scheduling overhead.
struct YieldingCasLoopFaa;

impl FaaPolicy for YieldingCasLoopFaa {
    fn fetch_add(a: &AtomicU64, v: u64) -> u64 {
        loop {
            let cur = a.load(Ordering::Acquire);
            std::thread::yield_now(); // adversary strikes mid-window
            if ops::cas(a, cur, cur.wrapping_add(v)).is_ok() {
                return cur;
            }
        }
    }
    fn name() -> &'static str {
        "cas-loop+yield"
    }
}

struct YieldingFaa;

impl FaaPolicy for YieldingFaa {
    fn fetch_add(a: &AtomicU64, v: u64) -> u64 {
        std::thread::yield_now(); // same scheduling cost, but no window
        HardwareFaa::fetch_add(a, v)
    }
    fn name() -> &'static str {
        "faa+yield"
    }
}

fn run<P: FaaPolicy>(threads: usize, increments: u64) -> (f64, f64) {
    metrics::flush();
    let before = metrics::snapshot();
    let counter = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let (counter, barrier) = (&counter, &barrier);
    let wall = std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let _ = lcrq_util::affinity::pin_round_robin(t);
                barrier.wait();
                for _ in 0..increments {
                    P::fetch_add(counter, 1);
                }
                metrics::flush();
            });
        }
        // Clock starts before the barrier releases the workers (single-core
        // hosts may not reschedule this thread until workers finish).
        let start = Instant::now();
        barrier.wait();
        start
    })
    .elapsed();
    let total = threads as u64 * increments;
    assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), total);
    let ns_per_inc = wall.as_nanos() as f64 * threads as f64 / total as f64;
    let d = metrics::snapshot().delta_since(&before);
    let cas_per_inc = d.get(Event::CasAttempt) as f64 / total as f64;
    (ns_per_inc, cas_per_inc)
}

fn sweep<F: FaaPolicy, C: FaaPolicy>(threads: &[usize], increments: u64, runs: usize) {
    println!(
        "| threads | {} ns/inc | {} ns/inc | CAS/inc | slowdown |",
        F::name(),
        C::name()
    );
    println!("|---------|-----------|-----------|---------|----------|");
    for &t in threads {
        let (mut faa_ns, mut cas_ns, mut cas_per) = (f64::MAX, f64::MAX, 0.0);
        for _ in 0..runs {
            let (ns, _) = run::<F>(t, increments);
            faa_ns = faa_ns.min(ns);
            let (ns, cp) = run::<C>(t, increments);
            if ns < cas_ns {
                cas_ns = ns;
                cas_per = cp;
            }
        }
        println!(
            "| {t} | {faa_ns:.1} | {cas_ns:.1} | {cas_per:.2} | {:.2}x |",
            cas_ns / faa_ns
        );
    }
}

fn main() {
    let cli = Cli::from_env();
    let threads = cli.get_list_smoke("threads", &[1, 2, 4, 8, 16], &[1, 2]);
    let increments: u64 = cli.get_smoke("increments", 200_000u64, 5_000);
    let runs: usize = cli.get_smoke("runs", 3usize, 1);

    println!("# Figure 1: contended counter increment, F&A vs CAS loop");
    println!("# increments/thread = {increments}, runs = {runs} (best shown)");
    if cli.has("adversarial") {
        println!("# adversarial schedule: yield injected inside the read->CAS window");
        println!("# (emulates parallel-core interleaving on this 1-core host; see P1)");
        sweep::<YieldingFaa, YieldingCasLoopFaa>(&threads, increments, runs);
    } else {
        sweep::<HardwareFaa, CasLoopFaa>(&threads, increments, runs);
    }
}
