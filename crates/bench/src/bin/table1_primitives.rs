//! Table 1: synchronization primitives supported as machine instructions on
//! dominant multicore architectures — plus a runtime probe of what *this*
//! machine supports and a functional self-test of each primitive as used by
//! the library.
//!
//! Usage: `table1_primitives [--smoke]` — already milliseconds-fast, so
//! `--smoke` (accepted for uniformity with the other harness bins) changes
//! nothing.

use lcrq_atomic::{ops, AtomicPair, CasLoopFaa, FaaPolicy, HardwareFaa};
use lcrq_bench::cli::Cli;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let _ = Cli::from_env().smoke(); // no knobs to shrink; flag is a no-op
    println!("# Table 1: synchronization primitives by architecture (from the paper)");
    println!("| architecture | compare-and-swap | test-and-set | swap | fetch-and-add |");
    println!("|--------------|------------------|--------------|------|---------------|");
    println!("| ARM          | LL/SC            | deprecated   | no   | no            |");
    println!("| POWER        | LL/SC            | no           | no   | no            |");
    println!("| SPARC        | yes              | deprecated   | yes  | no            |");
    println!("| x86          | yes              | yes          | yes  | yes           |");
    println!();

    println!("## This machine");
    println!("- target_arch: {}", std::env::consts::ARCH);
    #[cfg(target_arch = "x86_64")]
    {
        println!(
            "- cmpxchg16b (CAS2): {}",
            if std::is_x86_feature_detected!("cmpxchg16b") {
                "supported (native LOCK CMPXCHG16B path active)"
            } else {
                "NOT supported (fallback path would be needed)"
            }
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    println!("- cmpxchg16b (CAS2): n/a (portable fallback active)");
    // Which path AtomicPair::compare_exchange actually routes through in
    // *this* build (native vs seqlock fallback vs force-fallback): bench
    // output must record the measured configuration, not the host's
    // capability.
    println!("- CAS2 backend: {}", lcrq_atomic::cas2_backend());

    println!();
    println!("## Functional self-test (instructions as used by the library)");
    let a = AtomicU64::new(5);
    let prev = HardwareFaa::fetch_add(&a, 3); // LOCK XADD
    println!(
        "- F&A   (LOCK XADD):        5 + 3 -> prev {prev}, now {}",
        a.load(Ordering::SeqCst)
    );
    let prev = CasLoopFaa::fetch_add(&a, 2); // CAS loop emulation
    println!(
        "- F&A   (CAS-loop emul.):   8 + 2 -> prev {prev}, now {}",
        a.load(Ordering::SeqCst)
    );
    let prev = ops::swap(&a, 1); // XCHG
    println!("- SWAP  (XCHG):             store 1 -> prev {prev}");
    let was = ops::tas_bit(&a, 63); // LOCK BTS
    println!(
        "- T&S   (LOCK BTS bit 63):  was-set {was}, now {:#x}",
        a.load(Ordering::SeqCst)
    );
    let r = ops::cas(&a, 1 | (1 << 63), 7); // LOCK CMPXCHG
    println!(
        "- CAS   (LOCK CMPXCHG):     {:?}, now {}",
        r.is_ok(),
        a.load(Ordering::SeqCst)
    );
    let p = AtomicPair::new(1, 2);
    let r = p.compare_exchange((1, 2), (3, 4)); // LOCK CMPXCHG16B
    println!(
        "- CAS2  (LOCK CMPXCHG16B):  {:?}, now {:?}",
        r.is_ok(),
        p.load()
    );
    println!();
    println!("All primitives functional.");
}
