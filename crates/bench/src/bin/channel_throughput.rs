//! Channel throughput: the blocking LCRQ channel vs `std::sync::mpsc` vs a
//! raw spin-polling `TypedLcrq`, under a producers/consumers workload
//! (extension beyond the paper — ISSUE 2's channel layer).
//!
//! Each producer sends `--pairs` items, then the senders drop (closing the
//! channel); consumers receive until `Disconnected`. Throughput counts both
//! sides (sends + recvs), like the paper's pairs workloads. The parks/op
//! column shows how often the adaptive wait ladder actually reached the
//! parking phase; the trailing idle-consumer check demonstrates the
//! acceptance criterion that a parked consumer performs zero F&A.
//!
//! `std::sync::mpsc` is single-consumer: multiple consumers share the
//! receiver behind a mutex, which is the standard (and deliberately
//! costly) workaround and part of the comparison's point.
//!
//! Output: a markdown table plus one `BENCH_channel.json`-compatible JSON
//! line (`{"bench":"channel", "results":[...]}`) on stdout.
//!
//! Usage: `channel_throughput [--producers 8] [--consumers 8]
//!         [--pairs 10000] [--capacity 1024] [--smoke]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Barrier, Mutex};
use std::time::{Duration, Instant};

use lcrq_bench::cli::Cli;
use lcrq_core::TypedLcrq;
use lcrq_util::metrics::{self, Event};

struct Row {
    system: &'static str,
    mops: f64,
    secs: f64,
    parks_per_op: f64,
    faa_per_op: f64,
}

/// Brackets a run with global metric snapshots and turns it into a row.
/// The closure must flush every worker thread's counters before returning.
fn measured(system: &'static str, total_ops: u64, run: impl FnOnce()) -> Row {
    metrics::flush();
    let before = metrics::snapshot();
    let start = Instant::now();
    run();
    let secs = start.elapsed().as_secs_f64();
    let d = metrics::snapshot().delta_since(&before);
    Row {
        system,
        mops: total_ops as f64 / secs / 1e6,
        secs,
        parks_per_op: d.parks_per_op(),
        faa_per_op: d.faa_per_op(),
    }
}

fn bench_channel(capacity: Option<usize>, producers: usize, consumers: usize, per: u64) -> Row {
    let system = if capacity.is_some() {
        "channel-bounded"
    } else {
        "channel"
    };
    let received = AtomicU64::new(0);
    let row = measured(system, 2 * producers as u64 * per, || {
        let (tx, rx) = match capacity {
            Some(cap) => lcrq_channel::bounded::<u64>(cap),
            None => lcrq_channel::channel::<u64>(),
        };
        let barrier = Barrier::new(producers + consumers);
        let received = &received;
        std::thread::scope(|s| {
            let barrier = &barrier;
            for _ in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    barrier.wait();
                    for v in 0..per {
                        tx.send(v).unwrap();
                    }
                    metrics::add(Event::EnqOp, per);
                    metrics::flush();
                });
            }
            for _ in 0..consumers {
                let rx = rx.clone();
                s.spawn(move || {
                    barrier.wait();
                    let mut n = 0u64;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    received.fetch_add(n, Ordering::SeqCst);
                    metrics::add(Event::DeqOp, n);
                    metrics::flush();
                });
            }
            drop(tx); // producers' clones keep the channel open until done
            drop(rx);
        });
    });
    assert_eq!(
        received.load(Ordering::SeqCst),
        producers as u64 * per,
        "{system}: lost items"
    );
    row
}

fn bench_std_mpsc(producers: usize, consumers: usize, per: u64) -> Row {
    let received = AtomicU64::new(0);
    let row = measured("std-mpsc", 2 * producers as u64 * per, || {
        let (tx, rx) = mpsc::channel::<u64>();
        let rx = Mutex::new(rx);
        let barrier = Barrier::new(producers + consumers);
        let (rx, barrier, received) = (&rx, &barrier, &received);
        std::thread::scope(|s| {
            for _ in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    barrier.wait();
                    for v in 0..per {
                        tx.send(v).unwrap();
                    }
                    metrics::add(Event::EnqOp, per);
                    metrics::flush();
                });
            }
            for _ in 0..consumers {
                s.spawn(move || {
                    barrier.wait();
                    let mut n = 0u64;
                    loop {
                        let item = rx.lock().unwrap().recv();
                        if item.is_err() {
                            break;
                        }
                        n += 1;
                    }
                    received.fetch_add(n, Ordering::SeqCst);
                    metrics::add(Event::DeqOp, n);
                    metrics::flush();
                });
            }
            drop(tx);
        });
    });
    assert_eq!(
        received.load(Ordering::SeqCst),
        producers as u64 * per,
        "std-mpsc: lost items"
    );
    row
}

fn bench_spin_lcrq(producers: usize, consumers: usize, per: u64) -> Row {
    let total = producers as u64 * per;
    let received = AtomicU64::new(0);
    let row = measured("spin-lcrq", 2 * total, || {
        let q = TypedLcrq::<u64>::new();
        let barrier = Barrier::new(producers + consumers);
        let (q, barrier, received) = (&q, &barrier, &received);
        std::thread::scope(|s| {
            for _ in 0..producers {
                s.spawn(move || {
                    barrier.wait();
                    for v in 0..per {
                        q.enqueue(v);
                    }
                    metrics::add(Event::EnqOp, per);
                    metrics::flush();
                });
            }
            for _ in 0..consumers {
                s.spawn(move || {
                    barrier.wait();
                    let mut n = 0u64;
                    loop {
                        match q.dequeue() {
                            Some(_) => {
                                received.fetch_add(1, Ordering::SeqCst);
                                n += 1;
                            }
                            None => {
                                if received.load(Ordering::SeqCst) >= total {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    metrics::add(Event::DeqOp, n);
                    metrics::flush();
                });
            }
        });
    });
    assert_eq!(received.load(Ordering::SeqCst), total, "spin: lost items");
    row
}

/// Demonstrates the idle-consumer acceptance criterion: a receiver on an
/// empty channel escalates to parking and performs no F&A while parked.
/// Returns `(faa_count, park_count, elapsed)` measured inside the consumer
/// thread (thread-local counters: immune to the rest of the process).
fn idle_consumer_check() -> (u64, u64, Duration) {
    let (tx, rx) = lcrq_channel::channel::<u64>();
    let h = std::thread::spawn(move || {
        let before = metrics::local_snapshot();
        let start = Instant::now();
        let r = rx.recv_timeout(Duration::from_millis(250));
        let elapsed = start.elapsed();
        assert!(r.is_err(), "nothing was sent");
        let d = metrics::local_snapshot().delta_since(&before);
        (d.get(Event::Faa), d.get(Event::Park), elapsed)
    });
    let out = h.join().unwrap();
    drop(tx);
    out
}

fn main() {
    let cli = Cli::from_env();
    let producers: usize = cli.get_smoke("producers", 8usize, 2);
    let consumers: usize = cli.get_smoke("consumers", 8usize, 2);
    let per: u64 = cli.get_smoke("pairs", 10_000u64, 400);
    let capacity: usize = cli.get("capacity", 1024usize);

    println!(
        "# Channel throughput — {producers} producers / {consumers} consumers, \
         {per} items/producer"
    );
    println!("| system | Mops/s | wall (s) | parks/op | F&A/op |");
    println!("|--------|--------|----------|----------|--------|");
    let rows = [
        bench_channel(None, producers, consumers, per),
        bench_channel(Some(capacity), producers, consumers, per),
        bench_std_mpsc(producers, consumers, per),
        bench_spin_lcrq(producers, consumers, per),
    ];
    for r in &rows {
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.2} |",
            r.system, r.mops, r.secs, r.parks_per_op, r.faa_per_op
        );
    }

    let channel_mops = rows[0].mops;
    let spin_mops = rows[3].mops;
    println!();
    println!(
        "blocking channel vs raw spin-LCRQ: {:.2}x (acceptance: within 2x)",
        spin_mops / channel_mops
    );

    let (faa, parks, elapsed) = idle_consumer_check();
    println!(
        "idle consumer: {faa} F&A, {parks} park(s) over {:.0} ms \
         (acceptance: zero F&A while parked — count stays O(poll ladder), \
         not O(duration))",
        elapsed.as_secs_f64() * 1e3
    );

    // Machine-readable summary (BENCH_channel.json-compatible).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"system\":\"{}\",\"mops\":{:.4},\"secs\":{:.4},\
                 \"parks_per_op\":{:.4},\"faa_per_op\":{:.4}}}",
                r.system, r.mops, r.secs, r.parks_per_op, r.faa_per_op
            )
        })
        .collect();
    println!(
        "{{\"bench\":\"channel\",\"producers\":{producers},\"consumers\":{consumers},\
         \"pairs\":{per},\"capacity\":{capacity},\"idle_faa\":{faa},\"idle_parks\":{parks},\
         \"results\":[{}]}}",
        json_rows.join(",")
    );
}
