//! Ring-churn microbenchmark: allocator traffic of spill-heavy workloads
//! with and without the ring recycling pool (DESIGN.md "Ring recycling").
//!
//! Each round, every thread enqueues a batch several rings long into a
//! tiny-ring LCRQ and drains it back, so nearly every batch closes rings
//! and spills into fresh ones. Without the pool each spill allocates a
//! ring; with it, retired rings are scrubbed and reused, so steady-state
//! allocations drop to (near) zero. The table reports throughput and the
//! allocs/op column that `table2_stats`/`table3_stats` also print.
//!
//! Usage: `ring_churn [--threads 2] [--rounds 10000] [--warmup 2000]
//!                    [--ring-order 4] [--pool-caps 0,8] [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_core::{Lcrq, LcrqConfig};
use lcrq_util::metrics::{self, Event};
use std::sync::Barrier;
use std::time::Instant;

/// One spill-heavy round: enqueue a multi-ring batch, then take the same
/// number of items back (other threads' items count — the queue is shared).
fn churn(q: &Lcrq, vals: &[u64], out: &mut Vec<u64>) {
    q.enqueue_batch(vals);
    metrics::add(Event::EnqOp, vals.len() as u64);
    let mut got = 0;
    while got < vals.len() {
        out.clear();
        let taken = q.dequeue_batch(out, vals.len() - got);
        got += taken;
        if taken == 0 {
            std::thread::yield_now(); // another thread holds the backlog
        }
    }
    metrics::add(Event::DeqOp, got as u64);
}

fn main() {
    let cli = Cli::from_env();
    let threads = cli.get("threads", 2usize);
    let rounds = cli.get_smoke("rounds", 10_000u64, 500);
    let warmup = cli.get_smoke("warmup", 2_000u64, 100);
    let ring_order = cli.get("ring-order", 4u32);
    let pool_caps = cli.get_list("pool-caps", &[0, 8]);
    let batch = 4 * (1usize << ring_order); // ~4 ring closes per round

    println!("## Ring churn — {threads} thread(s), R = 2^{ring_order}, batch = {batch}");
    println!("# {warmup} warmup + {rounds} measured rounds/thread; allocs/op is the steady-state (post-warmup) ring-allocation rate");
    println!("| pool cap | Mops/s | allocs/op | ring reuse | ring scrub | ring alloc |");
    println!("|----------|--------|-----------|------------|------------|------------|");
    for &cap in &pool_caps {
        let q = Lcrq::with_config(
            LcrqConfig::new()
                .with_ring_order(ring_order)
                .with_ring_pool_capacity(cap),
        );
        let warmed = Barrier::new(threads + 1);
        let elapsed = std::thread::scope(|s| {
            let q = &q;
            let warmed = &warmed;
            for _ in 0..threads {
                s.spawn(move || {
                    let vals: Vec<u64> = (0..batch as u64).collect();
                    let mut out = Vec::with_capacity(batch);
                    for _ in 0..warmup {
                        churn(q, &vals, &mut out);
                    }
                    metrics::flush();
                    warmed.wait(); // post-warmup snapshot happens here
                    warmed.wait(); // measured region starts together
                    for _ in 0..rounds {
                        churn(q, &vals, &mut out);
                    }
                    metrics::flush();
                });
            }
            warmed.wait();
            let before = metrics::snapshot();
            warmed.wait();
            let start = Instant::now();
            // Scope exit joins the workers; every measured count is flushed.
            (start, before)
        });
        let (start, before) = elapsed;
        let secs = start.elapsed().as_secs_f64();
        let d = metrics::snapshot().delta_since(&before);
        let ops = 2.0 * (threads as u64 * rounds * batch as u64) as f64;
        println!(
            "| {cap} | {:.2} | {:.4} | {} | {} | {} |",
            ops / secs / 1e6,
            d.allocs_per_op(),
            d.get(Event::RingReuse),
            d.get(Event::RingScrub),
            d.get(Event::RingAlloc),
        );
    }
}
