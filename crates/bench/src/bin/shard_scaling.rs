//! Sharded front-end scaling sweep (extension beyond the paper): N
//! producers / N consumers throughput across `shards × d` configurations
//! of the d-choice front-end against the plain inner backend, with the
//! measured relaxation of every configuration checked against its
//! analytic rank-error envelope.
//!
//! Two measurements per row:
//!
//! * **Throughput** — a producer/consumer workload (each producer moves
//!   `--pairs` items, consumers drain until every item is out) timed
//!   wall-clock, reported in Mops/s.
//! * **Relaxation** — a shorter recorded history (global-clock
//!   instrumentation from `lcrq-verify`) replayed through
//!   [`measure_relaxation`]: empirical max/mean rank error, asserted
//!   against [`QueueSpec::rank_error_bound`]. A violation fails the run
//!   (nonzero exit), so CI can gate on it.
//!
//! ## Contention emulation (DESIGN.md substitution P1)
//!
//! Sharding exists to relieve *parallel* cache-line contention on the
//! single queue's F&A hot spot — a cost that physically cannot arise on
//! this serial reproduction host, where time-sliced threads interleave
//! instead of bouncing a line between cores (a raw wall-clock comparison
//! here only measures the front-end's bookkeeping overhead). Following
//! the repo's established simulation substitutions (simulated clusters in
//! fig7, simulated oversubscription in fig2/fig6b), the throughput
//! measurement wraps every queue *structure* in a [`ContentionSim`]
//! domain that charges each operation `--hotspot-ns` of spin per
//! operation concurrently in flight on the same structure — the paper's
//! own cost model (§2: operations on one hot line serialize; latency
//! grows with the number of requesters). The baseline queue is one
//! domain; the sharded front-end wraps each shard as its own domain, so a
//! preempted operation (armed via `--preempt-ppm`, landing inside the
//! read→CAS2 windows) taxes only the shard it stalls instead of every
//! endpoint. `--hotspot-ns 0` disables the emulation and measures raw
//! serial overhead instead.
//!
//! Writes one JSON document (default `results/BENCH_shard.json`).
//!
//! Usage: `shard_scaling [--threads 2,8] [--shards 1,2,4,8] [--d 1,2]
//!         [--refresh 64] [--inner lcrq] [--pairs 10000]
//!         [--relax-ops 2000] [--preempt-ppm 500] [--hotspot-ns 150]
//!         [--out results/BENCH_shard.json] [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_bench::QueueSpec;
use lcrq_core::{ShardedConfig, ShardedQueue};
use lcrq_queues::ConcurrentQueue;
use lcrq_util::spin::spin_for_ns;
use lcrq_util::XorShift64Star;
use lcrq_verify::{measure_relaxation, record, Completed};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// One emulated contention domain: a queue structure whose operations
/// serialize on a hot cache line. Each operation spins `hot_ns` per peer
/// operation currently in flight on the same structure, emulating the
/// line-transfer queue a multicore would impose. With `hot_ns = 0` this
/// is a transparent pass-through.
struct ContentionSim<Q> {
    inner: Q,
    in_flight: AtomicU32,
    hot_ns: u64,
}

impl<Q: ConcurrentQueue> ContentionSim<Q> {
    fn new(inner: Q, hot_ns: u64) -> Self {
        Self {
            inner,
            in_flight: AtomicU32::new(0),
            hot_ns,
        }
    }

    fn charge(&self) -> ContentionGuard<'_> {
        let peers = self.in_flight.fetch_add(1, Ordering::Relaxed);
        if self.hot_ns > 0 && peers > 0 {
            spin_for_ns(self.hot_ns * peers as u64);
        }
        ContentionGuard {
            in_flight: &self.in_flight,
        }
    }
}

struct ContentionGuard<'a> {
    in_flight: &'a AtomicU32,
}

impl Drop for ContentionGuard<'_> {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<Q: ConcurrentQueue> ConcurrentQueue for ContentionSim<Q> {
    fn enqueue(&self, value: u64) {
        let _g = self.charge();
        self.inner.enqueue(value);
    }

    fn dequeue(&self) -> Option<u64> {
        let _g = self.charge();
        self.inner.dequeue()
    }

    fn enqueue_batch(&self, values: &[u64]) {
        let _g = self.charge();
        self.inner.enqueue_batch(values);
    }

    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        let _g = self.charge();
        self.inner.dequeue_batch(out, max)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn is_nonblocking(&self) -> bool {
        self.inner.is_nonblocking()
    }
}

/// N-producer/N-consumer drain: producers each enqueue `per_producer`
/// tagged values flat out; consumers dequeue (yielding on empty) until
/// every item is accounted for. Returns Mops/s over the whole run.
fn prodcons_mops(q: &dyn ConcurrentQueue, threads: usize, per_producer: u64) -> f64 {
    let total = threads as u64 * per_producer;
    let consumed = AtomicU64::new(0);
    let barrier = Barrier::new(2 * threads + 1);
    let (q, consumed, barrier) = (&q, &consumed, &barrier);
    let start = std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                barrier.wait();
                for i in 0..per_producer {
                    q.enqueue(((t as u64) << 40) | i);
                }
            });
        }
        for _ in 0..threads {
            s.spawn(move || {
                barrier.wait();
                while consumed.load(Ordering::Relaxed) < total {
                    if q.dequeue().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let start = Instant::now();
        barrier.wait();
        start
    });
    let wall = start.elapsed();
    2.0 * total as f64 / wall.as_secs_f64() / 1e6
}

/// Records a mixed enqueue/dequeue history on `2 × threads` workers and
/// returns (max rank error, mean rank error). Scripts lean enqueue-heavy
/// so the queue stays occupied and dequeues actually race.
fn measured_relaxation(spec: &QueueSpec, threads: usize, ops_per_thread: usize) -> (u64, f64) {
    let q = spec.build();
    let workers = 2 * threads;
    let mut rng = XorShift64Star::new(lcrq_util::rng::test_seed(0x5ca1_ab1e));
    let scripts: Vec<Vec<Completed>> = (0..workers)
        .map(|t| {
            let mut script = Vec::with_capacity(ops_per_thread);
            let mut next = 0u64;
            for _ in 0..ops_per_thread {
                if rng.chance(5, 9) {
                    script.push(Completed::Enq(((t as u64) << 40) | next));
                    next += 1;
                } else {
                    script.push(Completed::Deq);
                }
            }
            script
        })
        .collect();
    let rec = record(&q, &scripts);
    let report = measure_relaxation(&rec).unwrap_or_else(|e| {
        eprintln!("error: {spec}: recorded history is not a relaxed FIFO: {e}");
        std::process::exit(1);
    });
    (report.max_rank_error, report.mean_rank_error())
}

struct Row {
    spec: String,
    threads: usize,
    mops: f64,
    max_rank: u64,
    mean_rank: f64,
    bound: u64,
    ok: bool,
}

fn main() {
    let cli = Cli::from_env();
    let threads_list = cli.get_list_smoke("threads", &[2usize, 8], &[2]);
    let shards_list = cli.get_list_smoke("shards", &[1usize, 2, 4, 8], &[1, 2]);
    let d_list = cli.get_list_smoke("d", &[1usize, 2], &[2]);
    let refresh: u32 = cli.get("refresh", 64u32);
    let pairs: u64 = cli.get_smoke("pairs", 10_000u64, 300);
    let relax_ops: usize = cli.get_smoke("relax-ops", 2_000usize, 200);
    let ppm: u32 = cli.get("preempt-ppm", 500u32);
    let hot_ns: u64 = cli.get("hotspot-ns", 150u64);
    // Smoke runs land in target/ so a quick health check can never clobber
    // the committed results/BENCH_shard.json artifact.
    let default_out = if cli.smoke() {
        "target/smoke/BENCH_shard.json"
    } else {
        "results/BENCH_shard.json"
    };
    let out_path = cli.get_str("out").unwrap_or(default_out).to_string();
    let inner = QueueSpec::parse(cli.get_str("inner").unwrap_or("lcrq")).unwrap_or_else(|e| {
        eprintln!("error: --inner: {e}");
        std::process::exit(2);
    });

    lcrq_util::adversary::set_preempt_ppm(ppm);
    println!(
        "# Sharded scaling sweep — inner {inner}, refresh {refresh}, \
         {pairs} items/producer, preempt {ppm} ppm, hotspot {hot_ns} ns"
    );
    println!("| spec | prod/cons | Mops/s | max rank | mean rank | bound |");
    println!("|------|-----------|--------|----------|-----------|-------|");

    // Row descriptors: the baseline plus the shards × d sweep. shards=1
    // and the baseline coincide semantically; both stay in the table so
    // the front-end's pass-through overhead is visible.
    let mut configs: Vec<Option<ShardedConfig>> = vec![None];
    for &s in &shards_list {
        for &d in &d_list {
            if d > s && s > 1 {
                continue; // clamped to d = s anyway; skip duplicates
            }
            if s == 1 && d != d_list[0] {
                continue; // d is irrelevant with one shard
            }
            configs.push(Some(
                ShardedConfig::new()
                    .with_shards(s)
                    .with_d(d.min(s))
                    .with_refresh(refresh),
            ));
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for &t in &threads_list {
        for cfg in &configs {
            // Each queue structure is one emulated contention domain: the
            // baseline wraps the whole queue, the sharded build wraps each
            // shard separately (a nested sharded --inner is treated as one
            // structure; only top-level shards get their own domain).
            let (spec, q): (QueueSpec, Box<dyn ConcurrentQueue>) = match cfg {
                None => (
                    inner.clone(),
                    Box::new(ContentionSim::new(inner.build(), hot_ns)),
                ),
                Some(sc) => (
                    QueueSpec::sharded(inner.clone())
                        .with_shards(sc.shards)
                        .with_d(sc.d)
                        .with_refresh(sc.refresh),
                    Box::new(ShardedQueue::from_factory(sc, |_| {
                        ContentionSim::new(inner.build(), hot_ns)
                    })),
                ),
            };
            let mops = prodcons_mops(&*q, t, pairs);
            let (max_rank, mean_rank) = measured_relaxation(&spec, t, relax_ops);
            let bound = spec.rank_error_bound(2 * t);
            let ok = max_rank <= bound;
            println!(
                "| {spec} | {t}p/{t}c | {mops:.3} | {max_rank} | {mean_rank:.2} | {bound}{} |",
                if ok { "" } else { " **EXCEEDED**" }
            );
            rows.push(Row {
                spec: spec.to_string(),
                threads: t,
                mops,
                max_rank,
                mean_rank,
                bound,
                ok,
            });
        }
    }

    let all_ok = rows.iter().all(|r| r.ok);
    let json = render_json(ppm, hot_ns, refresh, pairs, &rows, all_ok);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("error: writing {out_path}: {e}");
            std::process::exit(1);
        }
    }
    if !all_ok {
        eprintln!("error: measured relaxation exceeded the analytic bound (see table)");
        std::process::exit(1);
    }
}

fn render_json(
    ppm: u32,
    hot_ns: u64,
    refresh: u32,
    pairs: u64,
    rows: &[Row],
    all_ok: bool,
) -> String {
    // Hand-rolled writer: the workspace is dependency-free by design, and
    // every emitted value is numeric or a spec string with no escapes.
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"bench\": \"shard_scaling\",\n  \"preempt_ppm\": {ppm},\n  \
         \"hotspot_ns\": {hot_ns},\n  \"refresh\": {refresh},\n  \
         \"items_per_producer\": {pairs},\n  \
         \"within_bound\": {all_ok},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"spec\": \"{}\", \"producers\": {}, \"consumers\": {}, \
             \"mops\": {:.4}, \"max_rank_error\": {}, \"mean_rank_error\": {:.3}, \
             \"rank_bound\": {}, \"within_bound\": {}}}{}\n",
            r.spec,
            r.threads,
            r.threads,
            r.mops,
            r.max_rank,
            r.mean_rank,
            r.bound,
            r.ok,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
