//! Demonstration of §4's livelock argument: why the CRQ must be able to
//! *close*.
//!
//! The idealized infinite-array queue (Figure 2) is linearizable but
//! livelock-prone: a dequeuer can keep swapping ⊤ into exactly the cell the
//! matching enqueuer is about to use, poisoning it and forcing the enqueuer
//! to retry forever. LCRQ resolves this by letting a starving enqueuer
//! close the ring and move on.
//!
//! This binary runs an enqueuer against a pack of empty-hammering dequeuers
//! on both queues (with the scheduler adversary making the interleavings a
//! parallel machine would produce) and reports, per completed enqueue, how
//! many *placement attempts* were burned — F&As for the infinite queue,
//! ring-node visits for LCRQ — plus LCRQ's escape-hatch usage (rings
//! closed).
//!
//! Usage: `fig2_livelock [--dequeuers 3] [--enqueues 20000] [--preempt-ppm 2000]
//!         [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_core::infinite::InfiniteArrayQueue;
use lcrq_core::{Lcrq, LcrqConfig, Lscq};
use lcrq_queues::ConcurrentQueue;
use lcrq_util::metrics::{self, Event};
use std::sync::atomic::{AtomicBool, Ordering};

struct Outcome {
    attempts_per_enqueue: f64,
    rings_closed: u64,
}

fn hammer<Q: ConcurrentQueue>(
    queue: &Q,
    dequeuers: usize,
    enqueues: u64,
    attempt_event: Event,
) -> Outcome {
    metrics::flush();
    let before = metrics::snapshot();
    let stop = AtomicBool::new(false);
    let stop = &stop;
    std::thread::scope(|s| {
        for _ in 0..dequeuers {
            s.spawn(move || {
                let mut drained = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if queue.dequeue().is_some() {
                        drained += 1;
                    }
                }
                // Deliberately no metrics::flush(): dequeuer-side events
                // are discarded so the measurement isolates the *enqueuer's*
                // wasted work (the livelock victim).
                drained
            });
        }
        for i in 0..enqueues {
            queue.enqueue(i);
        }
        stop.store(true, Ordering::Relaxed);
        metrics::flush();
    });
    let d = metrics::snapshot().delta_since(&before);
    Outcome {
        attempts_per_enqueue: d.get(attempt_event) as f64 / enqueues as f64,
        rings_closed: d.get(Event::CrqClosed),
    }
}

fn main() {
    let cli = Cli::from_env();
    let dequeuers: usize = cli.get_smoke("dequeuers", 3usize, 2);
    let enqueues: u64 = cli.get_smoke("enqueues", 20_000u64, 1_000);
    lcrq_util::adversary::set_preempt_ppm(cli.get("preempt-ppm", 2_000u32));

    println!("# Figure 2 / §4: dequeuer-poisoning pressure on an enqueuer");
    println!("# {dequeuers} empty-hammering dequeuers vs 1 enqueuer, {enqueues} enqueues");
    println!();

    // The infinite-array queue burns one F&A (and one SWAP) per placement
    // attempt; poisoned cells force retries.
    let inf: InfiniteArrayQueue = InfiniteArrayQueue::new();
    let o = hammer(&inf, dequeuers, enqueues, Event::Faa);
    println!("infinite-array queue (enqueuer-thread events only):");
    println!(
        "  tail F&As per completed enqueue: {:.3}",
        o.attempts_per_enqueue
    );
    println!("  (>1.0 means dequeuers poisoned the cells this enqueuer was");
    println!("   assigned; there is no bound — this is the §4 livelock)");
    println!();

    // LCRQ: ring-node visits per enqueue, and how often the starving-escape
    // (ring close) fired.
    let q = Lcrq::with_config(
        LcrqConfig::new()
            .with_ring_order(8)
            .with_starvation_limit(64),
    );
    let o = hammer(&q, dequeuers, enqueues, Event::NodeVisit);
    println!("lcrq, starvation limit 64 (enqueuer-thread events only):");
    println!(
        "  ring-node visits per enqueue: {:.3}",
        o.attempts_per_enqueue
    );
    println!(
        "  rings closed (starving-enqueuer escape hatch): {}",
        o.rings_closed
    );
    println!();
    println!("LCRQ's attempts stay bounded because a starving enqueuer closes the");
    println!("ring and appends a fresh one seeded with its item (§4.2) — the");
    println!("infinite-array queue has no such escape and can livelock.");
    println!();

    // LSCQ: the portable sibling. Its dequeuers carry a threshold counter
    // (Nikolaev, arXiv:1908.04511) that exhausts on an empty ring, so the
    // storm stops issuing F&As entirely between enqueues; the enqueuer's
    // placement attempts stay bounded the same way LCRQ's do.
    let q = Lscq::with_config(LcrqConfig::new().with_ring_order(8));
    let o = hammer(&q, dequeuers, enqueues, Event::NodeVisit);
    println!("lscq (enqueuer-thread events only):");
    println!(
        "  ring-entry visits per enqueue: {:.3}",
        o.attempts_per_enqueue
    );
    println!(
        "  rings closed (full-ring tantrum escape hatch): {}",
        o.rings_closed
    );
    println!();
    println!("LSCQ needs no double-width CAS for this bound: cycle-tagged 64-bit");
    println!("entries plus the threshold counter give the same livelock freedom");
    println!("with single-word primitives.");
    lcrq_util::adversary::set_preempt_ppm(0);
}
