//! Batched-operation throughput: the pairs workload moved k items per
//! `enqueue_batch`/`dequeue_batch` call (extension beyond the paper).
//!
//! LCRQ's batch paths reserve k consecutive ring indices with a single
//! fetch-and-add, so the F&A-per-operation column should fall toward 1/k
//! for the LCRQ variants while the per-item CAS2 count stays flat. Queues
//! without a native bulk path (everything except LCRQ/LCRQ-CAS/LCRQ+H) run
//! the default scalar loop and serve as the control: their F&A/op column
//! does not move with k.
//!
//! Usage: `batch_throughput [--threads 4] [--pairs 20000]
//!         [--batches 1,4,16,64] [--ring-order 12]
//!         [--queues lcrq,lcrq-cas,ms] [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};

fn main() {
    let cli = Cli::from_env();
    let threads: usize = cli.get_smoke("threads", 4usize, 2);
    let pairs: u64 = cli.get_smoke("pairs", 20_000u64, 500);
    let ring_order: u32 = cli.get("ring-order", 12u32);
    let batches = cli.get_list_smoke("batches", &[1usize, 4, 16, 64], &[1, 16]);
    if let Some(&bad) = batches.iter().find(|&&b| b == 0) {
        eprintln!("error: --batches values must be >= 1 (got {bad})");
        std::process::exit(2);
    }
    let specs: Vec<QueueSpec> = match cli.get_str("queues") {
        Some(s) => QueueSpec::parse_list(s).unwrap_or_else(|e| {
            eprintln!("error: --queues: {e}");
            std::process::exit(2);
        }),
        None => [QueueKind::Lcrq, QueueKind::LcrqCas, QueueKind::Ms]
            .into_iter()
            .map(QueueSpec::backend)
            .collect(),
    };
    let specs: Vec<QueueSpec> = specs
        .into_iter()
        .map(|s| s.with_ring_order(ring_order))
        .collect();

    println!("# Batched pairs workload — {threads} threads, {pairs} pairs/thread, ring R = 2^{ring_order}");
    println!(
        "| queue | batch k | Mops/s | F&A/op | atomic ops/op | mean enq batch | mean deq batch |"
    );
    println!(
        "|-------|---------|--------|--------|---------------|----------------|----------------|"
    );
    for spec in &specs {
        for &batch in &batches {
            let mut cfg = RunConfig::new(threads).with_batch(batch);
            cfg.pairs = pairs;
            let q = spec.build();
            let r = run_workload(&q, &cfg);
            let c = &r.counters;
            let fmt_mean = |v: f64| {
                if v > 0.0 {
                    format!("{v:.1}")
                } else {
                    "-".to_string()
                }
            };
            println!(
                "| {} | {batch} | {:.3} | {:.3} | {:.2} | {} | {} |",
                spec,
                r.mops,
                c.faa_per_op(),
                c.atomic_ops_per_op(),
                fmt_mean(c.mean_enqueue_batch()),
                fmt_mean(c.mean_dequeue_batch()),
            );
        }
        println!("|-------|---------|--------|--------|---------------|----------------|----------------|");
    }
}
