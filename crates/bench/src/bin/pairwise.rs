//! Cross-library pairwise arena (ROADMAP open item "cross-library arena
//! benchmark"): races all 15 registry backends, the flagship sharded
//! composition, and the external baselines under the chaoran
//! fast-wait-free-queue methodology — enqueue/dequeue pairs with a
//! randomized 50–150 ns inter-operation delay, warmup discarded,
//! mean/stddev/margin-of-error over repeated runs — and emits the
//! schema-versioned `results/BENCH_arena.json` perf-trajectory artifact.
//!
//! Modes:
//!
//! * **Measure** (default): run the roster, print the table, write the
//!   artifact.
//!   `pairwise [--threads 1,4] [--pairs 5000] [--runs 6] [--warmup 1]
//!             [--delay 50,150] [--queues <spec;list>] [--external all|none]
//!             [--flagship-only] [--smoke] [--out results/BENCH_arena.json]`
//! * **Gate**: compare two artifacts, exit nonzero on a flagship
//!   regression (no benchmarking — deterministic, file-only).
//!   `pairwise --gate --baseline results/BENCH_arena.json --candidate fresh.json`
//! * **Fixtures**: derive the gate self-test fixtures from an artifact
//!   (`_drop` plants a 20 % flagship regression, `_pass` is the identity
//!   copy).
//!   `pairwise --make-fixtures --baseline results/BENCH_arena.json --out-dir results/fixtures`
//!
//! The delay RNG threads `LCRQ_TEST_SEED` through `rng::test_seed`, the
//! artifact records the seed, and every failure path prints it, so any
//! arena anomaly replays exactly (the PR 4 deflake convention).

use lcrq_bench::arena::{
    self, external_entries, flagship_names, registry_entries, ArenaArtifact, ArenaConfig, Entry,
};
use lcrq_bench::cli::Cli;
use lcrq_bench::stats::Summary;
use lcrq_bench::QueueSpec;
use std::process::ExitCode;

fn read_artifact(path: &str) -> Result<ArenaArtifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    ArenaArtifact::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn write_text(path: &str, text: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

/// `--gate`: pure artifact comparison, no measurement.
fn gate_mode(cli: &Cli) -> ExitCode {
    let Some(baseline_path) = cli.get_str("baseline") else {
        eprintln!("error: --gate needs --baseline <BENCH_arena.json>");
        return ExitCode::from(2);
    };
    let Some(candidate_path) = cli.get_str("candidate") else {
        eprintln!("error: --gate needs --candidate <BENCH_arena.json>");
        return ExitCode::from(2);
    };
    let threshold_note = format!(
        "drop > max({:.0}%, combined 95% margins) fails",
        arena::GATE_DROP_PCT
    );
    let (baseline, candidate) = match (read_artifact(baseline_path), read_artifact(candidate_path))
    {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let flagships = flagship_list(cli);
    println!(
        "# arena regression gate — baseline {baseline_path}, candidate {candidate_path}\n\
         # flagships: {}; {threshold_note}",
        flagships.join(", ")
    );
    let out = arena::regression_gate(&baseline, &candidate, &flagships);
    for line in &out.lines {
        println!("  {line}");
    }
    if out.passed() {
        println!("gate OK");
        ExitCode::SUCCESS
    } else {
        for f in &out.failures {
            eprintln!("error: {f}");
        }
        eprintln!(
            "error: arena regression gate failed — replay the candidate with \
             LCRQ_TEST_SEED={:#x} (baseline seed {:#x})",
            candidate.seed, baseline.seed
        );
        ExitCode::FAILURE
    }
}

/// `--make-fixtures`: derive the self-test fixtures from an artifact.
fn fixtures_mode(cli: &Cli) -> ExitCode {
    let Some(baseline_path) = cli.get_str("baseline") else {
        eprintln!("error: --make-fixtures needs --baseline <BENCH_arena.json>");
        return ExitCode::from(2);
    };
    let out_dir = cli.get_str("out-dir").unwrap_or("results/fixtures");
    let baseline = match read_artifact(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let flagships = flagship_list(cli);
    let (drop, pass) = match arena::make_fixtures(&baseline, &flagships) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (name, artifact) in [
        ("BENCH_arena_drop.json", &drop),
        ("BENCH_arena_pass.json", &pass),
    ] {
        let path = format!("{out_dir}/{name}");
        if let Err(e) = write_text(&path, &artifact.render()) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn flagship_list(cli: &Cli) -> Vec<String> {
    match cli.get_str("flagships") {
        Some(list) => list
            .split(';')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        None => flagship_names(),
    }
}

/// Builds the contender roster from the CLI selection. An explicit
/// `--ring-order` overrides ring sizes everywhere; otherwise `--queues`
/// specs keep whatever `ring=` they spell out (fig6's convention).
fn roster(cli: &Cli, ring_order: u32) -> Result<Vec<Entry>, String> {
    let reorder = |spec: QueueSpec| {
        if cli.get_str("ring-order").is_some() {
            spec.with_ring_order(ring_order)
        } else {
            spec
        }
    };
    if cli.has("flagship-only") {
        return flagship_names()
            .iter()
            .map(|name| QueueSpec::parse(name).map(|spec| Entry::from_spec(&reorder(spec))))
            .collect();
    }
    let mut entries = match cli.get_str("queues") {
        Some(list) => QueueSpec::parse_list(list)?
            .into_iter()
            .map(|spec| Entry::from_spec(&reorder(spec)))
            .collect(),
        None => registry_entries(ring_order),
    };
    match cli.get_str("external").unwrap_or("all") {
        "none" => {}
        "all" => entries.extend(external_entries()),
        other => {
            let wanted: Vec<&str> = other.split(',').map(str::trim).collect();
            let all = external_entries();
            for name in &wanted {
                if !all.iter().any(|e| &e.name == name) {
                    return Err(format!(
                        "unknown external contender '{name}' (have: {})",
                        all.iter()
                            .map(|e| e.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
            entries.extend(
                all.into_iter()
                    .filter(|e| wanted.contains(&e.name.as_str())),
            );
        }
    }
    Ok(entries)
}

fn measure_mode(cli: &Cli) -> ExitCode {
    let smoke = cli.has("smoke");
    let threads_list = cli.get_list("threads", if smoke { &[2] } else { &[1, 4] });
    let pairs: u64 = cli.get("pairs", if smoke { 300 } else { 5_000 });
    let runs: usize = cli.get("runs", if smoke { 2 } else { 6 });
    let warmup: usize = cli.get("warmup", if smoke { 0 } else { 1 });
    let ring_order: u32 = cli.get("ring-order", 12u32);
    let delay = cli.get_list("delay", &[50, 150]);
    let (delay_lo, delay_hi) = match delay.as_slice() {
        [lo, hi] if lo <= hi => (*lo as u64, *hi as u64),
        _ => {
            eprintln!("error: --delay wants 'lo,hi' in ns with lo <= hi");
            return ExitCode::from(2);
        }
    };
    let out_path = cli
        .get_str("out")
        .unwrap_or(if smoke {
            "target/smoke/BENCH_arena.json"
        } else {
            "results/BENCH_arena.json"
        })
        .to_string();
    let seed = lcrq_util::rng::test_seed(0xA5E2_A000_2026_0809);
    let entries = match roster(cli, ring_order) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "# pairwise arena — {} contenders, threads {:?}, {pairs} pairs/thread, \
         {runs} runs (+{warmup} warmup), delay {delay_lo}-{delay_hi} ns, seed {seed:#x}",
        entries.len(),
        threads_list
    );
    println!("| contender | threads | mean Mops/s | stddev | moe (95%) | moe % |");
    println!("|-----------|---------|-------------|--------|-----------|-------|");

    // Process-level warm-up: the first entry in the roster otherwise eats
    // the CPU governor's frequency ramp (measured: the same queue's moe is
    // ~15% when measured first in the process, ~1% when measured later),
    // which per-entry warmup runs are too short to absorb.
    if !smoke {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < std::time::Duration::from_millis(300) {
            std::hint::spin_loop();
        }
    }

    let mut rows = Vec::new();
    for entry in &entries {
        for &threads in &threads_list {
            let cfg = ArenaConfig {
                threads,
                pairs,
                delay_ns: (delay_lo, delay_hi),
                runs,
                warmup,
                seed,
            };
            let samples = match arena::run_entry(entry, &cfg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(summary) = Summary::from_samples(&samples) else {
                eprintln!(
                    "error: {}: degenerate samples {samples:?} — replay with \
                     LCRQ_TEST_SEED={seed:#x}",
                    entry.name
                );
                return ExitCode::FAILURE;
            };
            println!(
                "| {} | {} | {:.3} | {:.3} | ±{:.3} | {:.1}% |",
                entry.name,
                threads,
                summary.mean,
                summary.stddev,
                summary.moe,
                summary.moe_pct()
            );
            rows.push(arena::ArenaRow {
                contender: entry.name.clone(),
                external: entry.external,
                synthetic: entry.synthetic,
                threads,
                samples,
                summary,
            });
        }
    }

    let artifact = ArenaArtifact {
        seed,
        pairs,
        runs,
        warmup,
        delay_ns: (delay_lo, delay_hi),
        cas2_backend: lcrq_atomic::cas2_backend().to_string(),
        rows,
    };
    match write_text(&out_path, &artifact.render()) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cli = Cli::from_env();
    if cli.has("gate") {
        gate_mode(&cli)
    } else if cli.has("make-fixtures") {
        fixtures_mode(&cli)
    } else {
        measure_mode(&cli)
    }
}
