//! Table 3: four-processor average per-operation statistics at 80 threads,
//! queue initially empty and initially full (2^16 items).
//!
//! Same substitutions as `table2_stats` (software counters, simulated
//! clusters — DESIGN.md P1/P3). Paper's shape: prefilling *reduces* LCRQ's
//! instruction count (dequeuers stop spinning for matching enqueuers:
//! 307 → 279 instructions/op) while *inflating* the combining queues' work
//! (CC-Queue 16k → 18k instructions/op); LCRQ/LCRQ+H keep exactly 2 atomic
//! ops per operation in both settings.
//!
//! Usage: `table3_stats [--threads 80] [--pairs 2000] [--ring-order 12]
//!         [--clusters 4] [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};
use lcrq_util::metrics::Event;

fn main() {
    let cli = Cli::from_env();
    let threads: usize = cli.get_smoke("threads", 80usize, 8);
    let pairs: u64 = cli.get_smoke("pairs", 2_000u64, 200);
    let ring_order: u32 = cli.get("ring-order", 12u32);
    let clusters: usize = cli.get("clusters", 4usize);
    // Optional scheduler adversary (see lcrq_util::adversary and DESIGN.md
    // P1): emulates preemption landing inside critical windows, which this
    // 1-core host's natural scheduling cannot produce.
    lcrq_util::adversary::set_preempt_ppm(cli.get("preempt-ppm", 0u32));
    let kinds = [
        QueueKind::LcrqH,
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::H,
        QueueKind::Cc,
    ];

    for prefill in [0u64, 1 << 16] {
        println!(
            "## Table 3 — {threads} threads, {clusters} simulated clusters, queue initially {}",
            if prefill > 0 { "full (2^16)" } else { "empty" }
        );
        println!("# pairs/thread = {pairs}, ring R = 2^{ring_order}");
        println!("| queue | latency (µs/op) | atomic ops/op | F&A/op | allocs/op | parks/op | CAS fail | CAS2 fail | spin waits/op | combiner batch |");
        println!("|-------|-----------------|---------------|--------|-----------|----------|----------|-----------|---------------|----------------|");
        for &k in &kinds {
            let mut cfg = RunConfig::new(threads);
            cfg.pairs = pairs;
            cfg.prefill = prefill;
            cfg.clusters = clusters;
            let q = QueueSpec::backend(k)
                .with_ring_order(ring_order)
                .with_clusters(clusters)
                .build();
            let r = run_workload(&q, &cfg);
            let c = &r.counters;
            let rounds = c.get(Event::CombinerRound);
            let batch = if rounds > 0 {
                format!("{:.1}", c.get(Event::OpsCombined) as f64 / rounds as f64)
            } else {
                "-".to_string()
            };
            let spins = c.get(Event::SpinWait) as f64 / c.total_ops().max(1) as f64;
            println!(
                "| {} | {:.2} | {:.2} | {:.2} | {:.4} | {:.3} | {:.1}% | {:.1}% | {spins:.2} | {batch} |",
                k.name(),
                r.mean_op_latency_ns() / 1_000.0,
                c.atomic_ops_per_op(),
                c.faa_per_op(),
                c.allocs_per_op(),
                c.parks_per_op(),
                100.0 * c.cas_failure_rate(),
                100.0 * c.cas2_failure_rate(),
            );
        }
        println!();
    }
}
