//! Table 2: single-processor average per-operation statistics at 1 and 20
//! threads (queue initially empty).
//!
//! The paper's columns are relative latency, instructions, atomic
//! operations, and L1/L2 misses from hardware counters. We reproduce the
//! *latency* and *atomic operations* columns exactly and substitute software
//! counters for the rest (DESIGN.md P3): CAS/CAS2 failure rates and ring
//! retries measure the same wasted work the paper's miss counts proxy.
//!
//! Paper's shape at 20 threads: LCRQ ≈ 2 atomic ops/op with near-zero CAS
//! failures; LCRQ-CAS > 3 atomic ops/op with a high failure rate; CC-Queue
//! ≈ 1; FC ≈ 0.21 (amortized through the combiner); MS ≈ 4.3 with heavy
//! failures.
//!
//! Usage: `table2_stats [--threads 1,20] [--pairs 20000] [--ring-order 12]
//!         [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};
use lcrq_util::metrics::Event;

fn main() {
    let cli = Cli::from_env();
    let thread_points = cli.get_list_smoke("threads", &[1, 20], &[1, 2]);
    let pairs: u64 = cli.get_smoke("pairs", 20_000u64, 300);
    let ring_order: u32 = cli.get("ring-order", 12u32);
    // Optional scheduler adversary (see lcrq_util::adversary and DESIGN.md
    // P1): emulates preemption landing inside critical windows, which this
    // 1-core host's natural scheduling cannot produce.
    lcrq_util::adversary::set_preempt_ppm(cli.get("preempt-ppm", 0u32));
    let kinds = [
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::Lscq,
        QueueKind::LscqCas,
        QueueKind::Wcq,
        QueueKind::Cc,
        QueueKind::Fc,
        QueueKind::Ms,
    ];

    for &threads in &thread_points {
        println!("## Table 2 — {threads} thread(s), queue initially empty");
        println!("# pairs/thread = {pairs}, ring R = 2^{ring_order}");
        println!("| queue | latency (ns/op) | rel. latency | atomic ops/op | F&A/op | allocs/op | parks/op | CAS fail rate | CAS2 fail rate | combiner batch |");
        println!("|-------|-----------------|--------------|---------------|--------|-----------|----------|---------------|----------------|----------------|");
        let mut base_latency = None;
        for &k in &kinds {
            let mut cfg = RunConfig::new(threads);
            cfg.pairs = pairs;
            let q = QueueSpec::backend(k).with_ring_order(ring_order).build();
            let r = run_workload(&q, &cfg);
            let lat = r.mean_op_latency_ns();
            let rel = base_latency.map_or(1.0, |b: f64| lat / b);
            if base_latency.is_none() {
                base_latency = Some(lat);
            }
            let c = &r.counters;
            let rounds = c.get(Event::CombinerRound);
            let batch = if rounds > 0 {
                format!("{:.1}", c.get(Event::OpsCombined) as f64 / rounds as f64)
            } else {
                "-".to_string()
            };
            println!(
                "| {} | {lat:.0} | {rel:.2}x | {:.2} | {:.2} | {:.4} | {:.3} | {:.1}% | {:.1}% | {batch} |",
                k.name(),
                c.atomic_ops_per_op(),
                c.faa_per_op(),
                c.allocs_per_op(),
                c.parks_per_op(),
                100.0 * c.cas_failure_rate(),
                100.0 * c.cas2_failure_rate(),
            );
        }
        println!();
    }
}
