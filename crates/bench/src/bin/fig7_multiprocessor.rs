//! Figure 7: throughput on four processors (threads spread round-robin
//! across sockets), initially empty (7b) or prefilled with 2^16 items (7a).
//!
//! Paper's shape: only the hierarchical algorithms (LCRQ+H, H-Queue) scale
//! past ~16 threads; prefilling *helps* LCRQ (≈+5%, dequeuers stop waiting
//! for matching enqueuers) but *hurts* the combining queues (reduced
//! locality: CC-Queue ≈−10%, H-Queue ≈−40%), stretching LCRQ's lead from
//! ≈1.5× to ≈1.8× and LCRQ+H's from 1.5× to 2.5×.
//!
//! Substitution (DESIGN.md P1): this host has one socket (and one hardware
//! thread), so "processors" are 4 *simulated* clusters — thread `t` declares
//! cluster `t % 4`, exercising the identical H-Synch / LCRQ+H cluster code
//! paths without NUMA latency.
//!
//! Usage: `fig7_multiprocessor [--threads 4,8,16,32,80] [--pairs 10000]
//!         [--runs 3] [--ring-order 12] [--clusters 4] [--prefill 65536]
//!         [--smoke]`

use lcrq_bench::cli::Cli;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};

fn main() {
    let cli = Cli::from_env();
    let threads = cli.get_list_smoke("threads", &[4, 8, 16, 32, 48, 80], &[2, 4]);
    let pairs: u64 = cli.get_smoke("pairs", 10_000u64, 300);
    let runs: usize = cli.get_smoke("runs", 3usize, 1);
    let ring_order: u32 = cli.get("ring-order", 12u32);
    let clusters: usize = cli.get("clusters", 4usize);
    let prefill: u64 = cli.get("prefill", 0u64);
    // Optional scheduler adversary (see lcrq_util::adversary and DESIGN.md
    // P1): emulates preemption landing inside critical windows, which this
    // 1-core host's natural scheduling cannot produce.
    lcrq_util::adversary::set_preempt_ppm(cli.get("preempt-ppm", 0u32));
    let specs: Vec<QueueSpec> = [
        QueueKind::LcrqH,
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::H,
        QueueKind::Cc,
    ]
    .into_iter()
    .map(|k| {
        QueueSpec::backend(k)
            .with_ring_order(ring_order)
            .with_clusters(clusters)
    })
    .collect();

    println!(
        "# Figure 7{}: {} simulated clusters, queue initially {} (Mops/s)",
        if prefill > 0 { "a" } else { "b" },
        clusters,
        if prefill > 0 { "full (2^16)" } else { "empty" },
    );
    println!("# pairs/thread = {pairs}, runs = {runs} (median), ring R = 2^{ring_order}");
    print!("| threads |");
    for s in &specs {
        print!(" {} |", s.family());
    }
    println!();
    print!("|---------|");
    for _ in &specs {
        print!("---|");
    }
    println!();
    for &t in &threads {
        print!("| {t} |");
        for spec in &specs {
            let mut cfg = RunConfig::new(t);
            cfg.pairs = pairs;
            cfg.prefill = prefill;
            cfg.clusters = clusters;
            let mut all = Vec::new();
            for _ in 0..runs {
                let q = spec.build();
                all.push(run_workload(&q, &cfg).mops);
            }
            all.sort_by(f64::total_cmp);
            print!(" {:.3} |", all[all.len() / 2]);
        }
        println!();
    }
}
