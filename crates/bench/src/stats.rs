//! Multi-run summary statistics for the arena harness.
//!
//! The chaoran fast-wait-free-queue driver (SNIPPETS.md snippet 2) reports
//! the **mean** of up to ten runs together with the **standard deviation**
//! and a **margin of error**; the wCQ paper (arXiv:2201.02179) evaluates
//! the same way. This module reproduces that reporting: sample mean,
//! sample (n−1) standard deviation, and a 95 % confidence half-width from
//! Student's t distribution — the margin of error the `pairwise` arena
//! writes into `results/BENCH_arena.json` and the regression gate uses to
//! separate real throughput drops from run-to-run noise.

/// Two-sided 97.5 % Student's t quantiles for 1–30 degrees of freedom;
/// larger samples fall back to the normal quantile 1.96. Values are the
/// standard table entries (Abramowitz & Stegun 26.7), which is plenty for
/// a margin-of-error readout.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 97.5 % t quantile for `df` degrees of freedom (95 % two-sided
/// confidence). `df = 0` has no defined interval; callers never ask for it
/// (a single sample reports a zero margin instead).
pub fn t_quantile_975(df: usize) -> f64 {
    match df {
        0 => f64::NAN,
        1..=30 => T_975[df - 1],
        _ => 1.96,
    }
}

/// Summary of one sample set (one contender × thread-count cell's measured
/// runs, in Mops/s).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub stddev: f64,
    /// 95 % confidence half-width: `t(0.975, n−1) · stddev / √n`
    /// (0 for a single sample — no spread information, not certainty).
    pub moe: f64,
}

impl Summary {
    /// Summarizes `samples`. Returns `None` for an empty slice or when any
    /// sample is non-finite (NaN/±∞) — a NaN throughput means the run
    /// itself was broken, and silently averaging it would launder the
    /// failure into a plausible-looking number.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Some(Self {
                n,
                mean,
                stddev: 0.0,
                moe: 0.0,
            });
        }
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let moe = t_quantile_975(n - 1) * stddev / (n as f64).sqrt();
        Some(Self {
            n,
            mean,
            stddev,
            moe,
        })
    }

    /// The margin of error as a percentage of the mean (what the chaoran
    /// driver prints); 0 when the mean is 0.
    pub fn moe_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.moe / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn mean_and_stddev_match_closed_form() {
        // Textbook set: mean 5, sample variance 32/7, stddev √(32/7).
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!(close(s.mean, 5.0, 1e-12), "mean {}", s.mean);
        let expect = (32.0f64 / 7.0).sqrt();
        assert!(close(s.stddev, expect, 1e-12), "stddev {}", s.stddev);
        // moe = t(0.975, 7) · stddev / √8
        let moe = 2.365 * expect / 8.0f64.sqrt();
        assert!(close(s.moe, moe, 1e-9), "moe {}", s.moe);
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = Summary::from_samples(&[3.25; 10]).unwrap();
        assert!(close(s.mean, 3.25, 1e-12));
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.moe, 0.0);
        assert_eq!(s.moe_pct(), 0.0);
    }

    #[test]
    fn two_samples_use_the_wide_t_quantile() {
        // n=2: stddev = |a−b|/√2, moe = 12.706 · stddev / √2.
        let s = Summary::from_samples(&[1.0, 3.0]).unwrap();
        assert!(close(s.mean, 2.0, 1e-12));
        assert!(close(s.stddev, 2.0f64.sqrt(), 1e-12));
        assert!(close(s.moe, 12.706 * 2.0f64.sqrt() / 2.0f64.sqrt(), 1e-9));
        assert!(s.moe > s.stddev, "tiny samples must report wide margins");
    }

    #[test]
    fn single_sample_has_zero_margin_not_nan() {
        let s = Summary::from_samples(&[7.5]).unwrap();
        assert_eq!((s.n, s.mean), (1, 7.5));
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.moe, 0.0);
        assert!(s.moe.is_finite() && s.stddev.is_finite());
    }

    #[test]
    fn nan_and_infinite_samples_are_rejected() {
        assert!(Summary::from_samples(&[1.0, f64::NAN, 2.0]).is_none());
        assert!(Summary::from_samples(&[f64::INFINITY]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NEG_INFINITY]).is_none());
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn moe_pct_scales_with_the_mean() {
        let s = Summary::from_samples(&[9.0, 10.0, 11.0]).unwrap();
        assert!(close(s.moe_pct(), 100.0 * s.moe / 10.0, 1e-9));
        let zero = Summary::from_samples(&[0.0, 0.0]).unwrap();
        assert_eq!(zero.moe_pct(), 0.0);
    }

    #[test]
    fn t_table_boundaries() {
        assert!(t_quantile_975(0).is_nan());
        assert!(close(t_quantile_975(1), 12.706, 1e-9));
        assert!(close(t_quantile_975(30), 2.042, 1e-9));
        assert!(close(t_quantile_975(31), 1.96, 1e-9));
        assert!(close(t_quantile_975(1000), 1.96, 1e-9));
        // Quantiles decrease toward the normal limit.
        for df in 1..40 {
            assert!(t_quantile_975(df) >= t_quantile_975(df + 1) - 1e-12);
        }
    }
}
