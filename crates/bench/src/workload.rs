//! The paper's enqueue/dequeue-pairs workload (§5, "Methodology").

use lcrq_queues::ConcurrentQueue;
use lcrq_util::metrics::{self, Event};
use lcrq_util::spin::spin_for_ns;
use lcrq_util::topology::set_current_cluster;
use lcrq_util::{LatencyHistogram, XorShift64Star};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Parameters of one measured run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Enqueue/dequeue pairs per thread (the paper uses 10^7; scale down on
    /// small hosts).
    pub pairs: u64,
    /// Items enqueued before the measurement starts (Figure 7a uses 2^16).
    pub prefill: u64,
    /// Upper bound of the random inter-operation pause (paper: 100 ns;
    /// 0 disables).
    pub max_delay_ns: u64,
    /// Simulated clusters: thread `t` declares cluster `t % clusters`
    /// (matching the paper's round-robin socket pinning). 1 = flat.
    pub clusters: usize,
    /// Record per-operation latency (Figure 8); adds two clock reads per op.
    /// With `batch > 1` the histogram records per-*batch* call latency.
    pub record_latency: bool,
    /// Pin threads round-robin over available CPUs (no-op on 1-CPU hosts).
    pub pin: bool,
    /// Operations per batch call: 1 runs the paper's scalar pairs loop;
    /// `k > 1` moves `k` items per `enqueue_batch`/`dequeue_batch` call,
    /// exercising the multi-slot F&A reservation path (one F&A per k ops on
    /// LCRQ instead of one per op). Totals stay `2 × threads × pairs`.
    pub batch: usize,
}

impl RunConfig {
    /// A small default: 4 threads, 10⁴ pairs, paper-style 100 ns jitter.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            pairs: 10_000,
            prefill: 0,
            max_delay_ns: 100,
            clusters: 1,
            record_latency: false,
            pin: true,
            batch: 1,
        }
    }

    /// Returns `self` with [`batch`](RunConfig::batch) set to `k`.
    pub fn with_batch(mut self, k: usize) -> Self {
        assert!(k > 0, "batch must be at least 1");
        self.batch = k;
        self
    }
}

/// Results of one measured run.
#[derive(Debug)]
pub struct RunResult {
    /// Wall-clock duration of the measured region.
    pub wall: Duration,
    /// Completed operations (2 × threads × pairs).
    pub total_ops: u64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Software performance counters accumulated during the run.
    pub counters: metrics::Snapshot,
    /// Merged per-operation latency histogram (if requested).
    pub latency: Option<LatencyHistogram>,
    /// Number of threads the run used (for derived statistics).
    pub threads_used: usize,
}

impl RunResult {
    /// Mean per-operation latency in nanoseconds, measured as wall time ×
    /// threads / ops — the "latency" the paper's tables report (total CPU
    /// time per completed operation).
    pub fn mean_op_latency_ns(&self) -> f64 {
        self.wall.as_nanos() as f64 * self.threads_used as f64 / self.total_ops as f64
    }
}

/// Runs the pairs workload once and collects throughput + counters.
pub fn run_workload<Q: ConcurrentQueue>(queue: &Q, cfg: &RunConfig) -> RunResult {
    assert!(cfg.threads > 0 && cfg.pairs > 0);
    // Prefill happens *before* the baseline snapshot so its atomic
    // operations (including any ring spills) do not pollute the measured
    // per-operation statistics.
    for i in 0..cfg.prefill {
        queue.enqueue(i);
    }
    metrics::flush(); // park prefill + stale counts outside the window
    let before = metrics::snapshot();

    let barrier = Barrier::new(cfg.threads + 1);
    let hist_sink: Mutex<LatencyHistogram> = Mutex::new(LatencyHistogram::new());
    let (barrier_ref, hist_ref) = (&barrier, &hist_sink);

    let wall = std::thread::scope(|s| {
        for t in 0..cfg.threads {
            s.spawn(move || {
                if cfg.pin {
                    let _ = lcrq_util::affinity::pin_round_robin(t);
                }
                set_current_cluster(t % cfg.clusters.max(1));
                let mut rng = XorShift64Star::new(0x9E37 + t as u64);
                let mut local_hist = cfg.record_latency.then(LatencyHistogram::new);
                barrier_ref.wait();
                if cfg.batch <= 1 {
                    for i in 0..cfg.pairs {
                        let v = ((t as u64) << 40) | i;
                        if let Some(h) = &mut local_hist {
                            let t0 = Instant::now();
                            queue.enqueue(v);
                            h.record(t0.elapsed().as_nanos() as u64);
                        } else {
                            queue.enqueue(v);
                        }
                        metrics::inc(Event::EnqOp);
                        if cfg.max_delay_ns > 0 {
                            spin_for_ns(rng.next_below(cfg.max_delay_ns + 1));
                        }
                        let got = if let Some(h) = &mut local_hist {
                            let t0 = Instant::now();
                            let got = queue.dequeue();
                            h.record(t0.elapsed().as_nanos() as u64);
                            got
                        } else {
                            queue.dequeue()
                        };
                        metrics::inc(if got.is_some() {
                            Event::DeqOp
                        } else {
                            Event::DeqEmpty
                        });
                        if cfg.max_delay_ns > 0 {
                            spin_for_ns(rng.next_below(cfg.max_delay_ns + 1));
                        }
                    }
                } else {
                    // Batched pairs: same 2 × pairs operation total, moved
                    // k at a time. A dequeue-batch shortfall counts one
                    // DeqEmpty per unfulfilled slot — the accounting twin
                    // of the scalar loop's empty dequeues.
                    let mut vals = Vec::with_capacity(cfg.batch);
                    let mut got = Vec::with_capacity(cfg.batch);
                    let mut i = 0u64;
                    while i < cfg.pairs {
                        let n = (cfg.batch as u64).min(cfg.pairs - i) as usize;
                        vals.clear();
                        vals.extend((0..n as u64).map(|j| ((t as u64) << 40) | (i + j)));
                        if let Some(h) = &mut local_hist {
                            let t0 = Instant::now();
                            queue.enqueue_batch(&vals);
                            h.record(t0.elapsed().as_nanos() as u64);
                        } else {
                            queue.enqueue_batch(&vals);
                        }
                        metrics::add(Event::EnqOp, n as u64);
                        if cfg.max_delay_ns > 0 {
                            spin_for_ns(rng.next_below(cfg.max_delay_ns + 1));
                        }
                        got.clear();
                        let taken = if let Some(h) = &mut local_hist {
                            let t0 = Instant::now();
                            let taken = queue.dequeue_batch(&mut got, n);
                            h.record(t0.elapsed().as_nanos() as u64);
                            taken
                        } else {
                            queue.dequeue_batch(&mut got, n)
                        };
                        metrics::add(Event::DeqOp, taken as u64);
                        metrics::add(Event::DeqEmpty, (n - taken) as u64);
                        if cfg.max_delay_ns > 0 {
                            spin_for_ns(rng.next_below(cfg.max_delay_ns + 1));
                        }
                        i += n as u64;
                    }
                }
                metrics::flush();
                if let Some(h) = local_hist {
                    hist_ref.lock().unwrap().merge(&h);
                }
            });
        }
        // Start the clock *before* releasing the barrier: on a single-core
        // host a worker may otherwise run to completion before this thread
        // is rescheduled, yielding a near-zero measurement.
        let start = Instant::now();
        barrier_ref.wait();
        // scope joins all workers on exit
        ScopeTimer { start }
    });

    let wall = wall.start.elapsed();
    let after = metrics::snapshot();
    let total_ops = 2 * cfg.threads as u64 * cfg.pairs;
    RunResult {
        wall,
        total_ops,
        mops: total_ops as f64 / wall.as_secs_f64() / 1e6,
        counters: after.delta_since(&before),
        latency: cfg
            .record_latency
            .then(|| std::mem::take(&mut *hist_sink.lock().unwrap())),
        threads_used: cfg.threads,
    }
}

struct ScopeTimer {
    start: Instant,
}

/// Runs the workload `runs` times and returns the run with median
/// throughput plus the mean throughput (the paper averages 10 runs).
pub fn run_averaged<Q: ConcurrentQueue>(
    mk_queue: impl Fn() -> Q,
    cfg: &RunConfig,
    runs: usize,
) -> (RunResult, f64) {
    assert!(runs > 0);
    let mut results: Vec<RunResult> = (0..runs)
        .map(|_| {
            let q = mk_queue();
            run_workload(&q, cfg)
        })
        .collect();
    let mean = results.iter().map(|r| r.mops).sum::<f64>() / runs as f64;
    results.sort_by(|a, b| a.mops.total_cmp(&b.mops));
    let median = results.remove(runs / 2);
    (median, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrq_core::Lcrq;

    #[test]
    fn workload_completes_and_counts_ops() {
        let q = Lcrq::new();
        let mut cfg = RunConfig::new(2);
        cfg.pairs = 500;
        cfg.max_delay_ns = 0;
        cfg.pin = false;
        let r = run_workload(&q, &cfg);
        assert_eq!(r.total_ops, 2_000);
        assert!(r.mops > 0.0);
        let enq = r.counters.get(Event::EnqOp);
        assert_eq!(enq, 1_000);
        assert_eq!(
            r.counters.get(Event::DeqOp) + r.counters.get(Event::DeqEmpty),
            1_000
        );
    }

    #[test]
    fn batched_workload_counts_ops_and_amortizes_faa() {
        let q = Lcrq::new();
        let mut cfg = RunConfig::new(2).with_batch(16);
        cfg.pairs = 512;
        cfg.max_delay_ns = 0;
        cfg.pin = false;
        let r = run_workload(&q, &cfg);
        assert_eq!(r.total_ops, 2_048);
        assert_eq!(r.counters.get(Event::EnqOp), 1_024);
        assert_eq!(
            r.counters.get(Event::DeqOp) + r.counters.get(Event::DeqEmpty),
            1_024
        );
        // Every enqueued item must come back out (pairs are balanced and
        // dequeue_batch only falls short on a genuinely empty queue).
        assert!(r.counters.get(Event::BatchEnqueue) >= 2 * 512 / 16);
        assert!(r.counters.mean_enqueue_batch() > 1.0);
        // The batch path must spend far fewer F&As than two per pair.
        assert!(
            r.counters.faa_per_op() < 1.0,
            "k=16 batches should amortize F&A below 1/op, got {}",
            r.counters.faa_per_op()
        );
    }

    #[test]
    fn batched_and_scalar_runs_move_the_same_items() {
        for batch in [1usize, 4, 16] {
            let q = Lcrq::new();
            let mut cfg = RunConfig::new(1).with_batch(batch);
            cfg.pairs = 333; // not a multiple of the batch: exercises the tail
            cfg.max_delay_ns = 0;
            cfg.pin = false;
            let r = run_workload(&q, &cfg);
            assert_eq!(r.counters.get(Event::EnqOp), 333, "batch={batch}");
            // Single-threaded balanced pairs: nothing may remain.
            assert_eq!(q.dequeue(), None, "batch={batch}");
            assert_eq!(r.counters.get(Event::DeqOp), 333, "batch={batch}");
        }
    }

    #[test]
    fn prefill_leaves_items_behind() {
        let q = Lcrq::new();
        let mut cfg = RunConfig::new(1);
        cfg.pairs = 100;
        cfg.prefill = 50;
        cfg.max_delay_ns = 0;
        cfg.pin = false;
        let r = run_workload(&q, &cfg);
        // Pairs are balanced, so the 50 prefilled items (or equivalents)
        // remain.
        let mut left = 0;
        while q.dequeue().is_some() {
            left += 1;
        }
        assert_eq!(left, 50);
        assert_eq!(
            r.counters.get(Event::DeqEmpty),
            0,
            "never empty with prefill"
        );
    }

    #[test]
    fn latency_recording_produces_histogram() {
        let q = Lcrq::new();
        let mut cfg = RunConfig::new(1);
        cfg.pairs = 200;
        cfg.record_latency = true;
        cfg.max_delay_ns = 0;
        cfg.pin = false;
        let r = run_workload(&q, &cfg);
        let h = r.latency.expect("histogram requested");
        assert_eq!(h.count(), 400);
        assert!(h.percentile(99.0) >= h.percentile(50.0));
    }

    #[test]
    fn averaged_runs_return_median() {
        let cfg = {
            let mut c = RunConfig::new(1);
            c.pairs = 100;
            c.max_delay_ns = 0;
            c.pin = false;
            c
        };
        let (median, mean) = run_averaged(Lcrq::new, &cfg, 3);
        assert!(median.mops > 0.0 && mean > 0.0);
    }
}
