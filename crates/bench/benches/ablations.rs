//! Ablations of LCRQ's design choices (DESIGN.md §5) plus an ecosystem
//! reference point:
//!
//! * bounded-wait optimization on/off (§4.1.1) — off forces extra empty
//!   transitions when a dequeuer races its matching enqueuer;
//! * starvation limit — tiny limits close rings eagerly (ring churn),
//!   huge limits defer closing (more wasted attempts under adversity);
//! * hierarchical timeout — the LCRQ+H cluster gate;
//! * the bare CRQ vs the full LCRQ (cost of hazard pointers + list);
//! * `crossbeam::queue::SegQueue` as a modern-ecosystem baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcrq_bench::{run_workload, RunConfig};
use lcrq_core::{Crq, HierarchicalConfig, Lcrq, LcrqConfig};
use lcrq_queues::ConcurrentQueue;
use std::time::Duration;

const THREADS: usize = 4;

fn cfg_for(pairs: u64) -> RunConfig {
    let mut cfg = RunConfig::new(THREADS);
    cfg.pairs = pairs;
    cfg.max_delay_ns = 0;
    cfg.pin = false;
    cfg
}

fn group<'a>(c: &'a mut Criterion, name: &str) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(2 * THREADS as u64));
    g
}

fn bench_bounded_wait(c: &mut Criterion) {
    let mut g = group(c, "ablation_bounded_wait");
    for &spins in &[0u32, 32, 128, 512] {
        g.bench_with_input(BenchmarkId::new("spins", spins), &spins, |b, &s| {
            b.iter_custom(|iters| {
                let q = Lcrq::with_config(LcrqConfig::new().with_bounded_wait(s));
                run_workload(&q, &cfg_for(iters.max(1))).wall
            });
        });
    }
    g.finish();
}

fn bench_starvation_limit(c: &mut Criterion) {
    let mut g = group(c, "ablation_starvation_limit");
    for &limit in &[2u32, 16, 128, 1024] {
        g.bench_with_input(BenchmarkId::new("limit", limit), &limit, |b, &l| {
            b.iter_custom(|iters| {
                // Small ring so closes actually happen.
                let q = Lcrq::with_config(
                    LcrqConfig::new().with_ring_order(4).with_starvation_limit(l),
                );
                run_workload(&q, &cfg_for(iters.max(1))).wall
            });
        });
    }
    g.finish();
}

fn bench_hierarchical_timeout(c: &mut Criterion) {
    let mut g = group(c, "ablation_hier_timeout");
    for &us in &[0u64, 10, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("timeout_us", us), &us, |b, &us| {
            b.iter_custom(|iters| {
                let q = Lcrq::with_config(LcrqConfig::new().with_hierarchical(
                    HierarchicalConfig {
                        timeout: Duration::from_micros(us),
                    },
                ));
                let mut cfg = cfg_for(iters.max(1));
                cfg.clusters = 4;
                run_workload(&q, &cfg).wall
            });
        });
    }
    g.finish();
}

fn bench_crq_vs_lcrq(c: &mut Criterion) {
    let mut g = group(c, "ablation_crq_vs_lcrq");
    g.bench_function("bare_crq", |b| {
        b.iter_custom(|iters| {
            // A bare CRQ sized to never close: measures the ring protocol
            // alone, without hazard pointers or list management.
            let q = Crq::<lcrq_atomic::HardwareFaa>::new(
                &LcrqConfig::new().with_ring_order(16),
            );
            struct CrqAsQueue<'a>(&'a Crq);
            impl ConcurrentQueue for CrqAsQueue<'_> {
                fn enqueue(&self, v: u64) {
                    self.0.enqueue(v).expect("ring sized to never close");
                }
                fn dequeue(&self) -> Option<u64> {
                    self.0.dequeue()
                }
                fn name(&self) -> &'static str {
                    "crq"
                }
                fn is_nonblocking(&self) -> bool {
                    true
                }
            }
            run_workload(&CrqAsQueue(&q), &cfg_for(iters.max(1))).wall
        });
    });
    g.bench_function("full_lcrq", |b| {
        b.iter_custom(|iters| {
            let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(16));
            run_workload(&q, &cfg_for(iters.max(1))).wall
        });
    });
    g.finish();
}

fn bench_crossbeam_reference(c: &mut Criterion) {
    let mut g = group(c, "reference_crossbeam");
    struct CbQueue(crossbeam::queue::SegQueue<u64>);
    impl ConcurrentQueue for CbQueue {
        fn enqueue(&self, v: u64) {
            self.0.push(v);
        }
        fn dequeue(&self) -> Option<u64> {
            self.0.pop()
        }
        fn name(&self) -> &'static str {
            "crossbeam-segqueue"
        }
        fn is_nonblocking(&self) -> bool {
            true
        }
    }
    g.bench_function("crossbeam_segqueue", |b| {
        b.iter_custom(|iters| {
            let q = CbQueue(crossbeam::queue::SegQueue::new());
            run_workload(&q, &cfg_for(iters.max(1))).wall
        });
    });
    g.bench_function("lcrq", |b| {
        b.iter_custom(|iters| {
            let q = Lcrq::new();
            run_workload(&q, &cfg_for(iters.max(1))).wall
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bounded_wait,
    bench_starvation_limit,
    bench_hierarchical_timeout,
    bench_crq_vs_lcrq,
    bench_crossbeam_reference
);
criterion_main!(benches);
