//! Ablations of LCRQ's design choices (DESIGN.md §5):
//!
//! * bounded-wait optimization on/off (§4.1.1) — off forces extra empty
//!   transitions when a dequeuer races its matching enqueuer;
//! * starvation limit — tiny limits close rings eagerly (ring churn),
//!   huge limits defer closing (more wasted attempts under adversity);
//! * hierarchical timeout — the LCRQ+H cluster gate;
//! * the bare CRQ vs the full LCRQ (cost of hazard pointers + list);
//! * scalar vs batched operations (one F&A per k-item reservation).
//!
//! (The former `crossbeam::queue::SegQueue` ecosystem reference was dropped
//! when the workspace went dependency-free for offline builds.)

use lcrq_bench::microbench::Runner;
use lcrq_bench::{run_workload, RunConfig};
use lcrq_core::{Crq, HierarchicalConfig, Lcrq, LcrqConfig};
use lcrq_queues::ConcurrentQueue;
use std::time::Duration;

const THREADS: usize = 4;

fn cfg_for(pairs: u64) -> RunConfig {
    let mut cfg = RunConfig::new(THREADS);
    cfg.pairs = pairs;
    cfg.max_delay_ns = 0;
    cfg.pin = false;
    cfg
}

fn bench_bounded_wait(runner: &Runner) {
    for &spins in &[0u32, 32, 128, 512] {
        runner.bench(
            "ablation_bounded_wait",
            &format!("spins/{spins}"),
            2 * THREADS as u64,
            |iters| {
                let q = Lcrq::with_config(LcrqConfig::new().with_bounded_wait(spins));
                run_workload(&q, &cfg_for(iters.max(1))).wall
            },
        );
    }
}

fn bench_starvation_limit(runner: &Runner) {
    for &limit in &[2u32, 16, 128, 1024] {
        runner.bench(
            "ablation_starvation_limit",
            &format!("limit/{limit}"),
            2 * THREADS as u64,
            |iters| {
                // Small ring so closes actually happen.
                let q = Lcrq::with_config(
                    LcrqConfig::new()
                        .with_ring_order(4)
                        .with_starvation_limit(limit),
                );
                run_workload(&q, &cfg_for(iters.max(1))).wall
            },
        );
    }
}

fn bench_hierarchical_timeout(runner: &Runner) {
    for &us in &[0u64, 10, 100, 1000] {
        runner.bench(
            "ablation_hier_timeout",
            &format!("timeout_us/{us}"),
            2 * THREADS as u64,
            |iters| {
                let q =
                    Lcrq::with_config(LcrqConfig::new().with_hierarchical(HierarchicalConfig {
                        timeout: Duration::from_micros(us),
                    }));
                let mut cfg = cfg_for(iters.max(1));
                cfg.clusters = 4;
                run_workload(&q, &cfg).wall
            },
        );
    }
}

fn bench_crq_vs_lcrq(runner: &Runner) {
    runner.bench(
        "ablation_crq_vs_lcrq",
        "bare_crq",
        2 * THREADS as u64,
        |iters| {
            // A bare CRQ sized to never close: measures the ring protocol
            // alone, without hazard pointers or list management.
            let q = Crq::<lcrq_atomic::HardwareFaa>::new(&LcrqConfig::new().with_ring_order(16));
            struct CrqAsQueue<'a>(&'a Crq);
            impl ConcurrentQueue for CrqAsQueue<'_> {
                fn enqueue(&self, v: u64) {
                    self.0.enqueue(v).expect("ring sized to never close");
                }
                fn dequeue(&self) -> Option<u64> {
                    self.0.dequeue()
                }
                fn name(&self) -> &'static str {
                    "crq"
                }
                fn is_nonblocking(&self) -> bool {
                    true
                }
            }
            run_workload(&CrqAsQueue(&q), &cfg_for(iters.max(1))).wall
        },
    );
    runner.bench(
        "ablation_crq_vs_lcrq",
        "full_lcrq",
        2 * THREADS as u64,
        |iters| {
            let q = Lcrq::with_config(LcrqConfig::new().with_ring_order(16));
            run_workload(&q, &cfg_for(iters.max(1))).wall
        },
    );
}

fn bench_batch(runner: &Runner) {
    for &batch in &[1usize, 4, 16, 64] {
        runner.bench(
            "ablation_batch",
            &format!("batch/{batch}"),
            2 * THREADS as u64,
            |iters| {
                let q = Lcrq::new();
                let mut cfg = cfg_for(iters.max(1));
                cfg.batch = batch;
                run_workload(&q, &cfg).wall
            },
        );
    }
}

fn main() {
    let runner = Runner::new();
    bench_bounded_wait(&runner);
    bench_starvation_limit(&runner);
    bench_hierarchical_timeout(&runner);
    bench_crq_vs_lcrq(&runner);
    bench_batch(&runner);
}
