//! Microbench version of Figure 9: LCRQ pair throughput vs ring size.
//! Tiny rings close constantly (each close allocates and links a fresh
//! CRQ); throughput should rise with R and saturate.

use lcrq_bench::microbench::Runner;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};

fn main() {
    let runner = Runner::new();
    let threads = 4usize;
    for &order in &[3u32, 6, 9, 12, 15, 17] {
        runner.bench(
            "fig9_ring_size",
            &format!("lcrq/2^{order}"),
            2 * threads as u64,
            |iters| {
                let q = QueueSpec::backend(QueueKind::Lcrq)
                    .with_ring_order(order)
                    .build();
                let mut cfg = RunConfig::new(threads);
                cfg.pairs = iters.max(1);
                cfg.max_delay_ns = 0;
                cfg.pin = false;
                run_workload(&q, &cfg).wall
            },
        );
    }
}
