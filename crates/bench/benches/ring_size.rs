//! Criterion version of Figure 9: LCRQ pair throughput vs ring size.
//! Tiny rings close constantly (each close allocates and links a fresh
//! CRQ); throughput should rise with R and saturate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcrq_bench::{make_queue, run_workload, QueueKind, RunConfig};
use std::time::Duration;

fn bench_ring_size(c: &mut Criterion) {
    let threads = 4usize;
    let mut g = c.benchmark_group("fig9_ring_size");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(2 * threads as u64));
    for &order in &[3u32, 6, 9, 12, 15, 17] {
        g.bench_with_input(BenchmarkId::new("lcrq", order), &order, |b, &o| {
            b.iter_custom(|iters| {
                let q = make_queue(QueueKind::Lcrq, o, 1);
                let mut cfg = RunConfig::new(threads);
                cfg.pairs = iters.max(1);
                cfg.max_delay_ns = 0;
                cfg.pin = false;
                run_workload(&q, &cfg).wall
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ring_size);
criterion_main!(benches);
