//! Criterion version of Figures 6/7: enqueue/dequeue-pair throughput per
//! queue algorithm at several thread counts (pure queue cost: no inter-op
//! jitter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcrq_bench::{make_queue, run_workload, QueueKind, RunConfig};
use std::time::Duration;

fn bench_throughput(c: &mut Criterion) {
    let kinds = [
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::Cc,
        QueueKind::Fc,
        QueueKind::Ms,
        QueueKind::TwoLock,
        QueueKind::Sim,
        QueueKind::Optimistic,
        QueueKind::Baskets,
    ];
    for &threads in &[1usize, 4] {
        let mut g = c.benchmark_group(format!("pairs_{threads}thread"));
        g.sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        // Each criterion "element" is one enqueue/dequeue pair per thread.
        g.throughput(Throughput::Elements(2 * threads as u64));
        for &k in &kinds {
            g.bench_with_input(BenchmarkId::new(k.name(), threads), &threads, |b, &t| {
                b.iter_custom(|iters| {
                    let q = make_queue(k, 12, 1);
                    let mut cfg = RunConfig::new(t);
                    cfg.pairs = iters.max(1);
                    cfg.max_delay_ns = 0;
                    cfg.pin = false;
                    run_workload(&q, &cfg).wall
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
