//! Microbench version of Figures 6/7: enqueue/dequeue-pair throughput per
//! queue algorithm at several thread counts (pure queue cost: no inter-op
//! jitter).

use lcrq_bench::microbench::Runner;
use lcrq_bench::{run_workload, QueueKind, QueueSpec, RunConfig};

fn main() {
    let runner = Runner::new();
    let kinds = [
        QueueKind::Lcrq,
        QueueKind::LcrqCas,
        QueueKind::Cc,
        QueueKind::Fc,
        QueueKind::Ms,
        QueueKind::TwoLock,
        QueueKind::Sim,
        QueueKind::Optimistic,
        QueueKind::Baskets,
    ];
    for &threads in &[1usize, 4] {
        let group = format!("pairs_{threads}thread");
        for &k in &kinds {
            runner.bench(&group, k.name(), 2 * threads as u64, |iters| {
                let q = QueueSpec::backend(k).build();
                let mut cfg = RunConfig::new(threads);
                cfg.pairs = iters.max(1);
                cfg.max_delay_ns = 0;
                cfg.pin = false;
                run_workload(&q, &cfg).wall
            });
        }
    }
}
