//! Microbench version of Figure 1: contended counter increments, hardware
//! F&A vs CAS loop. The CAS loop's cost should grow with thread count while
//! F&A stays near-flat (modulo this host's core count).

use lcrq_atomic::{CasLoopFaa, FaaPolicy, HardwareFaa};
use lcrq_bench::microbench::Runner;
use std::sync::atomic::AtomicU64;
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn contended_increments<P: FaaPolicy>(threads: usize, per_thread: u64) -> Duration {
    let counter = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let (counter, barrier) = (&counter, &barrier);
    let timer = std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || {
                barrier.wait();
                for _ in 0..per_thread {
                    P::fetch_add(counter, 1);
                }
            });
        }
        let start = Instant::now();
        barrier.wait();
        start
    });
    timer.elapsed()
}

fn main() {
    let runner = Runner::new();
    for &threads in &[1usize, 2, 4] {
        runner.bench(
            "fig1_counter",
            &format!("faa/{threads}"),
            threads as u64,
            |iters| contended_increments::<HardwareFaa>(threads, iters.max(1)),
        );
        runner.bench(
            "fig1_counter",
            &format!("cas-loop/{threads}"),
            threads as u64,
            |iters| contended_increments::<CasLoopFaa>(threads, iters.max(1)),
        );
    }
}
