//! Criterion version of Figure 1: contended counter increments, hardware
//! F&A vs CAS loop. The CAS loop's cost should grow with thread count while
//! F&A stays near-flat (modulo this host's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcrq_atomic::{CasLoopFaa, FaaPolicy, HardwareFaa};
use std::sync::atomic::AtomicU64;
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn contended_increments<P: FaaPolicy>(threads: usize, per_thread: u64) -> Duration {
    let counter = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let (counter, barrier) = (&counter, &barrier);
    let timer = std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || {
                barrier.wait();
                for _ in 0..per_thread {
                    P::fetch_add(counter, 1);
                }
            });
        }
        let start = Instant::now();
        barrier.wait();
        start
    });
    timer.elapsed()
}

fn bench_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_counter");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    for &threads in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("faa", threads), &threads, |b, &t| {
            b.iter_custom(|iters| contended_increments::<HardwareFaa>(t, iters.max(1)));
        });
        g.bench_with_input(BenchmarkId::new("cas-loop", threads), &threads, |b, &t| {
            b.iter_custom(|iters| contended_increments::<CasLoopFaa>(t, iters.max(1)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_counter);
criterion_main!(benches);
