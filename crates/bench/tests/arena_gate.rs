//! Gate self-test against the *committed* artifacts (ISSUE 9, satellite 1).
//!
//! The unit tests in `arena.rs` exercise the gate on synthetic artifacts;
//! this integration test points it at the real files ci.sh uses, so a
//! stale or hand-mangled checkout fails here first with a message naming
//! the refresh workflow:
//!
//! * `results/BENCH_arena.json` — the committed baseline — must parse
//!   under the current schema and cover every flagship;
//! * `results/fixtures/BENCH_arena_drop.json` (planted 20 % drop) must
//!   FAIL the gate on every flagship;
//! * `results/fixtures/BENCH_arena_pass.json` (identity twin) must PASS.
//!
//! Refresh workflow when these drift (documented in results/README.md):
//! `cargo run --release --bin pairwise` to re-measure the baseline, then
//! `cargo run --release --bin pairwise -- --make-fixtures --baseline
//! results/BENCH_arena.json` to regenerate both fixtures.

use lcrq_bench::arena::{self, ArenaArtifact};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn load(rel: &str) -> ArenaArtifact {
    let path = results_dir().join(rel);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} — regenerate with `cargo run --release --bin pairwise` \
             (baseline) and `-- --make-fixtures` (fixtures)",
            path.display()
        )
    });
    ArenaArtifact::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn committed_baseline_parses_and_covers_flagships() {
    let baseline = load("BENCH_arena.json");
    assert!(!baseline.rows.is_empty());
    for flagship in arena::flagship_names() {
        assert!(
            baseline.rows.iter().any(|r| r.contender == flagship),
            "committed baseline has no rows for flagship '{flagship}' — \
             re-measure with `cargo run --release --bin pairwise`"
        );
    }
    // Every row must carry a finite, populated summary: a baseline of
    // NaNs would make the gate vacuously green.
    for r in &baseline.rows {
        assert!(r.summary.n >= 1, "{}: empty summary", r.contender);
        assert!(
            r.summary.mean.is_finite() && r.summary.mean > 0.0,
            "{}: non-finite mean",
            r.contender
        );
        assert!(r.summary.moe.is_finite(), "{}: non-finite moe", r.contender);
    }
}

#[test]
fn planted_drop_fixture_fails_the_gate_on_every_flagship() {
    let baseline = load("BENCH_arena.json");
    let drop = load("fixtures/BENCH_arena_drop.json");
    let flagships = arena::flagship_names();
    let outcome = arena::regression_gate(&baseline, &drop, &flagships);
    assert!(
        !outcome.passed(),
        "planted 20% drop slipped through the gate — it can no longer \
         catch real regressions"
    );
    for flagship in &flagships {
        assert!(
            outcome
                .failures
                .iter()
                .any(|f| f.starts_with(&format!("{flagship} @"))),
            "gate missed the planted drop on '{flagship}' — baseline too \
             noisy; re-measure with more runs and regenerate the fixtures \
             (failures: {:?})",
            outcome.failures
        );
    }
}

#[test]
fn unchanged_fixture_passes_the_gate() {
    let baseline = load("BENCH_arena.json");
    let pass = load("fixtures/BENCH_arena_pass.json");
    let outcome = arena::regression_gate(&baseline, &pass, &arena::flagship_names());
    assert!(
        outcome.passed(),
        "identity fixture failed the gate: {:?}",
        outcome.failures
    );
}

#[test]
fn fixtures_regenerate_from_the_committed_baseline() {
    // `make_fixtures` re-derives and re-verifies the pair; if the
    // committed baseline ever becomes too noisy for its own self-test,
    // this is the test that says so explicitly.
    let baseline = load("BENCH_arena.json");
    let (drop, pass) = arena::make_fixtures(&baseline, &arena::flagship_names())
        .expect("committed baseline supports fixture generation");
    assert_eq!(drop.rows.len(), baseline.rows.len());
    assert_eq!(pass.rows.len(), baseline.rows.len());
}
